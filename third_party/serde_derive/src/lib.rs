//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! subset (see `third_party/README.md`).
//!
//! Implemented directly on `proc_macro::TokenStream` — no `syn`/`quote`,
//! which are unavailable in this offline build environment. The parser
//! handles exactly the item shapes this workspace uses: plain structs
//! (named, tuple, unit) with at most lifetime generics, and enums whose
//! variants are unit, tuple, or struct-like. No `#[serde(...)]` attributes
//! are supported; none are used in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
struct Input {
    name: String,
    /// `"<'a>"`-style generics text, or empty. Only lifetimes occur in this
    /// workspace, so the same text serves as both impl and type generics.
    generics: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes any number of leading `#[...]` attributes (doc comments appear
/// here too, as `#[doc = ...]`).
fn skip_attrs(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute: expected [...], got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(it: &mut Tokens) {
    if let Some(TokenTree::Ident(i)) = it.peek() {
        if i.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected {what}, got {other:?}"),
    }
}

/// Consumes `<...>` generics (if present) and returns their text including
/// the angle brackets.
fn parse_generics(it: &mut Tokens) -> String {
    match it.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return String::new(),
    }
    let mut depth = 0usize;
    let mut collected: Vec<TokenTree> = Vec::new();
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        collected.push(tt);
        if depth == 0 {
            break;
        }
    }
    collected.into_iter().collect::<TokenStream>().to_string()
}

/// Counts the comma-separated fields of a tuple payload `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut arity = 0usize;
    let mut in_field = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    in_field = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_field {
            in_field = true;
            arity += 1;
        }
    }
    arity
}

/// Extracts the field names of a named payload `{ ... }`, skipping the
/// types (whose text is never needed: serialization is inferred from the
/// field expression, deserialization from the struct literal).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut it);
        if it.peek().is_none() {
            return names;
        }
        skip_vis(&mut it);
        names.push(expect_ident(&mut it, "field name"));
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma. Commas nested in
        // generic arguments (e.g. `BTreeMap<K, V>`) sit at angle depth > 0;
        // commas inside parenthesized/tuple types are inside a Group token
        // and invisible at this level.
        let mut depth = 0usize;
        while let Some(tt) = it.next() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            if it.peek().is_none() {
                break;
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        if it.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut it, "variant name");
        let data = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                VariantData::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantData::Named(fields)
            }
            _ => VariantData::Unit,
        };
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push(Variant { name, data });
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut it: Tokens = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kind = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    let generics = parse_generics(&mut it);
    let data = match (kind.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Data::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Data::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream()))
        }
        (kind, other) => panic!("cannot derive for {kind} with body {other:?}"),
    };
    Input {
        name,
        generics,
        data,
    }
}

fn impl_header(input: &Input, trait_path: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\nimpl{g} {trait_path} for {n}{g}",
        g = input.generics,
        n = input.name,
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantData::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("_f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(_f0)".to_string()
                            } else {
                                let items = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(_f{i})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})]),"
                            )
                        }
                        VariantData::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    let code = format!(
        "{header} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n",
        header = impl_header(&input, "::serde::Serialize"),
    );
    code.parse().expect("derived Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(_fields, \"{f}\")?,"))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let _fields = _v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", _v))?;\n        ::std::result::Result::Ok({name} {{\n            {inits}\n        }})"
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(_v)?))")
        }
        Data::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&_items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match _v.as_array() {{\n            ::std::option::Option::Some(_items) if _items.len() == {n} => ::std::result::Result::Ok({name}({items})),\n            _ => ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", _v)),\n        }}"
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => None,
                        VariantData::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(_payload)?)),"
                        )),
                        VariantData::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&_items[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vn}\" => match _payload.as_array() {{\n                    ::std::option::Option::Some(_items) if _items.len() == {n} => ::std::result::Result::Ok({name}::{vn}({items})),\n                    _ => ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", _payload)),\n                }},"
                            ))
                        }
                        VariantData::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(_pf, \"{f}\")?,"))
                                .collect::<Vec<_>>()
                                .join(" ");
                            Some(format!(
                                "\"{vn}\" => {{\n                    let _pf = _payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", _payload))?;\n                    ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n                }},"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "match _v {{\n            ::serde::Value::Str(_s) => match _s.as_str() {{\n                {unit_arms}\n                _other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{_other}}` of {name}\"))),\n            }},\n            ::serde::Value::Object(_fields) if _fields.len() == 1 => {{\n                let (_tag, _payload) = &_fields[0];\n                match _tag.as_str() {{\n                {data_arms}\n                    _other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{_other}}` of {name}\"))),\n                }}\n            }}\n            _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum value\", _v)),\n        }}"
            )
        }
    };
    let code = format!(
        "{header} {{\n    fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n",
        header = impl_header(&input, "::serde::Deserialize"),
    );
    code.parse().expect("derived Deserialize impl must parse")
}
