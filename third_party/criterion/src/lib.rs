//! Offline drop-in subset of `criterion` (see `third_party/README.md`).
//!
//! A minimal wall-clock benchmark harness exposing the API the workspace's
//! benches use: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. It reports the median
//! per-iteration time over a handful of samples — no statistical analysis,
//! no HTML reports, no comparison against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on the measuring time of one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(60);

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine` until the sample budget is
    /// spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= SAMPLE_BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    // Warmup pass (also primes caches and lazy statics).
    f(&mut b);
    // The real criterion runs `sample_size` samples (>= 10); this harness
    // caps the count so full bench runs stay fast, which is fine for the
    // rough regression signal it provides.
    let samples = sample_size.clamp(1, 7);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.per_iter());
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{id:<45} time: [{}]  ({} samples)",
        format_duration(median),
        samples
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into one group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and optional filters); this
            // harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_configure_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn durations_format_with_units() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
