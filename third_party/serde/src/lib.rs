//! Offline drop-in subset of `serde`.
//!
//! The build environment of this repository has no network access and no
//! crates.io mirror, so the workspace vendors a minimal-but-functional
//! re-implementation of the handful of serde features it actually uses
//! (see `third_party/README.md`). Instead of serde's zero-copy
//! `Serializer`/`Deserializer` visitor machinery, everything round-trips
//! through one owned [`Value`] tree — slower, but simple, dependency-free,
//! and format-compatible with `serde_json` for the constructs this
//! workspace serializes (structs with named fields, newtype structs,
//! externally tagged enums, sequences, maps with scalar keys).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type lowers to.
///
/// Object fields keep insertion order (a `Vec`, not a map), matching the
/// field order of `#[derive(Serialize)]` structs exactly like serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key/value map preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts a data-model value back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent from its object.
    ///
    /// `None` (the default) makes the field required; `Option<T>`
    /// overrides this to recover serde's "missing field is `None`"
    /// behavior.
    fn from_missing() -> Option<Self> {
        None
    }
}

/// Deserializes field `name` from a struct object (derive support).
///
/// # Errors
///
/// Returns a [`DeError`] if the field is absent (and the target type has
/// no missing-field default) or fails to convert.
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing().ok_or_else(|| DeError(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain a `'static` borrow. Only needed because
    /// `GpuSpec` derives `Deserialize` with a `&'static str` field; specs
    /// are a handful of small names, so the leak is bounded and harmless.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", v)),
        }
    }
}

/// Serializes a scalar map key to its string form (serde_json stringifies
/// integer keys).
fn key_to_string(v: &Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        _ => Err(DeError(format!("unsupported map key kind `{}`", v.kind()))),
    }
}

/// Recovers a scalar map key from its string form.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(DeError(format!("cannot parse map key `{s}`")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_value()).expect("map key must be scalar"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<K, V> Serialize for HashMap<K, V>
where
    K: Serialize + Ord + std::hash::Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys (HashMap iteration order is not
        // stable across runs).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_value()).expect("map key must be scalar"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
    }

    #[test]
    fn option_handles_missing_fields() {
        let fields: Vec<(String, Value)> = vec![];
        let missing: Option<u64> = field(&fields, "absent").unwrap();
        assert_eq!(missing, None);
        let required: Result<u64, _> = field(&fields, "absent");
        assert!(required.is_err());
    }

    #[test]
    fn integer_keyed_maps_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("3"), Some(&Value::Str("x".into())));
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
