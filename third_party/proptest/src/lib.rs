//! Offline drop-in subset of `proptest` (see `third_party/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]` header),
//! range / `any` / tuple / `prop::collection::vec` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Differences
//! from upstream: inputs are drawn from a deterministic per-test stream
//! (seeded by the test's name, identical on every run), failures are not
//! shrunk to minimal counterexamples, and `prop_assume!` skips the case
//! instead of redrawing it.

pub mod test_runner {
    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default; the heaviest blocks in this workspace
            // override it downward explicitly.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic input stream (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's name so every test gets its own
        /// reproducible sequence.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use std::ops::Range;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Scalars that can be drawn uniformly from a half-open range.
    pub trait SampleUniform: Copy {
        /// Draws from `[start, end)`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
                    assert!(range.start < range.end, "empty strategy range");
                    let span = (range.end as i128 - range.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (range.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
            assert!(range.start < range.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            range.start + unit * (range.end - range.start)
        }
    }

    impl SampleUniform for f32 {
        fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
            f64::sample(rng, &(range.start as f64..range.end as f64)) as f32
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// A strategy producing one fixed value (upstream's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::{SampleUniform, Strategy};
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                usize::sample(rng, &self.size)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs `cases` times over freshly drawn
/// inputs, failing with the first case's message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report which case failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __a,
                __b,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Upstream redraws instead; skipping preserves determinism here.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2i32..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..2).contains(&y));
        }

        #[test]
        fn vectors_respect_len(v in prop::collection::vec((any::<u8>(), 0.5f64..1.5), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for (_, f) in &v {
                prop_assert!((0.5..1.5).contains(f), "f = {f}");
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
