//! Offline drop-in subset of `serde_json`: compact serialization and strict
//! parsing over the vendored serde [`Value`] data model (see
//! `third_party/README.md`).

use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Fails if the value contains a non-finite float (JSON has no
/// representation for NaN or infinities), matching real serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON, trailing garbage, or a shape mismatch with the
/// target type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            // Rust's Display already prints the shortest digits that
            // round-trip; add the ".0" serde_json (ryu) keeps on integral
            // floats so the output distinguishes floats from integers.
            if f.fract() == 0.0 && f.abs() < 1e16 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e1").unwrap(), -25.0);
        assert_eq!(from_str::<String>(r#""aA\n""#).unwrap(), "aA\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, vec![1.0f64]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"7":[1.0]}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<u64, Vec<f64>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }
}
