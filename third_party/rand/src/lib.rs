//! Offline drop-in subset of `rand` (see `third_party/README.md`).
//!
//! Provides the one surface this workspace uses: a seedable `StdRng` with
//! uniform `gen_range` sampling. The generator is SplitMix64 — statistically
//! solid for simulation scenarios, deterministic across platforms, and
//! trivially seedable from a `u64`. It does NOT match upstream rand's
//! `StdRng` stream (ChaCha12), so seeded sequences differ from the real
//! crate; nothing in this workspace depends on the exact stream.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one sample from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is below 2^-64 for every span this workspace
                // uses; accept it in exchange for simplicity.
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64; see crate docs for
    /// how this differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
