//! Batch-size sweep from a single trace — the capability the paper calls
//! out as "not easy for prior simulators (e.g., AstraSim, vTrain)".
//!
//! ```text
//! cargo run --release --example batch_size_sweep
//! ```
//!
//! One trace of VGG-16 at batch 128 drives predictions for per-GPU batch
//! sizes from 16 to 512 on 2x A40 (platform P1), showing the throughput
//! curve flattening as the GPUs saturate.

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn main() {
    let traced_batch = 128u64;
    let model = ModelId::Vgg16.build(traced_batch);
    let trace = Tracer::new(GpuModel::A40).trace(&model);
    let platform = Platform::p1();

    println!(
        "one trace ({} @ batch {traced_batch} on {}), many batch sizes:",
        trace.model(),
        trace.gpu()
    );
    println!(
        "\n{:>14} {:>14} {:>16} {:>12}",
        "batch per GPU", "iter time (ms)", "images/s (total)", "comm share"
    );
    for per_gpu in [16u64, 32, 64, 128, 256, 512] {
        let global = per_gpu * platform.gpu_count() as u64;
        let report = SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .global_batch(global)
            .run();
        println!(
            "{:>14} {:>14.1} {:>16.0} {:>11.1}%",
            per_gpu,
            report.total_time_s() * 1e3,
            global as f64 / report.total_time_s(),
            100.0 * report.comm_ratio()
        );
    }
    println!(
        "\nlarger batches amortize fixed costs (kernel launches, AllReduce \
         latency), so throughput climbs and then saturates — without \
         collecting a single additional trace."
    );
}
