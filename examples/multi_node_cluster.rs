//! Multi-node clusters: hierarchical networks (NVLink inside servers,
//! InfiniBand-class links between them) — the regime where interconnect
//! bandwidth decides the parallelism strategy.
//!
//! ```text
//! cargo run --release --example multi_node_cluster
//! ```
//!
//! Sweeps the inter-node bandwidth for a 2-server x 4-GPU DDP run of
//! GPT-2 and shows the crossover: with fast inter-node links the cluster
//! behaves like one big server; with slow ones the cross-server ring
//! AllReduce dominates, and hybrid (one pipeline per server, DP across
//! servers) becomes the better strategy.

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, LinkKind, Tracer};

fn main() {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::Gpt2.build(16));
    let tb = trace.batch();

    println!("GPT-2 on 2 servers x 4 A100 (NVLink inside, variable links between):\n");
    println!(
        "{:>18} {:>12} {:>12} {:>14} {:>12}",
        "inter-node BW", "DDP (ms)", "DDP comm", "HP 2x4 (ms)", "HP comm"
    );
    for gbps in [100.0f64, 25.0, 5.0, 1.0] {
        let platform = Platform::multi_node(
            GpuModel::A100,
            2,
            4,
            LinkKind::NvLink3,
            gbps * 1e9,
            5e-6,
            format!("cluster-{gbps:.0}G"),
        );
        let ddp = SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .global_batch(tb * 8)
            .run();
        let hp = SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::Hybrid {
                dp_groups: 2,
                chunks: 4,
            })
            .global_batch(tb * 2)
            .run();
        println!(
            "{:>15.0} GB/s {:>12.1} {:>12.1} {:>14.1} {:>12.1}",
            gbps,
            ddp.total_time_s() * 1e3,
            ddp.comm_time_s() * 1e3,
            hp.total_time_s() * 1e3,
            hp.comm_time_s() * 1e3
        );
    }
    println!(
        "\nDDP's ring crosses the slow inter-node links with the full gradient \
         volume; the hybrid keeps pipeline activations on NVLink and sends \
         only per-stage gradients across servers. As the inter-node link \
         slows, DDP degrades much faster."
    );
}
