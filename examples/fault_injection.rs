//! Fault injection: what one straggler GPU costs synchronous DDP, and how
//! Hop's backup-worker protocol absorbs it.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! The same seeded `FaultPlan` — GPU 0 computing 1.5x slower — drives two
//! simulators: the DAG executor running DDP ResNet-50 on a 4-GPU ring
//! (synchronous AllReduce: everyone waits for the straggler every
//! iteration) and the Hop case-study simulator, where allowing one backup
//! worker lets the fast workers stop waiting for the straggler's update.

use triosim::{
    FaultPlan, FaultSession, GpuSlowdown, HopConfig, HopGraph, HopSimulator, Parallelism, Platform,
    SimBuilder,
};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, LinkKind, Phase, Tracer};

fn main() {
    let gpus = 4;
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet50.build(32));
    let platform = Platform::ring(GpuModel::A100, gpus, LinkKind::NvLink3, "ring4");

    // One straggler: GPU 0 computes 1.5x slower (thermal throttling, a
    // shared tenant, a failing board...).
    let straggler = FaultPlan {
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 0,
            factor: 1.5,
        }],
        ..FaultPlan::default()
    };

    // Synchronous DDP pays the full straggler tax: the ring AllReduce
    // cannot finish before the slowest GPU's gradients arrive.
    let run = |plan: FaultPlan| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .global_batch(32 * gpus as u64)
            .faults(plan)
            .try_run()
            .expect("a straggler is not fatal")
    };
    let healthy = run(FaultPlan::default());
    let limping = run(straggler.clone());
    let stats = limping.fault_stats().expect("faulted run carries stats");
    println!("DDP ResNet-50 on {gpus}x A100 ring, GPU 0 at 1.5x:");
    println!("  healthy   : {:.1} ms/iter", healthy.total_time_s() * 1e3);
    println!(
        "  straggler : {:.1} ms/iter ({:+.1}%, {:.1} ms compute lost on gpu0)",
        limping.total_time_s() * 1e3,
        100.0 * (limping.total_time_s() / healthy.total_time_s() - 1.0),
        stats.lost_compute_s[0] * 1e3,
    );

    // Hop's decentralized protocol under the *same* fault plan. One backup
    // worker lets each worker proceed after hearing from all but one
    // neighbour, so the fast workers stop waiting for the straggler's
    // perpetually-late update and run ahead; iteration skipping then lets
    // the lagging straggler shed compute to catch back up. Without either,
    // gossip is fully synchronous and the whole ring limps at straggler
    // speed — exactly like the DDP run above.
    let session = FaultSession::new(&straggler, gpus);
    let config = |backup: usize, skip_lag: Option<usize>| HopConfig {
        backup_workers: backup,
        bounded_staleness: 2,
        iterations: 20,
        compute_time_s: trace.phase_time_s(Phase::Forward) + trace.phase_time_s(Phase::Backward),
        update_bytes: trace.gradient_bytes(),
        link_bandwidth: 10.0e9,
        link_latency_s: 5.0e-6,
        skip_lag,
    };
    let graph = HopGraph::ring_based(gpus);
    let sync = HopSimulator::new(graph.clone(), config(0, None)).run_with_faults(&session);
    let hop = HopSimulator::new(graph, config(1, Some(2))).run_with_faults(&session);
    println!("Hop under the same straggler plan (20 iterations):");
    println!(
        "  synchronous gossip          : {:.1} ms",
        sync.total_time_s * 1e3
    );
    println!(
        "  1 backup worker + skipping  : {:.1} ms ({:.2}x faster, {} updates skipped, {} iterations shed)",
        hop.total_time_s * 1e3,
        sync.total_time_s / hop.total_time_s,
        hop.updates_skipped,
        hop.iterations_skipped,
    );
    assert!(
        hop.total_time_s < sync.total_time_s,
        "the backup worker must absorb part of the straggler cost"
    );
}
