//! Quickstart: predict multi-GPU training time from a single-GPU trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full TrioSim pipeline: build a workload, collect a
//! single-GPU operator trace, then extrapolate it to a 4-GPU NVLink
//! platform under distributed data parallelism.

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn main() {
    // 1. The workload: ResNet-50 at batch size 128 (per GPU).
    let model = ModelId::ResNet50.build(128);
    println!("workload: {model}");

    // 2. Collect the single-GPU trace — the only workload input TrioSim
    //    needs. On real hardware this is the PyTorch profiler output; here
    //    the tracer stamps times from the built-in A100 timing model.
    let trace = Tracer::new(GpuModel::A100).trace(&model);
    println!(
        "trace: {} operators, {:.1} ms on one {}",
        trace.entries().len(),
        trace.total_time_s() * 1e3,
        trace.gpu()
    );

    // 3. Simulate 4 A100s with DDP (paper platform P2).
    let platform = Platform::p2(4);
    let report = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .run();

    println!("\npredicted one DDP iteration on {}:", platform.name());
    println!("  total time     : {:.2} ms", report.total_time_s() * 1e3);
    println!("  compute (max)  : {:.2} ms", report.compute_time_s() * 1e3);
    println!("  communication  : {:.2} ms", report.comm_time_s() * 1e3);
    println!("  comm share     : {:.1}%", 100.0 * report.comm_ratio());
    println!(
        "  network traffic: {:.1} MB",
        report.bytes_transferred() as f64 / 1e6
    );
    println!(
        "  weak-scaling efficiency: {:.1}%",
        100.0 * trace.total_time_s() / report.total_time_s()
    );
}
