//! Parallelism planner: the paper's §8.3 headline use case.
//!
//! ```text
//! cargo run --release --example parallelism_planner -- [--gpus 4]
//! ```
//!
//! "Given an LLM and a specific GPU interconnect topology, users can
//! evaluate different parallelism strategies (data, tensor, or pipeline
//! parallelism) to determine the most efficient configuration." This
//! example does exactly that for GPT-2 on an NVSwitch platform, from one
//! single-GPU trace — no re-tracing between configurations.

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn main() {
    let gpus: usize = std::env::args()
        .skip_while(|a| a != "--gpus")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let total_batch = 64u64;
    let model = ModelId::Gpt2.build(total_batch);
    let trace = Tracer::new(GpuModel::A100).trace(&model);
    let platform = Platform::p2(gpus);

    println!(
        "planning: {} | total batch {total_batch} | {} x {}",
        model,
        gpus,
        platform.gpu()
    );
    println!(
        "\n{:<14} {:>11} {:>11} {:>11} {:>9}",
        "strategy", "total (ms)", "comp (ms)", "comm (ms)", "comm %"
    );

    let mut candidates: Vec<(String, Parallelism)> = vec![
        ("DDP".into(), Parallelism::DataParallel { overlap: true }),
        (
            "DP (no ovl)".into(),
            Parallelism::DataParallel { overlap: false },
        ),
        ("TP".into(), Parallelism::TensorParallel),
    ];
    for chunks in [1u64, 2, 4, 8] {
        candidates.push((format!("PP x{chunks}"), Parallelism::Pipeline { chunks }));
    }

    let mut best: Option<(String, f64)> = None;
    for (name, parallelism) in candidates {
        let report = SimBuilder::new(&trace, &platform)
            .parallelism(parallelism)
            .global_batch(total_batch)
            .run();
        let t = report.total_time_s();
        println!(
            "{:<14} {:>11.2} {:>11.2} {:>11.2} {:>8.1}%",
            name,
            t * 1e3,
            report.compute_time_s() * 1e3,
            report.comm_time_s() * 1e3,
            100.0 * report.comm_ratio()
        );
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((name, t));
        }
    }

    let (name, t) = best.expect("candidates evaluated");
    println!(
        "\nrecommendation: {name} ({:.2} ms per iteration, {:.0} samples/s)",
        t * 1e3,
        total_batch as f64 / t
    );
}
