//! Export the execution timeline as Chrome `about:tracing` JSON — the
//! visualization output §4.1 describes ("it shows the timeline of the
//! communication process among GPUs or the computation process on each
//! GPU").
//!
//! ```text
//! cargo run --release --example timeline_export
//! # then open chrome://tracing (or https://ui.perfetto.dev) and load
//! # /tmp/triosim_timeline.json
//! ```

use std::fs;

use triosim::{Parallelism, Platform, SimBuilder, TimelineTrack};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelId::ResNet18.build(64);
    let trace = Tracer::new(GpuModel::A100).trace(&model);
    let platform = Platform::p2(2);

    let report = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::Pipeline { chunks: 4 })
        .run();

    // Summarize what the timeline contains.
    let gpu_records = report
        .timeline()
        .iter()
        .filter(|r| matches!(r.track, TimelineTrack::Gpu(_)))
        .count();
    let net_records = report
        .timeline()
        .iter()
        .filter(|r| r.track == TimelineTrack::Network)
        .count();
    println!(
        "GPipe x4 on 2 GPUs: {:.1} ms total, {gpu_records} compute spans, \
         {net_records} transfer spans",
        report.total_time_s() * 1e3
    );

    // First few events, human readable.
    for r in report.timeline().iter().take(8) {
        println!(
            "  {:>10.3} ms  {:<10}  {}",
            r.start.as_seconds() * 1e3,
            match r.track {
                TimelineTrack::Gpu(i) => format!("GPU{i}"),
                TimelineTrack::Network => "network".to_string(),
            },
            r.label
        );
    }

    let path = "/tmp/triosim_timeline.json";
    fs::write(path, report.to_chrome_trace()?)?;
    println!("\nfull timeline written to {path} (open in chrome://tracing)");

    // The Daisen-style standalone view needs no external tooling at all.
    let html_path = "/tmp/triosim_timeline.html";
    fs::write(
        html_path,
        triosim::render_html_timeline(&report, "ResNet-18 | 2x A100 | GPipe x4"),
    )?;
    println!("HTML timeline written to {html_path} (open in any browser)");
    Ok(())
}
