//! Inference serving: latency vs throughput from a single forward trace.
//!
//! ```text
//! cargo run --release --example inference_serving
//! ```
//!
//! Li's Model (the operator performance model TrioSim embeds) was
//! originally built for DNN *inference*; this example closes the loop by
//! simulating a replicated ResNet-50 serving fleet. One forward-only
//! trace drives every (batch size, replica count) point: per-request
//! latency rises with batching while fleet throughput climbs — the
//! classic serving trade-off — and replicas scale throughput linearly
//! because inference needs no gradient synchronization.

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn main() {
    let traced_batch = 32u64;
    let model = ModelId::ResNet50.build(traced_batch);
    let trace = Tracer::new(GpuModel::A100).trace_inference(&model);
    println!(
        "serving {} from one forward trace ({} ops, {:.2} ms @ batch {traced_batch})",
        trace.model(),
        trace.entries().len(),
        trace.total_time_s() * 1e3
    );

    println!(
        "\n{:>9} {:>9} {:>15} {:>18} {:>12}",
        "replicas", "batch", "latency (ms)", "throughput (img/s)", "comm (ms)"
    );
    for replicas in [1usize, 2, 4] {
        let platform = Platform::p2(replicas.max(2)); // p2 needs >= 2 GPUs
        let gpus = if replicas == 1 { 1 } else { replicas };
        let platform = if replicas == 1 {
            Platform::pcie(GpuModel::A100, 1, "single")
        } else {
            platform
        };
        for batch in [1u64, 8, 32, 128] {
            let report = SimBuilder::new(&trace, &platform)
                .parallelism(Parallelism::DataParallel { overlap: false })
                .global_batch(batch * gpus as u64)
                .run();
            let latency = report.total_time_s();
            let throughput = (batch * gpus as u64) as f64 / latency;
            println!(
                "{:>9} {:>9} {:>15.2} {:>18.0} {:>12.3}",
                gpus,
                batch,
                latency * 1e3,
                throughput,
                report.comm_time_s() * 1e3
            );
        }
    }
    println!(
        "\nno gradient AllReduce appears (comm is only the input shipment): \
         inference replicas are embarrassingly parallel, so throughput \
         scales with replicas while per-request latency tracks batch size."
    );
}
