//! Full design-space exploration — the workflow §8.3 positions TrioSim
//! for: "given an LLM and a specific GPU interconnect topology, users can
//! evaluate different parallelism strategies to determine the most
//! efficient configuration", at *unlimited* parameter settings from one
//! trace.
//!
//! ```text
//! cargo run --release --example design_space_sweep
//! ```
//!
//! Sweeps GPU count x parallelism x per-replica batch for GPT-2 on
//! NVSwitch platforms, filters out configurations that exceed device
//! memory (the estimator), and prints the throughput-optimal
//! configuration per GPU count. Hundreds of simulated configurations in
//! a few seconds, zero traces beyond the first.

use triosim::{estimate_memory, Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

struct Config {
    gpus: usize,
    parallelism: Parallelism,
    global_batch: u64,
}

fn candidates(gpus: usize, traced_batch: u64) -> Vec<Config> {
    let mut v = Vec::new();
    for mult in [1u64, 2, 4] {
        let per_gpu = traced_batch * mult / 2;
        v.push(Config {
            gpus,
            parallelism: Parallelism::DataParallel { overlap: true },
            global_batch: per_gpu.max(1) * gpus as u64,
        });
        v.push(Config {
            gpus,
            parallelism: Parallelism::TensorParallel,
            global_batch: (traced_batch * mult).max(1),
        });
        for chunks in [2u64, 4] {
            v.push(Config {
                gpus,
                parallelism: Parallelism::Pipeline { chunks },
                global_batch: (traced_batch * mult).max(1),
            });
        }
        if gpus >= 4 {
            for dp_groups in [2usize, gpus / 2] {
                v.push(Config {
                    gpus,
                    parallelism: Parallelism::Hybrid {
                        dp_groups,
                        chunks: 2,
                    },
                    global_batch: (traced_batch * mult).max(1) * dp_groups as u64,
                });
            }
        }
    }
    v
}

fn main() {
    let gpu = GpuModel::A100;
    let traced_batch = 16u64;
    let model = ModelId::Gpt2.build(traced_batch);
    let trace = Tracer::new(gpu).trace(&model);

    println!(
        "design-space sweep: {} (trace @ batch {traced_batch} on one {gpu})\n",
        trace.model()
    );
    println!(
        "{:>5} {:>14} {:>13} {:>13} {:>16} {:>8}",
        "gpus", "best strategy", "global batch", "iter (ms)", "samples/s", "OOM cut"
    );

    for gpus in [2usize, 4, 8] {
        let platform = Platform::p2(gpus);
        let mut evaluated = 0usize;
        let mut oom = 0usize;
        let mut best: Option<(String, u64, f64, f64)> = None;
        for cfg in candidates(gpus, traced_batch) {
            // Memory gate first — the estimator is instant.
            let est = estimate_memory(&trace, cfg.parallelism, cfg.gpus, cfg.global_batch);
            if !est.fits(gpu.spec().mem_capacity) {
                oom += 1;
                continue;
            }
            evaluated += 1;
            let report = SimBuilder::new(&trace, &platform)
                .parallelism(cfg.parallelism)
                .global_batch(cfg.global_batch)
                .run();
            let throughput = cfg.global_batch as f64 / report.total_time_s();
            if best.as_ref().is_none_or(|(_, _, _, t)| throughput > *t) {
                best = Some((
                    cfg.parallelism.to_string(),
                    cfg.global_batch,
                    report.total_time_s(),
                    throughput,
                ));
            }
        }
        let (name, batch, iter_s, tput) = best.expect("at least one config fits");
        println!(
            "{:>5} {:>14} {:>13} {:>13.1} {:>16.0} {:>4}/{:<3}",
            gpus,
            name,
            batch,
            iter_s * 1e3,
            tput,
            oom,
            evaluated + oom
        );
    }
    println!(
        "\nevery row summarizes a dozen simulated configurations; the whole \
         sweep reuses one single-GPU trace and completes in seconds — the \
         exploration loop the paper's abstract promises."
    );
}
