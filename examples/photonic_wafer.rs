//! Swapping the network model: electrical ring vs photonic
//! circuit-switching on a 16-chiplet wafer (a miniature of the paper's
//! §7.1 case study).
//!
//! ```text
//! cargo run --release --example photonic_wafer
//! ```
//!
//! Demonstrates the paper's extension story: a network model only needs
//! `send` and `deliver`, so replacing the packet-switching flow network
//! with the Passage-style photonic model is a one-line builder change.

use triosim::{CollectiveStyle, Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_network::{NodeId, PhotonicConfig, PhotonicNetwork};
use triosim_trace::{GpuModel, LinkKind, Tracer};

fn main() {
    let gpus = 16usize;
    let model = ModelId::ResNet50.build(64);
    let trace = Tracer::new(GpuModel::A100).trace(&model);
    let platform = Platform::ring(
        GpuModel::A100,
        gpus,
        LinkKind::WaferElectrical,
        "mini-wafer",
    );
    let batch = 64 * gpus as u64;

    let electrical = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .collective_style(CollectiveStyle::Unsegmented)
        .global_batch(batch)
        .run();

    // The photonic model replaces the whole network; device-side code is
    // untouched.
    let mut photonic_net = PhotonicNetwork::new(1 + gpus, PhotonicConfig::passage());
    photonic_net.set_electrical_bypass(
        NodeId(0),
        LinkKind::HostPcie.achieved_bandwidth(),
        LinkKind::HostPcie.latency_s(),
    );
    let photonic = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .collective_style(CollectiveStyle::Unsegmented)
        .global_batch(batch)
        .network(Box::new(photonic_net))
        .run();

    println!(
        "{} on a {gpus}-chiplet wafer, data parallelism:",
        trace.model()
    );
    for (name, r) in [
        ("electrical ring", &electrical),
        ("photonic passage", &photonic),
    ] {
        println!(
            "  {name:<17}: total {:>7.1} ms | compute {:>7.1} ms | comm {:>7.1} ms ({:.0}%)",
            r.total_time_s() * 1e3,
            r.compute_time_s() * 1e3,
            r.comm_time_s() * 1e3,
            100.0 * r.comm_ratio()
        );
    }
    println!(
        "\nphotonic cuts communication {:.1}x on this workload",
        electrical.comm_time_s() / photonic.comm_time_s().max(1e-12)
    );
}
