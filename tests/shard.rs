//! Sharded-execution identity properties: the parallel path must be
//! byte-identical to the single-threaded oracle at every shard count,
//! for every parallelism strategy, with and without fault plans, and
//! must trip run budgets with exactly the serial kind and limit.
//!
//! Honest note on faults: a non-empty fault plan *disables* the sharded
//! path (faults break iteration-invariance, so `SimBuilder` routes those
//! runs serially). The fault cases here therefore assert the gating —
//! that asking for shards never changes a faulted run — rather than
//! exercising parallel workers.

use proptest::prelude::*;
use triosim::{FaultPlan, GpuSlowdown, Jitter, Parallelism, Platform, SimBuilder};
use triosim_des::RunBudget;
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Trace, Tracer};

fn trace(model: ModelId, batch: u64) -> Trace {
    Tracer::new(GpuModel::A100).trace(&model.build(batch))
}

fn parallelism(index: usize) -> Parallelism {
    match index % 4 {
        0 => Parallelism::DataParallel { overlap: false },
        1 => Parallelism::DataParallel { overlap: true },
        2 => Parallelism::TensorParallel,
        _ => Parallelism::Pipeline { chunks: 2 },
    }
}

fn model(index: usize) -> ModelId {
    [ModelId::Vgg11, ModelId::ResNet18][index % 2]
}

fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 0,
            factor: 1.25,
        }],
        jitter: Some(Jitter { amplitude: 0.03 }),
        ..FaultPlan::default()
    }
}

fn canonical(
    t: &Trace,
    p: &Platform,
    par: Parallelism,
    iterations: usize,
    shards: usize,
    faults: Option<&FaultPlan>,
) -> String {
    let mut b = SimBuilder::new(t, p)
        .parallelism(par)
        .iterations(iterations)
        .shards(shards);
    if let Some(plan) = faults {
        b = b.faults(plan.clone());
    }
    serde_json::to_string(&b.run().to_canonical_json()).expect("canonical JSON is finite")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract: any shard count, any parallelism, any
    /// iteration count — same bytes as the serial oracle.
    #[test]
    fn sharded_reports_are_byte_identical_to_serial(
        model_ix in 0usize..2,
        par_ix in 0usize..4,
        gpus_ix in 0usize..2,
        batch_ix in 0usize..2,
        iterations in 2usize..6,
    ) {
        let gpus = [2usize, 4][gpus_ix];
        let batch = [4u64, 8][batch_ix];
        let t = trace(model(model_ix), batch);
        let p = Platform::p2(gpus);
        let par = parallelism(par_ix);
        let serial = canonical(&t, &p, par, iterations, 1, None);
        for shards in [2, 4, 8] {
            let sharded = canonical(&t, &p, par, iterations, shards, None);
            prop_assert_eq!(
                &serial, &sharded,
                "shards={} diverged (model={:?} par={:?} gpus={} iters={})",
                shards, model(model_ix), par, gpus, iterations
            );
        }
    }

    /// Fault plans route serially regardless of the shard knob: asking
    /// for shards never changes a faulted run's bytes.
    #[test]
    fn faulted_runs_ignore_the_shard_knob(
        par_ix in 0usize..4,
        seed in 0u64..1000,
        iterations in 2usize..4,
    ) {
        let t = trace(ModelId::Vgg11, 4);
        let p = Platform::p2(2);
        let par = parallelism(par_ix);
        let plan = fault_plan(seed);
        let serial = canonical(&t, &p, par, iterations, 1, Some(&plan));
        let sharded = canonical(&t, &p, par, iterations, 4, Some(&plan));
        prop_assert_eq!(serial, sharded);
    }

    /// Budget trips are deterministic across shard counts: same
    /// `BudgetKind`, same limit message — or the same successful bytes.
    #[test]
    fn budget_trips_are_shard_count_invariant(
        limit_ix in 0usize..5,
        iterations in 2usize..5,
    ) {
        let limit = [50u64, 500, 5_000, 50_000, 500_000][limit_ix];
        let t = trace(ModelId::Vgg11, 4);
        let p = Platform::p2(2);
        let run = |shards: usize| {
            SimBuilder::new(&t, &p)
                .iterations(iterations)
                .shards(shards)
                .budget(RunBudget::unlimited().with_max_events(limit))
                .try_run()
                .map(|r| serde_json::to_string(&r.to_canonical_json()).expect("finite"))
                .map_err(|e| e.to_string())
        };
        let serial = run(1);
        for shards in [2, 4, 8] {
            prop_assert_eq!(&serial, &run(shards), "limit={} shards={}", limit, shards);
        }
    }
}

/// Simulated-time budgets must also trip identically — the deterministic
/// replay covers both event and sim-time axes.
#[test]
fn sim_time_budget_trips_identically_across_shard_counts() {
    let t = trace(ModelId::Vgg11, 4);
    let p = Platform::p2(2);
    let run = |shards: usize, us: u64| {
        SimBuilder::new(&t, &p)
            .iterations(4)
            .shards(shards)
            .budget(RunBudget::unlimited().with_max_sim_time_us(us))
            .try_run()
            .map(|r| serde_json::to_string(&r.to_canonical_json()).expect("finite"))
            .map_err(|e| e.to_string())
    };
    // Sweep trip points from "inside the probe iteration" to "inside a
    // parallel block" to "never".
    for us in [1, 1_000, 30_000, 1_000_000_000] {
        let serial = run(1, us);
        for shards in [2, 4] {
            assert_eq!(serial, run(shards, us), "us={us} shards={shards}");
        }
    }
}
