//! Checkpoint/restore identity properties: a run resumed from any
//! boundary snapshot must produce canonical bytes identical to the
//! uninterrupted run — fault-free, faulted, and budgeted alike — and
//! every malformed or mismatched snapshot must surface as a typed
//! [`CheckpointError`], never undefined behavior.
//!
//! The "kill at boundary k" scenario is modeled exactly: a run of `k`
//! iterations with cadence `k` leaves behind the same snapshot a longer
//! run killed right after boundary `k` would have left (the snapshot's
//! spec hash deliberately excludes the iteration count), so restoring it
//! into an `n`-iteration run reproduces the interrupted-and-resumed
//! lifecycle byte for byte.

use std::path::PathBuf;

use proptest::prelude::*;
use serde::Deserialize as _;
use triosim::{
    CheckpointError, FaultPlan, GpuSlowdown, Jitter, LinkDegradation, Parallelism, Platform,
    SimBuilder, SimError,
};
use triosim_des::RunBudget;
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Trace, Tracer};

fn trace(model: ModelId, batch: u64) -> Trace {
    Tracer::new(GpuModel::A100).trace(&model.build(batch))
}

fn parallelism(index: usize) -> Parallelism {
    match index % 4 {
        0 => Parallelism::DataParallel { overlap: false },
        1 => Parallelism::DataParallel { overlap: true },
        2 => Parallelism::TensorParallel,
        _ => Parallelism::Pipeline { chunks: 2 },
    }
}

fn model(index: usize) -> ModelId {
    [ModelId::Vgg11, ModelId::ResNet18][index % 2]
}

fn temp_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "triosim-ckpt-test-{tag}-{}-{n}.json",
        std::process::id()
    ))
}

/// A fault plan whose timed entries land mid-run: a permanent GPU
/// slowdown, per-op jitter (exercises the seeded RNG position across the
/// restore), and a link degradation that fires partway through.
fn fault_plan(at_s: f64) -> FaultPlan {
    FaultPlan {
        seed: 7,
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 0,
            factor: 1.25,
        }],
        jitter: Some(Jitter { amplitude: 0.03 }),
        link_degradations: vec![LinkDegradation {
            src: 1,
            dst: 2,
            factor: 0.5,
            at_s,
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn checkpointing_is_invisible_in_the_report() {
    let t = trace(ModelId::ResNet18, 16);
    let p = Platform::p2(2);
    let plain = SimBuilder::new(&t, &p).iterations(4).run();
    let path = temp_path("invisible");
    let checkpointed = SimBuilder::new(&t, &p)
        .iterations(4)
        .checkpoint(&path, 2)
        .try_run()
        .expect("checkpointed run completes");
    assert_eq!(plain.to_canonical_json(), checkpointed.to_canonical_json());
    assert!(path.exists(), "final boundary snapshot is on disk");
    std::fs::remove_file(&path).ok();
}

#[test]
fn restore_from_every_boundary_is_byte_identical() {
    let t = trace(ModelId::ResNet18, 16);
    let p = Platform::p2(2);
    let n = 5;
    let uninterrupted = SimBuilder::new(&t, &p).iterations(n).run();
    let serial = uninterrupted.to_canonical_json();
    // The uninterrupted oracle at shard count 4 must agree too.
    let sharded = SimBuilder::new(&t, &p)
        .iterations(n)
        .shards(4)
        .run()
        .to_canonical_json();
    assert_eq!(serial, sharded);
    for k in 1..=n {
        let path = temp_path("boundary");
        // A k-iteration run with cadence k leaves the snapshot a longer
        // run killed right after boundary k would have left.
        SimBuilder::new(&t, &p)
            .iterations(k)
            .checkpoint(&path, k)
            .try_run()
            .expect("prefix run completes");
        let resumed = SimBuilder::new(&t, &p)
            .iterations(n)
            .restore(&path)
            .try_run()
            .expect("restore succeeds");
        assert_eq!(
            serial,
            resumed.to_canonical_json(),
            "restore from boundary {k} of {n} diverged"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn restore_of_a_finished_run_reproduces_its_report() {
    let t = trace(ModelId::Vgg11, 8);
    let p = Platform::p2(2);
    let path = temp_path("finished");
    let full = SimBuilder::new(&t, &p)
        .iterations(3)
        .checkpoint(&path, 3)
        .try_run()
        .expect("checkpointed run completes");
    let resumed = SimBuilder::new(&t, &p)
        .iterations(3)
        .restore(&path)
        .try_run()
        .expect("zero-remaining restore succeeds");
    assert_eq!(full.to_canonical_json(), resumed.to_canonical_json());
    std::fs::remove_file(&path).ok();
}

#[test]
fn faulted_restore_is_byte_identical() {
    let t = trace(ModelId::ResNet18, 16);
    let p = Platform::p2(2);
    // Place the timed link degradation inside iteration 2 of 4.
    let per_iter = SimBuilder::new(&t, &p).iterations(1).run().total_time_s();
    let plan = fault_plan(1.5 * per_iter);
    let n = 4;
    let uninterrupted = SimBuilder::new(&t, &p)
        .iterations(n)
        .faults(plan.clone())
        .try_run()
        .expect("faulted run completes");
    for k in [1, 2, 3] {
        let path = temp_path("faulted");
        SimBuilder::new(&t, &p)
            .iterations(k)
            .faults(plan.clone())
            .checkpoint(&path, k)
            .try_run()
            .expect("faulted prefix completes");
        let resumed = SimBuilder::new(&t, &p)
            .iterations(n)
            .faults(plan.clone())
            .restore(&path)
            .try_run()
            .expect("faulted restore succeeds");
        assert_eq!(
            uninterrupted.to_canonical_json(),
            resumed.to_canonical_json(),
            "faulted restore from boundary {k} diverged"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn budgeted_restore_trips_identically() {
    let t = trace(ModelId::ResNet18, 16);
    let p = Platform::p2(2);
    // An event budget that survives iteration 1 but trips later.
    let events_per_iter = {
        let path = temp_path("budget-probe");
        SimBuilder::new(&t, &p)
            .iterations(1)
            .checkpoint(&path, 1)
            .try_run()
            .expect("probe completes");
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        std::fs::remove_file(&path).ok();
        let v: serde::Value = serde_json::from_str(text.trim_end()).expect("snapshot is JSON");
        // The event-budget axis counts exactly the compute and flow
        // deliveries, which are the first two dispatch counters.
        let dispatches = Vec::<u64>::from_value(
            v.get("state")
                .and_then(|s| s.get("dispatches"))
                .expect("snapshot records dispatch counters"),
        )
        .expect("dispatches are integers");
        dispatches[0] + dispatches[1]
    };
    let limit = events_per_iter * 2 + events_per_iter / 2;
    let budget = || RunBudget::unlimited().with_max_events(limit);
    let serial = SimBuilder::new(&t, &p)
        .iterations(4)
        .budget(budget())
        .try_run()
        .expect_err("budget trips in iteration 3");
    let path = temp_path("budget");
    SimBuilder::new(&t, &p)
        .iterations(2)
        .budget(budget())
        .checkpoint(&path, 2)
        .try_run()
        .expect("two iterations fit the budget");
    let resumed = SimBuilder::new(&t, &p)
        .iterations(4)
        .budget(budget())
        .restore(&path)
        .try_run()
        .expect_err("restored run trips the same budget");
    assert_eq!(serial.to_string(), resumed.to_string());
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_spec_is_a_typed_error() {
    let t = trace(ModelId::ResNet18, 16);
    let p = Platform::p2(2);
    let path = temp_path("mismatch");
    SimBuilder::new(&t, &p)
        .iterations(2)
        .checkpoint(&path, 2)
        .try_run()
        .expect("run completes");
    // Different platform ⇒ different graph and network ⇒ different hash.
    let p4 = Platform::p2(4);
    let err = SimBuilder::new(&t, &p4)
        .iterations(4)
        .restore(&path)
        .try_run()
        .expect_err("restoring under a different scenario must fail");
    assert!(
        matches!(
            err,
            SimError::Checkpoint(CheckpointError::SpecMismatch { .. })
        ),
        "got {err:?}"
    );
    // Same scenario but a different fault plan also mismatches.
    let err = SimBuilder::new(&t, &p)
        .iterations(4)
        .faults(fault_plan(0.1))
        .restore(&path)
        .try_run()
        .expect_err("a different fault plan must fail");
    assert!(matches!(
        err,
        SimError::Checkpoint(CheckpointError::SpecMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_and_future_snapshots_are_typed_errors() {
    let t = trace(ModelId::Vgg11, 8);
    let p = Platform::p2(2);
    let path = temp_path("corrupt");
    std::fs::write(&path, "{not json").expect("write scratch file");
    let err = SimBuilder::new(&t, &p)
        .iterations(2)
        .restore(&path)
        .try_run()
        .expect_err("garbage must fail");
    assert!(matches!(
        err,
        SimError::Checkpoint(CheckpointError::Corrupt(_))
    ));
    std::fs::write(
        &path,
        "{\"checkpoint\":\"triosim-sim\",\"version\":99,\"spec_hash\":\"0\",\"completed\":1,\
         \"state\":{}}\n",
    )
    .expect("write scratch file");
    let err = SimBuilder::new(&t, &p)
        .iterations(2)
        .restore(&path)
        .try_run()
        .expect_err("future version must fail");
    assert!(matches!(
        err,
        SimError::Checkpoint(CheckpointError::UnsupportedVersion { found: 99, .. })
    ));
    let err = SimBuilder::new(&t, &p)
        .iterations(2)
        .restore(temp_path("absent"))
        .try_run()
        .expect_err("missing file must fail");
    assert!(matches!(err, SimError::Checkpoint(CheckpointError::Io(_))));
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_with_more_iterations_than_requested_is_corrupt() {
    let t = trace(ModelId::Vgg11, 8);
    let p = Platform::p2(2);
    let path = temp_path("excess");
    SimBuilder::new(&t, &p)
        .iterations(3)
        .checkpoint(&path, 3)
        .try_run()
        .expect("run completes");
    let err = SimBuilder::new(&t, &p)
        .iterations(2)
        .restore(&path)
        .try_run()
        .expect_err("3 completed iterations cannot resume a 2-iteration run");
    assert!(matches!(
        err,
        SimError::Checkpoint(CheckpointError::Corrupt(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn shard_warning_names_the_reason_on_stderr() {
    // Satellite: the silent serial fallback is gone. A `--shards`
    // request that cannot shard (single iteration here) must say so.
    let bin = env!("CARGO_BIN_EXE_triosim-cli");
    let tmp = temp_path("warn-trace").with_extension("json");
    let out = std::process::Command::new(bin)
        .args(["trace", "--model", "vgg11", "--batch", "8", "--gpu", "A100"])
        .arg("-o")
        .arg(&tmp)
        .output()
        .expect("trace subcommand runs");
    assert!(out.status.success(), "trace failed: {out:?}");
    let out = std::process::Command::new(bin)
        .args(["simulate", "--shards", "4", "--iterations", "1"])
        .arg("--trace")
        .arg(&tmp)
        .output()
        .expect("simulate subcommand runs");
    assert!(out.status.success(), "simulate failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--shards 4 ignored") && stderr.contains("single iteration"),
        "stderr must name the fallback reason, got: {stderr}"
    );
    // A shardable run stays silent.
    let out = std::process::Command::new(bin)
        .args(["simulate", "--shards", "2", "--iterations", "2"])
        .arg("--trace")
        .arg(&tmp)
        .output()
        .expect("simulate subcommand runs");
    assert!(out.status.success(), "simulate failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("ignored"),
        "no warning expected on the sharded path, got: {stderr}"
    );
    std::fs::remove_file(&tmp).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-at-any-boundary identity over random model × parallelism ×
    /// iteration counts: restoring boundary `k` of an `n`-iteration run
    /// reproduces the uninterrupted run's canonical bytes exactly, at
    /// shard counts 1 and 4.
    #[test]
    fn restore_from_any_checkpoint_is_byte_identical(
        model_idx in 0usize..2,
        par_idx in 0usize..4,
        n in 2usize..5,
        k_frac in 0usize..3,
    ) {
        let k = 1 + k_frac % n.saturating_sub(1).max(1);
        let t = trace(model(model_idx), 8);
        let p = Platform::p2(2);
        let par = parallelism(par_idx);
        let serial = SimBuilder::new(&t, &p)
            .parallelism(par)
            .iterations(n)
            .run()
            .to_canonical_json();
        let sharded = SimBuilder::new(&t, &p)
            .parallelism(par)
            .iterations(n)
            .shards(4)
            .run()
            .to_canonical_json();
        prop_assert_eq!(&serial, &sharded, "sharded oracle diverged");
        let path = temp_path("prop");
        SimBuilder::new(&t, &p)
            .parallelism(par)
            .iterations(k)
            .checkpoint(&path, k)
            .try_run()
            .expect("prefix run completes");
        let resumed = SimBuilder::new(&t, &p)
            .parallelism(par)
            .iterations(n)
            .restore(&path)
            .try_run()
            .expect("restore succeeds")
            .to_canonical_json();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&serial, &resumed, "boundary {} of {} diverged", k, n);
    }
}
