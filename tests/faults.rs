//! Workspace fault-injection tests: seed determinism under randomized
//! fault plans, degraded-link rerouting, plan validation against the
//! platform, and the empty-plan ⇒ baseline bit-identity oracle — all at
//! the [`SimBuilder`] level, the same surface the CLI drives.

use std::sync::OnceLock;

use proptest::prelude::*;
use triosim::{
    FaultPlan, GpuDropout, GpuSlowdown, Jitter, LinkDegradation, LinkFailure, Parallelism,
    Platform, SimBuilder, SimError,
};
use triosim_trace::{GpuModel, Trace, Tracer};

const GPUS: usize = 4;

fn trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| {
        Tracer::new(GpuModel::A100).trace(&triosim_modelzoo::ModelId::ResNet18.build(8))
    })
}

fn ring() -> Platform {
    Platform::ring(
        GpuModel::A100,
        GPUS,
        triosim_trace::LinkKind::NvLink3,
        "ring4",
    )
}

fn run_ddp(platform: &Platform, plan: FaultPlan) -> Result<triosim::SimReport, SimError> {
    SimBuilder::new(trace(), platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(8 * GPUS as u64)
        .faults(plan)
        .try_run()
}

/// The ring's GPU-to-GPU links as platform node-id pairs: host is node 0,
/// GPUs are nodes `1..=GPUS`, neighbours wrap around.
fn ring_link(i: usize) -> (usize, usize) {
    (1 + i % GPUS, 1 + (i + 1) % GPUS)
}

// ---------------------------------------------------------------------------
// Randomized seed determinism
// ---------------------------------------------------------------------------

/// Assembles a plan valid for the 4-ring from raw proptest draws. Optional
/// pieces arrive as `(on-flag, value...)` tuples because the offline
/// proptest subset has no `prop::option`.
#[allow(clippy::type_complexity)]
fn build_plan(
    seed: u64,
    slowdowns: Vec<(usize, f64)>,
    jitter: (u8, f64),
    degradations: Vec<(usize, f64, f64)>,
    failure: (u8, usize, f64, (u8, f64)),
    dropout: (u8, usize, f64),
) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    for (gpu, factor) in slowdowns {
        plan.gpu_slowdowns.push(GpuSlowdown { gpu, factor });
    }
    if jitter.0 == 1 {
        plan.jitter = Some(Jitter {
            amplitude: jitter.1,
        });
    }
    for (link, factor, at_s) in degradations {
        let (src, dst) = ring_link(link);
        plan.link_degradations.push(LinkDegradation {
            src,
            dst,
            factor,
            at_s,
        });
    }
    let (fail_on, link, at_s, (repair_on, repair_after)) = failure;
    if fail_on == 1 {
        let (src, dst) = ring_link(link);
        plan.link_failures.push(LinkFailure {
            src,
            dst,
            at_s,
            repair_s: (repair_on == 1).then_some(at_s + repair_after),
        });
    }
    if dropout.0 == 1 {
        plan.gpu_dropouts.push(GpuDropout {
            gpu: dropout.1,
            at_s: dropout.2,
        });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid fault plan, however it composes stragglers, jitter,
    /// degradations, failures, and drop-outs, must replay byte-identically
    /// from its seed: two invocations produce the same outcome — the same
    /// report down to the last timeline record, or the same structured
    /// error at the same simulated time.
    #[test]
    fn fault_plans_are_seed_deterministic(
        seed in any::<u64>(),
        slowdowns in prop::collection::vec((0..GPUS, 1.0..3.0f64), 0..3),
        jitter in (0u8..2, 0.01..0.25f64),
        degradations in prop::collection::vec((0..GPUS, 0.2..0.9f64, 0.0..0.005f64), 0..3),
        failure in (0u8..2, 0..GPUS, 0.0..0.005f64, (0u8..2, 0.001..0.01f64)),
        dropout in (0u8..2, 0..GPUS, 0.0..0.01f64),
    ) {
        let plan = build_plan(seed, slowdowns, jitter, degradations, failure, dropout);
        let platform = ring();
        let a = run_ddp(&platform, plan.clone());
        let b = run_ddp(&platform, plan);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// A fault-injected run never hangs or panics: it either completes with
    /// fault accounting or returns a structured error naming the cause.
    #[test]
    fn fault_plans_degrade_gracefully(
        seed in any::<u64>(),
        slowdowns in prop::collection::vec((0..GPUS, 1.0..3.0f64), 0..3),
        jitter in (0u8..2, 0.01..0.25f64),
        degradations in prop::collection::vec((0..GPUS, 0.2..0.9f64, 0.0..0.005f64), 0..3),
        failure in (0u8..2, 0..GPUS, 0.0..0.005f64, (0u8..2, 0.001..0.01f64)),
        dropout in (0u8..2, 0..GPUS, 0.0..0.01f64),
    ) {
        let plan = build_plan(seed, slowdowns, jitter, degradations, failure, dropout);
        let has_faults = !plan.is_empty();
        match run_ddp(&ring(), plan) {
            Ok(report) => {
                prop_assert!(report.total_time_s().is_finite());
                prop_assert_eq!(report.fault_stats().is_some(), has_faults);
            }
            Err(SimError::Partitioned { .. } | SimError::GpuLost { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Degraded-link rerouting and validation units
// ---------------------------------------------------------------------------

/// Failing one ring link mid-run reroutes traffic the long way around
/// instead of hanging: the run completes, the reroute is counted, and the
/// detour costs extra hops.
#[test]
fn ring_link_failure_reroutes_the_long_way() {
    // Fail the rank1->rank2 link in the middle of the first allreduce step
    // that uses it, so a flow is in flight on the dying link — it must be
    // rerouted the long way around, not dropped and not deadlocked.
    let baseline = run_ddp(&ring(), FaultPlan::default()).expect("fault-free");
    let step = baseline
        .timeline()
        .iter()
        .find(|r| {
            matches!(r.track, triosim::TimelineTrack::Network)
                && r.label.contains("allreduce")
                && r.label.contains("rank1->rank2")
        })
        .expect("ring DDP has allreduce traffic on rank1->rank2");
    let at_s = (step.start.as_seconds() + step.end.as_seconds()) / 2.0;
    let (src, dst) = ring_link(1);
    let plan = FaultPlan {
        link_failures: vec![LinkFailure {
            src,
            dst,
            at_s,
            repair_s: None,
        }],
        ..FaultPlan::default()
    };
    let report = run_ddp(&ring(), plan).expect("a ring survives one link failure");
    let net = report.network_stats();
    assert_eq!(net.link_faults, 1, "one injected link fault");
    assert!(
        net.reroutes > 0,
        "ring traffic must be rerouted, got {net:?}"
    );
    assert!(
        net.added_hops > 0,
        "the detour is longer than the direct link"
    );
    let stats = report.fault_stats().expect("fault accounting attached");
    assert_eq!(stats.link_fails, 1);
    assert_eq!(stats.faults_injected, 1);
}

/// A degraded straggler link slows the run down relative to baseline but
/// keeps the route (no reroute events) — bandwidth changes never invalidate
/// hop-count routing.
#[test]
fn degraded_link_slows_run_without_rerouting() {
    let baseline = run_ddp(&ring(), FaultPlan::default()).expect("fault-free");
    let (src, dst) = ring_link(1);
    let plan = FaultPlan {
        link_degradations: vec![LinkDegradation {
            src,
            dst,
            factor: 0.05,
            at_s: 0.0,
        }],
        ..FaultPlan::default()
    };
    let degraded = run_ddp(&ring(), plan).expect("degradation is not fatal");
    assert!(
        degraded.total_time_s() > baseline.total_time_s(),
        "20x less bandwidth on a ring link must cost time: {} vs {}",
        degraded.total_time_s(),
        baseline.total_time_s()
    );
    assert_eq!(degraded.network_stats().reroutes, 0);
    assert_eq!(degraded.fault_stats().expect("stats").link_degrades, 1);
}

/// A plan naming a link that does not exist on the platform is rejected
/// up front with an error naming the offending entry — not silently
/// ignored, not a panic mid-run.
#[test]
fn plan_with_nonexistent_link_is_rejected_by_name() {
    // GPUs 1 and 3 are opposite corners of the 4-ring: no direct link.
    let plan = FaultPlan {
        link_degradations: vec![LinkDegradation {
            src: 1,
            dst: 3,
            factor: 0.5,
            at_s: 0.0,
        }],
        ..FaultPlan::default()
    };
    let err = run_ddp(&ring(), plan).expect_err("no link between n1 and n3");
    match err {
        SimError::InvalidPlan(msg) => {
            assert!(msg.contains("link_degradations[0]"), "message was: {msg}");
            assert!(
                msg.contains("no link between n1 and n3"),
                "message was: {msg}"
            );
        }
        other => panic!("expected InvalidPlan, got {other}"),
    }
}

/// Out-of-range GPU ranks are likewise named.
#[test]
fn plan_with_out_of_range_gpu_is_rejected_by_name() {
    let plan = FaultPlan {
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 99,
            factor: 2.0,
        }],
        ..FaultPlan::default()
    };
    let err = run_ddp(&ring(), plan).expect_err("gpu 99 does not exist");
    match err {
        SimError::InvalidPlan(msg) => {
            assert!(msg.contains("gpu 99"), "message was: {msg}");
        }
        other => panic!("expected InvalidPlan, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Empty-plan ⇒ baseline bit-identity oracle
// ---------------------------------------------------------------------------

/// Attaching an empty fault plan (or a seed with no plan content) must be
/// byte-identical to never mentioning faults at all: same report debug
/// representation, no fault stats, no extra events.
#[test]
fn empty_plan_is_bit_identical_to_baseline() {
    let platform = ring();
    let baseline = SimBuilder::new(trace(), &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(8 * GPUS as u64)
        .iterations(2)
        .run();
    let with_empty_plan = SimBuilder::new(trace(), &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(8 * GPUS as u64)
        .iterations(2)
        .faults(FaultPlan::default())
        .fault_seed(0xDEAD_BEEF)
        .try_run()
        .expect("empty plan cannot fail");
    assert!(with_empty_plan.fault_stats().is_none());
    assert_eq!(format!("{baseline:?}"), format!("{with_empty_plan:?}"));
}

/// Two invocations with the same non-trivial plan and seed produce
/// identical reports even when jitter is active (the stochastic path).
#[test]
fn jittered_runs_replay_identically_from_the_seed() {
    let plan = FaultPlan {
        seed: 7,
        jitter: Some(Jitter { amplitude: 0.2 }),
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 2,
            factor: 1.7,
        }],
        ..FaultPlan::default()
    };
    let a = run_ddp(&ring(), plan.clone()).expect("jitter is not fatal");
    let b = run_ddp(&ring(), plan).expect("jitter is not fatal");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.total_time_s().is_finite());
    // The straggler must have cost gpu 2 some compute time.
    let stats = a.fault_stats().expect("stats attached");
    assert!(stats.lost_compute_s[2] > 0.0, "straggler lost time");
}
