//! Golden snapshot tests: canonical `SimReport` JSON for a small
//! DP/DDP/TP/PP scenario quartet, committed under `tests/golden/`.
//!
//! Any drift in a simulation-determined field — totals, per-GPU
//! occupancy, queue/network counters, or the order-sensitive timeline
//! hash — fails the comparison with both strings printed. To bless an
//! intentional behavior change, regenerate the snapshots:
//!
//! ```text
//! TRIOSIM_BLESS=1 cargo test --test golden
//! ```
//!
//! and commit the diff under `tests/golden/` (review it: the diff *is*
//! the behavior change). See `TESTING.md` for the full workflow.

use std::path::PathBuf;

use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn bless_mode() -> bool {
    std::env::var_os("TRIOSIM_BLESS").is_some_and(|v| v == "1")
}

/// The quartet's shared configuration: VGG-11 traced at batch 8 on an
/// A40, simulated on two NVLink'd A100s (P2). Small enough to run in
/// milliseconds, rich enough that every report field is non-trivial.
fn canonical_report(parallelism: Parallelism) -> String {
    let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(8));
    let platform = Platform::p2(2);
    let report = SimBuilder::new(&trace, &platform)
        .parallelism(parallelism)
        .run();
    serde_json::to_string(&report.to_canonical_json()).expect("canonical JSON is finite")
}

fn check(name: &str, parallelism: Parallelism) {
    let actual = canonical_report(parallelism);
    let path = golden_dir().join(format!("{name}.json"));
    if bless_mode() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `TRIOSIM_BLESS=1 cargo test --test golden` \
             and commit the result",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "\n`{name}` drifted from its golden snapshot.\n\
         If this change is intentional, re-bless with \
         `TRIOSIM_BLESS=1 cargo test --test golden` and commit the diff.\n\
         actual  : {actual}\n\
         expected: {expected}\n"
    );
}

#[test]
fn golden_dp() {
    check("dp", Parallelism::DataParallel { overlap: false });
}

#[test]
fn golden_ddp() {
    check("ddp", Parallelism::DataParallel { overlap: true });
}

#[test]
fn golden_tp() {
    check("tp", Parallelism::TensorParallel);
}

#[test]
fn golden_pp() {
    check("pp", Parallelism::Pipeline { chunks: 2 });
}

/// The golden quartet under `--shards 4`: a single-iteration run takes
/// the serial path regardless of the shard knob, so the snapshots must
/// match exactly — and at multiple iterations the sharded path engages
/// and must still be byte-identical to the serial oracle.
#[test]
fn golden_quartet_is_shard_invariant() {
    let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(8));
    let platform = Platform::p2(2);
    let quartet = [
        ("dp", Parallelism::DataParallel { overlap: false }),
        ("ddp", Parallelism::DataParallel { overlap: true }),
        ("tp", Parallelism::TensorParallel),
        ("pp", Parallelism::Pipeline { chunks: 2 }),
    ];
    for (name, parallelism) in quartet {
        // Snapshot configuration (1 iteration): the shard knob is inert.
        let sharded = SimBuilder::new(&trace, &platform)
            .parallelism(parallelism)
            .shards(4)
            .run();
        let sharded =
            serde_json::to_string(&sharded.to_canonical_json()).expect("canonical JSON is finite");
        if !bless_mode() {
            let path = golden_dir().join(format!("{name}.json"));
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
            assert_eq!(sharded, expected, "`{name}` drifted under --shards 4");
        }
        // Multi-iteration: the parallel path engages; bytes must match
        // the serial oracle exactly.
        let run = |shards: usize| {
            let r = SimBuilder::new(&trace, &platform)
                .parallelism(parallelism)
                .iterations(3)
                .shards(shards)
                .run();
            serde_json::to_string(&r.to_canonical_json()).expect("canonical JSON is finite")
        };
        assert_eq!(run(1), run(4), "`{name}` x3 diverged under --shards 4");
    }
}

/// The snapshot comparison is only as strong as the canonical form:
/// verify the timeline hash actually covers scheduling order, not just
/// aggregate totals, by checking two different configurations disagree.
#[test]
fn canonical_form_is_sensitive_to_configuration() {
    let a = canonical_report(Parallelism::DataParallel { overlap: true });
    let b = canonical_report(Parallelism::TensorParallel);
    assert_ne!(a, b);
}
