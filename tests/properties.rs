//! Workspace-level property tests: invariants of the executor, the flow
//! network, and trace tooling under randomized inputs.

use proptest::prelude::*;
use triosim::{execute, TaskGraph};
use triosim_des::{TimeSpan, VirtualTime};
use triosim_network::{FlowNetwork, NetworkModel, NodeId, Topology};

/// Builds a random DAG of compute/transfer/barrier tasks whose deps only
/// point backwards (guaranteed acyclic).
fn random_graph(
    gpus: usize,
    spec: &[(u8, u64, u8)], // (kind selector, size, dep selector)
) -> TaskGraph {
    let mut g = TaskGraph::new(gpus);
    let mut ids = Vec::new();
    for (i, &(kind, size, dep)) in spec.iter().enumerate() {
        let deps = if ids.is_empty() || dep == 0 {
            vec![]
        } else {
            vec![ids[(dep as usize - 1) % ids.len()]]
        };
        let id = match kind % 3 {
            0 => g.compute(
                format!("c{i}"),
                (size as usize) % gpus,
                TimeSpan::from_micros((size % 1000) as f64),
                deps,
            ),
            1 => {
                let src = NodeId(1 + (size as usize) % gpus);
                let dst = NodeId(1 + (size as usize + 1) % gpus);
                g.transfer(format!("t{i}"), src, dst, size % 1_000_000 + 1, deps)
            }
            _ => g.barrier(format!("b{i}"), deps),
        };
        ids.push(id);
    }
    g
}

fn star_network(gpus: usize) -> FlowNetwork {
    // Host node 0 plus GPUs 1..=gpus, fully connected.
    Topology::switch(gpus + 1, 10e9, 1e-6);
    let mut topo = Topology::new(gpus + 1);
    for i in 0..=gpus {
        for j in (i + 1)..=gpus {
            topo.add_duplex(NodeId(i), NodeId(j), 10e9, 1e-6);
        }
    }
    FlowNetwork::new(topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random DAG executes to completion (no deadlock), finishing
    /// no earlier than its longest single task and no later than the sum
    /// of everything serialized.
    #[test]
    fn executor_never_deadlocks(
        gpus in 1usize..4,
        spec in prop::collection::vec((any::<u8>(), 1u64..2_000_000, any::<u8>()), 1..60),
    ) {
        let g = random_graph(gpus, &spec);
        let mut net = star_network(gpus);
        let report = execute(&g, &mut net);
        prop_assert_eq!(report.tasks_executed(), g.len());

        // Lower bound: the longest compute task must fit inside the total.
        let longest = g
            .tasks()
            .iter()
            .filter_map(|t| match t.kind {
                triosim::TaskKind::Compute { duration, .. } => Some(duration),
                _ => None,
            })
            .max()
            .unwrap_or(TimeSpan::ZERO);
        prop_assert!(report.total_time() >= longest);

        // Upper bound: fully serial execution plus generous per-transfer
        // time.
        let serial = g.total_compute_time().as_seconds()
            + g.tasks().len() as f64 * 1e-3
            + g.total_transfer_bytes() as f64 / 1e9;
        prop_assert!(report.total_time_s() <= serial + 1e-6);
    }

    /// Executor determinism on random DAGs.
    #[test]
    fn executor_is_deterministic(
        spec in prop::collection::vec((any::<u8>(), 1u64..1_000_000, any::<u8>()), 1..40),
    ) {
        let g = random_graph(2, &spec);
        let a = execute(&g, &mut star_network(2));
        let b = execute(&g, &mut star_network(2));
        prop_assert_eq!(a.total_time(), b.total_time());
        prop_assert_eq!(a.bytes_transferred(), b.bytes_transferred());
    }

    /// Flow network: concurrent flows on one link never finish earlier
    /// than ideal (bytes / bandwidth) and the link is conserved — total
    /// goodput never exceeds capacity.
    #[test]
    fn flows_respect_capacity(sizes in prop::collection::vec(1u64..50_000_000, 1..12)) {
        let mut topo = Topology::new(2);
        let bw = 1e9;
        topo.add_duplex(NodeId(0), NodeId(1), bw, 0.0);
        let mut net = FlowNetwork::new(topo);
        let t0 = VirtualTime::ZERO;
        let mut pending: Vec<(triosim_network::FlowId, VirtualTime)> = Vec::new();
        let mut schedule_of = std::collections::HashMap::new();
        for &bytes in &sizes {
            let (f, cmds) = net.send(t0, NodeId(0), NodeId(1), bytes);
            for c in cmds {
                if let triosim_network::NetCommand::Schedule { flow, at } = c {
                    schedule_of.insert(flow, at);
                }
            }
            pending.push((f, VirtualTime::ZERO));
        }
        // Deliver flows in scheduled order, applying rescheduling.
        let total_bytes: u64 = sizes.iter().sum();
        let mut last = VirtualTime::ZERO;
        while !schedule_of.is_empty() {
            let (&flow, &at) = schedule_of
                .iter()
                .min_by_key(|(f, at)| (**at, **f))
                .unwrap();
            schedule_of.remove(&flow);
            prop_assert!(at >= last, "deliveries move forward");
            last = at;
            for c in net.deliver(flow, at) {
                if let triosim_network::NetCommand::Schedule { flow, at } = c {
                    schedule_of.insert(flow, at);
                }
            }
        }
        // All bytes crossed one 1 GB/s link: the last delivery can't beat
        // the capacity bound.
        let ideal = total_bytes as f64 / bw;
        prop_assert!(
            last.as_seconds() >= ideal * (1.0 - 1e-9),
            "finished {} < ideal {}",
            last.as_seconds(),
            ideal
        );
        prop_assert_eq!(net.bytes_delivered(), total_bytes);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Trace JSON round-trips for arbitrary zoo models and batch sizes.
    #[test]
    fn trace_round_trips(model_idx in 0usize..18, batch in 1u64..16) {
        let model = triosim_modelzoo::ModelId::ALL[model_idx].build(batch);
        let trace = triosim_trace::Tracer::new(triosim_trace::GpuModel::A40).trace(&model);
        let json = trace.to_json().unwrap();
        let back = triosim_trace::Trace::from_json(&json).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Model FLOPs scale exactly linearly in batch for every zoo model.
    #[test]
    fn model_flops_linear_in_batch(model_idx in 0usize..18, batch in 1u64..8) {
        let id = triosim_modelzoo::ModelId::ALL[model_idx];
        let base = id.build(batch).total_flops();
        let doubled = id.build(batch * 2).total_flops();
        prop_assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    /// The whole pipeline survives workloads that don't exist: random
    /// synthetic CNNs and transformers trace, extrapolate, and simulate
    /// under every parallelism without panicking, and predictions stay
    /// within a loose band of the reference ground truth.
    #[test]
    fn synthetic_workloads_survive_the_pipeline(
        seed in 0u64..1000,
        cnn in any::<bool>(),
        strategy in 0u8..4,
    ) {
        use triosim::{Fidelity, Parallelism, Platform, SimBuilder};
        let batch = 8u64;
        let model = if cnn {
            triosim_modelzoo::random_cnn(seed, batch)
        } else {
            triosim_modelzoo::random_transformer(seed, batch)
        };
        let trace =
            triosim_trace::Tracer::new(triosim_trace::GpuModel::A100).trace(&model);
        let platform = Platform::p2(2);
        let (parallelism, global) = match strategy % 4 {
            0 => (Parallelism::DataParallel { overlap: true }, batch * 2),
            1 => (Parallelism::DataParallel { overlap: false }, batch * 2),
            2 => (Parallelism::TensorParallel, batch),
            _ => (Parallelism::Pipeline { chunks: 2 }, batch),
        };
        let run = |fidelity| {
            SimBuilder::new(&trace, &platform)
                .parallelism(parallelism)
                .global_batch(global)
                .fidelity(fidelity)
                .run()
                .total_time_s()
        };
        let pred = run(Fidelity::TrioSim);
        let truth = run(Fidelity::Reference);
        prop_assert!(pred > 0.0 && truth > 0.0);
        // Band is deliberately loose: tiny random models at batch 8 sit in
        // the launch-overhead-dominated regime the paper itself excludes
        // ("TrioSim assumes high GPU utilization, making it less accurate
        // ... when the kernels are small", §8.4). The property under test
        // is robustness (no panic, plausible output), not accuracy.
        let err = (pred - truth).abs() / truth;
        prop_assert!(err < 1.0, "error {err:.3} out of band for seed {seed}");
    }
}
