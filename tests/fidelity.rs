//! Flow-vs-packet cross-validation suite.
//!
//! The packet tier ([`PacketNetwork`]) must agree with the flow tier
//! exactly where protocol effects cannot matter, and must disagree —
//! with structured evidence — exactly where they must. Three layers:
//!
//! * **Convergence oracle**: on an uncongested single-link topology the
//!   packet-tier delivery time equals the flow-tier analytic time within
//!   one MTU serialization delay, across proptest-generated sizes,
//!   latencies, and bandwidths.
//! * **Divergence evidence**: on an oversubscribed fat tree the packet
//!   tier reports a *longer* total than the flow tier, plus nonzero
//!   ECN marks (and a populated queue-depth histogram) the flow tier
//!   cannot see. Canonical packet reports are pinned as golden
//!   snapshots (`tests/golden/packet_{ddp,tp}.json`), re-blessable via
//!   `TRIOSIM_BLESS=1 cargo test --test fidelity`.
//! * **Determinism**: packet runs are byte-identical across invocations
//!   and across the `--shards` knob — the packet tier is not
//!   iteration-invariant, so a shard request falls back to the serial
//!   oracle with a warning naming that reason.

use std::path::PathBuf;
use std::process::Command;

use proptest::prelude::*;
use triosim::{Fidelity, Parallelism, Platform, SimBuilder};
use triosim_des::VirtualTime;
use triosim_modelzoo::ModelId;
use triosim_network::{FlowNetwork, NetCommand, NetworkModel, NodeId, PacketNetwork, Topology};
use triosim_trace::{GpuModel, Tracer};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn bless_mode() -> bool {
    std::env::var_os("TRIOSIM_BLESS").is_some_and(|v| v == "1")
}

/// The congested scenario both golden snapshots and the divergence test
/// share: two A100s on a 4:1-oversubscribed fat tree (one GPU per leaf,
/// so every collective byte crosses the thin 6.25 GB/s spine uplinks),
/// ResNet-18 at batch 8. Small enough for debug-mode CI, congested
/// enough that queues build, ECN fires, and the tiers diverge.
fn congested_platform() -> Platform {
    Platform::fat_tree(GpuModel::A100, 2, 1, 25e9, 5e-6, 4.0, "fat2")
}

fn congested_report(parallelism: Parallelism, fidelity: Fidelity) -> triosim::SimReport {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(8));
    let platform = congested_platform();
    SimBuilder::new(&trace, &platform)
        .parallelism(parallelism)
        .fidelity(fidelity)
        .run()
}

fn check_golden(name: &str, parallelism: Parallelism) {
    let report = congested_report(parallelism, Fidelity::Packet);
    let actual =
        serde_json::to_string(&report.to_canonical_json()).expect("canonical JSON is finite");
    let path = golden_dir().join(format!("{name}.json"));
    if bless_mode() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `TRIOSIM_BLESS=1 cargo test --test fidelity` \
             and commit the result",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "\n`{name}` drifted from its golden snapshot.\n\
         If this change is intentional, re-bless with \
         `TRIOSIM_BLESS=1 cargo test --test fidelity` and commit the diff.\n\
         actual  : {actual}\n\
         expected: {expected}\n"
    );
}

#[test]
fn golden_packet_ddp() {
    check_golden("packet_ddp", Parallelism::DataParallel { overlap: true });
}

#[test]
fn golden_packet_tp() {
    check_golden("packet_tp", Parallelism::TensorParallel);
}

/// The headline divergence assertion: under congestion the packet tier
/// must be slower than the flow tier (queueing and congestion control
/// the flow model cannot see), and must say *why* via its structured
/// counters. The flow tier must carry no packet section at all — that
/// absence is what keeps flow reports byte-identical to pre-packet
/// builds.
#[test]
fn packet_tier_diverges_under_congestion_with_evidence() {
    let parallelism = Parallelism::DataParallel { overlap: true };
    let flow = congested_report(parallelism, Fidelity::TrioSim);
    let packet = congested_report(parallelism, Fidelity::Packet);
    assert!(
        flow.packet_stats().is_none(),
        "flow tier reports no packets"
    );
    let ps = *packet
        .packet_stats()
        .expect("packet tier reports packet counters");
    let ratio = packet.total_time_s() / flow.total_time_s();
    assert!(
        ratio > 1.0,
        "congestion must slow the packet tier: ratio {ratio}"
    );
    assert!(ps.ecn_marks > 0, "congestion must mark: {ps:?}");
    assert!(
        ps.drops + ps.ecn_marks > 0 && ps.packets_sent > 0,
        "divergence needs structured evidence: {ps:?}"
    );
    assert!(
        ps.queue_depth_hist.iter().sum::<u64>() > 0,
        "switch queues were never observed: {ps:?}"
    );
}

/// On an *uncongested* topology (every flow on its own NVLink) the two
/// tiers must agree closely: same total to within a small relative
/// bound, because without queueing the packet dynamics reduce to
/// serialization + propagation — exactly the flow model's arithmetic.
#[test]
fn tiers_converge_on_uncongested_topology() {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(8));
    let platform = Platform::p2(2);
    let run = |fidelity| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .fidelity(fidelity)
            .run()
            .total_time_s()
    };
    let flow = run(Fidelity::TrioSim);
    let packet = run(Fidelity::Packet);
    let ratio = packet / flow;
    assert!(
        (0.99..1.05).contains(&ratio),
        "uncongested tiers must agree: flow {flow} vs packet {packet} (ratio {ratio})"
    );
}

/// Packet runs are deterministic: byte-identical canonical reports
/// across two invocations, and across the `--shards` knob (the packet
/// tier gates off sharding, so shard counts only change the warning on
/// stderr, never the bytes).
#[test]
fn packet_run_is_byte_identical_across_invocations_and_shards() {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(8));
    let platform = congested_platform();
    let run = |shards: usize| {
        let r = SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .fidelity(Fidelity::Packet)
            .iterations(2)
            .shards(shards)
            .run();
        serde_json::to_string(&r.to_canonical_json()).expect("canonical JSON is finite")
    };
    let first = run(1);
    assert_eq!(first, run(1), "rerun diverged");
    assert_eq!(first, run(2), "shard knob changed packet bytes");
}

/// The serial-fallback warning must fire and name the reason when a
/// packet-fidelity run requests sharding: the packet model is not
/// iteration-invariant, so `execute_sharded` refuses it. The reports on
/// both sides of the warning must still be byte-identical.
#[test]
fn packet_shard_request_warns_and_names_the_reason() {
    let bin = env!("CARGO_BIN_EXE_triosim-cli");
    let dir = std::env::temp_dir().join(format!("triosim-fidelity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.json");
    let out = Command::new(bin)
        .args([
            "trace", "--model", "resnet18", "--batch", "8", "--gpu", "A100",
        ])
        .arg("-o")
        .arg(&trace)
        .output()
        .expect("trace subcommand runs");
    assert!(out.status.success(), "trace failed: {out:?}");

    let simulate = |shards: &str, report: &PathBuf| {
        let out = Command::new(bin)
            .args([
                "simulate",
                "--fidelity",
                "packet",
                "--platform",
                "fat:A100:2",
            ])
            .args(["--iterations", "2", "--shards", shards])
            .arg("--trace")
            .arg(&trace)
            .arg("--report")
            .arg(report)
            .output()
            .expect("simulate subcommand runs");
        assert!(out.status.success(), "simulate failed: {out:?}");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    let sharded_report = dir.join("sharded.json");
    let stderr = simulate("2", &sharded_report);
    assert!(
        stderr.contains("shard request ignored")
            && stderr.contains("the network model is not iteration-invariant"),
        "fallback warning must name the reason, got: {stderr}"
    );

    let serial_report = dir.join("serial.json");
    let stderr = simulate("1", &serial_report);
    assert!(
        !stderr.contains("ignored"),
        "a serial run warns about nothing, got: {stderr}"
    );

    let sharded = std::fs::read(&sharded_report).expect("sharded report written");
    let serial = std::fs::read(&serial_report).expect("serial report written");
    assert_eq!(sharded, serial, "shard fallback changed report bytes");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flow==packet convergence oracle. On a 2-node single-link
    /// topology with no competing traffic, the packet tier's delivery
    /// time must equal the flow tier's (`latency + bytes/bandwidth`)
    /// within one MTU serialization delay — the only slack packetization
    /// is allowed to introduce. Ranges keep the bandwidth-delay product
    /// under the initial congestion window, which is precisely the
    /// uncongested regime the bound documents.
    #[test]
    fn packet_delivery_matches_flow_analytic_when_uncongested(
        bytes in 1u64..32_000_000,
        bw_gbps in 1u64..50,
        lat_ns in 1u64..5_000,
    ) {
        let bandwidth = bw_gbps as f64 * 1e9;
        let latency = lat_ns as f64 * 1e-9;
        let mut topo = Topology::new(2);
        topo.add_duplex(NodeId(0), NodeId(1), bandwidth, latency);

        let at_of = |cmds: &[NetCommand]| match cmds.last().expect("one schedule") {
            NetCommand::Schedule { at, .. } => *at,
            NetCommand::Cancel { .. } => panic!("expected a schedule"),
        };
        let mut flow_net = FlowNetwork::new(topo.clone());
        let (_, cmds) = flow_net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let flow_s = at_of(&cmds).as_seconds();

        let mut pkt_net = PacketNetwork::new(topo);
        let (_, cmds) = pkt_net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let pkt_s = at_of(&cmds).as_seconds();

        let bound = pkt_net.config().mtu_bytes as f64 / bandwidth;
        prop_assert!(
            (pkt_s - flow_s).abs() <= bound + 1e-12,
            "packet {pkt_s} vs flow {flow_s}: off by more than one MTU serialization ({bound})"
        );
    }
}
