//! Property tests for the trace extrapolator (§4.3): for random
//! model / batch / world-size combinations, collective operations are
//! inserted exactly where the parallelism strategy demands, and compute
//! time is conserved across world sizes.
//!
//! These are the structural contracts the golden snapshots can't cover:
//! snapshots pin four configurations byte-for-byte, while these
//! properties pin the *rules* (one AllReduce per DP iteration, one
//! AllGather per splittable TP layer, `chunks x (stages-1)` micro-batch
//! hand-offs for GPipe) for every configuration proptest can reach.

use proptest::prelude::*;
use triosim::{extrapolate, summarize_layers, ComputeModel, Parallelism, Platform, TaskGraph};
use triosim_collectives::GradientBucketizer;
use triosim_modelzoo::ModelId;
use triosim_perfmodel::LisModel;
use triosim_trace::{GpuModel, Trace, Tracer};

// One CNN, one residual net, one transformer: structurally distinct
// layer graphs (VGG has no residual joins, GPT-2 has attention blocks)
// while staying cheap enough to trace hundreds of times. The vendored
// proptest subset has no `prop_oneof`, so tests draw an index and map.
const MODELS: [ModelId; 3] = [ModelId::Vgg11, ModelId::ResNet18, ModelId::Gpt2];
const WORLDS: [usize; 3] = [2, 4, 8];
const BATCHES: [u64; 3] = [4, 8, 16];

fn trace_for(model: ModelId, batch: u64) -> Trace {
    Tracer::new(GpuModel::A100).trace(&model.build(batch))
}

fn graph_for(trace: &Trace, n: usize, parallelism: Parallelism, global_batch: u64) -> TaskGraph {
    let platform = Platform::p2(n);
    let compute = ComputeModel::lis(LisModel::calibrated(GpuModel::A100));
    extrapolate(trace, &platform, parallelism, global_batch, &compute)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain DataParallel synchronizes with exactly one AllReduce per
    /// iteration, spanning all ranks and carrying the full gradient
    /// volume.
    #[test]
    fn dp_inserts_exactly_one_allreduce(mi in 0usize..3, bi in 0usize..3, wi in 0usize..3) {
        let (model, batch, n) = (MODELS[mi], BATCHES[bi], WORLDS[wi]);
        let trace = trace_for(model, batch);
        let g = graph_for(
            &trace,
            n,
            Parallelism::DataParallel { overlap: false },
            batch * n as u64,
        );
        let allreduces: Vec<_> = g
            .collectives()
            .iter()
            .filter(|c| c.algorithm == "allreduce")
            .collect();
        prop_assert_eq!(allreduces.len(), 1);
        let c = allreduces[0];
        prop_assert_eq!(c.label.as_str(), "dp.allreduce");
        prop_assert_eq!(c.participants, n);
        let total_grads: u64 = summarize_layers(&trace).iter().map(|l| l.param_bytes).sum();
        prop_assert_eq!(c.payload_bytes, total_grads);
    }

    /// DDP buckets gradients exactly the way the bucketizer says: one
    /// AllReduce per bucket, in bucket order.
    #[test]
    fn ddp_allreduce_count_matches_bucketizer(mi in 0usize..3, bi in 0usize..3, wi in 0usize..3) {
        let (model, batch, n) = (MODELS[mi], BATCHES[bi], WORLDS[wi]);
        let trace = trace_for(model, batch);
        let g = graph_for(
            &trace,
            n,
            Parallelism::DataParallel { overlap: true },
            batch * n as u64,
        );
        let grad_sizes: Vec<u64> =
            summarize_layers(&trace).iter().map(|l| l.param_bytes).collect();
        let expected = GradientBucketizer::default().bucketize(&grad_sizes);
        let allreduces: Vec<_> = g
            .collectives()
            .iter()
            .filter(|c| c.algorithm == "allreduce")
            .collect();
        prop_assert_eq!(allreduces.len(), expected.len());
        for (idx, (c, bucket)) in allreduces.iter().zip(&expected).enumerate() {
            prop_assert_eq!(c.label.clone(), format!("ddp.bucket{idx}.allreduce"));
            prop_assert_eq!(c.payload_bytes, bucket.bytes);
            prop_assert_eq!(c.participants, n);
        }
    }

    /// Tensor parallelism gathers at exactly the layer boundaries the
    /// model structure demands: one forward AllGather per splittable
    /// layer that produces output.
    #[test]
    fn tp_allgather_count_matches_splittable_layers(
        mi in 0usize..3,
        bi in 0usize..3,
        wi in 0usize..3,
    ) {
        let (model, batch, n) = (MODELS[mi], BATCHES[bi], WORLDS[wi]);
        let trace = trace_for(model, batch);
        let g = graph_for(&trace, n, Parallelism::TensorParallel, batch);
        let expected = summarize_layers(&trace)
            .iter()
            .filter(|l| l.tp_splittable && l.output_bytes > 0)
            .count();
        let gathers = g
            .collectives()
            .iter()
            .filter(|c| c.algorithm == "allgather")
            .count();
        prop_assert_eq!(gathers, expected);
        prop_assert!(expected > 0, "chosen models all have splittable layers");
    }

    /// GPipe moves exactly `chunks x (stages - 1)` activation hand-offs
    /// forward and the same number of gradient hand-offs backward.
    #[test]
    fn gpipe_microbatch_handoffs_match_chunks(
        mi in 0usize..3,
        bi in 1usize..3,
        wi in 0usize..3,
        ci in 0usize..3,
    ) {
        let (model, batch, n) = (MODELS[mi], BATCHES[bi], WORLDS[wi]);
        let chunks = [1u64, 2, 4][ci];
        let trace = trace_for(model, batch);
        let g = graph_for(&trace, n, Parallelism::Pipeline { chunks }, batch);
        let expected = (chunks as usize) * (n - 1);
        let acts = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("pp.act"))
            .count();
        let grads = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("pp.grad"))
            .count();
        prop_assert_eq!(acts, expected);
        prop_assert_eq!(grads, expected);
    }

    /// Weak-scaling data parallelism conserves compute: every replica
    /// runs the traced per-GPU workload unchanged, so total compute time
    /// divided by world size is invariant in the world size.
    #[test]
    fn dp_weak_scaling_conserves_per_gpu_compute(
        mi in 0usize..3,
        bi in 0usize..3,
        ni in 0usize..2,
    ) {
        let (model, batch, n) = (MODELS[mi], BATCHES[bi], [2usize, 4][ni]);
        let trace = trace_for(model, batch);
        let per_gpu = |world: usize| {
            let g = graph_for(
                &trace,
                world,
                Parallelism::DataParallel { overlap: true },
                batch * world as u64,
            );
            g.total_compute_time().as_seconds() / world as f64
        };
        let small = per_gpu(n);
        let large = per_gpu(2 * n);
        let rel = (small - large).abs() / small.max(1e-30);
        prop_assert!(rel < 1e-9, "per-GPU compute drifted: {small} vs {large}");
    }
}
