//! Workspace integration tests: exercise the whole pipeline — model zoo →
//! tracer → extrapolator → executor → report — across crates, checking
//! closed-form expectations on degenerate configurations and paper-shaped
//! behaviour on realistic ones.

use triosim::{Fidelity, Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Trace, Tracer};

fn trace_of(model: ModelId, batch: u64, gpu: GpuModel) -> Trace {
    Tracer::new(gpu).trace(&model.build(batch))
}

/// On a single GPU at the traced batch size, TrioSim must reproduce the
/// trace: total time = sum of operator times plus the input shipment.
#[test]
fn single_gpu_same_batch_is_trace_replay() {
    let trace = trace_of(ModelId::ResNet18, 32, GpuModel::A100);
    let platform = Platform::pcie(GpuModel::A100, 1, "single");
    let report = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: false })
        .global_batch(32)
        .run();
    let compute = report.compute_time_s();
    assert!(
        (compute - trace.total_time_s()).abs() / trace.total_time_s() < 1e-9,
        "compute {compute} vs trace {}",
        trace.total_time_s()
    );
    // Total adds only the host input transfer.
    assert!(report.total_time_s() >= compute);
    assert!(report.total_time_s() < compute * 1.05);
}

/// Identical runs must produce byte-identical reports (determinism).
#[test]
fn simulation_is_deterministic() {
    let trace = trace_of(ModelId::Vgg11, 16, GpuModel::A40);
    let platform = Platform::p1();
    let run = || {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_time_s(), b.total_time_s());
    assert_eq!(a.bytes_transferred(), b.bytes_transferred());
    assert_eq!(a.timeline().len(), b.timeline().len());
}

/// The executor's bytes accounting must match the extrapolated plan.
#[test]
fn transferred_bytes_match_plan() {
    let trace = trace_of(ModelId::ResNet18, 16, GpuModel::A100);
    let platform = Platform::p2(2);
    let builder = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(32);
    let plan_bytes = builder.build_graph().total_transfer_bytes();
    let report = builder.run();
    assert_eq!(report.bytes_transferred(), plan_bytes);
}

/// DDP's overlapped AllReduce can't be slower than DataParallel's
/// deferred one on the same workload.
#[test]
fn ddp_at_least_as_fast_as_dp() {
    let trace = trace_of(ModelId::ResNet50, 32, GpuModel::A40);
    let platform = Platform::p1();
    let time = |overlap| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap })
            .global_batch(64)
            .run()
            .total_time_s()
    };
    assert!(time(true) <= time(false) * 1.001);
}

/// Single-chunk GPipe serializes the stages: it must be slower than DDP
/// at the same total batch (the pipeline bubble).
#[test]
fn pipeline_bubble_exists() {
    let trace = trace_of(ModelId::ResNet34, 32, GpuModel::A100);
    let platform = Platform::p2(4);
    let ddp = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(32)
        .run()
        .total_time_s();
    let pp1 = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::Pipeline { chunks: 1 })
        .global_batch(32)
        .run()
        .total_time_s();
    assert!(pp1 > ddp, "pp1 {pp1} vs ddp {ddp}");
}

/// With a large enough mini-batch, more micro-batches shrink the GPipe
/// bubble. (At *small* per-chunk batches the effect inverts because
/// per-operator launch overheads multiply — the same anomaly the paper
/// flags with orange triangles in Figure 10.)
#[test]
fn more_chunks_shrink_the_bubble_at_large_batch() {
    let trace = trace_of(ModelId::ResNet50, 256, GpuModel::A100);
    let platform = Platform::p2(4);
    let time = |chunks| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::Pipeline { chunks })
            .global_batch(256)
            .run()
            .total_time_s()
    };
    assert!(
        time(4) < time(1),
        "4 chunks {} vs 1 chunk {}",
        time(4),
        time(1)
    );
}

/// At tiny micro-batches, launch-overhead floors make extra chunks
/// counterproductive — the inversion the paper observes on real hardware.
#[test]
fn tiny_microbatches_invert_the_chunk_benefit() {
    let trace = trace_of(ModelId::DenseNet121, 16, GpuModel::A100);
    let platform = Platform::p2(4);
    let time = |chunks| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::Pipeline { chunks })
            .global_batch(16)
            .run()
            .total_time_s()
    };
    assert!(
        time(4) > time(1),
        "expected inversion: {} vs {}",
        time(4),
        time(1)
    );
}

/// Tensor parallelism across more GPUs shrinks per-GPU compute time.
#[test]
fn tp_shards_compute() {
    let trace = trace_of(ModelId::Vgg13, 32, GpuModel::A100);
    let compute_on = |gpus| {
        let platform = Platform::p2(gpus);
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::TensorParallel)
            .global_batch(32)
            .run()
            .compute_time_s()
    };
    assert!(compute_on(4) < compute_on(2));
}

/// NVLink (P2) communicates far faster than PCIe (P1): the same DDP
/// workload spends less wall-clock on communication.
#[test]
fn nvlink_beats_pcie_on_comm() {
    let trace_a40 = trace_of(ModelId::Vgg11, 32, GpuModel::A40);
    let trace_a100 = trace_of(ModelId::Vgg11, 32, GpuModel::A100);
    let comm = |trace: &Trace, platform: &Platform| {
        SimBuilder::new(trace, platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .global_batch(64)
            .run()
            .comm_time_s()
    };
    let pcie = comm(&trace_a40, &Platform::p1());
    let nvlink = comm(
        &trace_a100,
        &Platform::nvswitch(GpuModel::A100, 2, triosim_trace::LinkKind::NvLink3, "P2-2"),
    );
    assert!(nvlink < pcie / 3.0, "nvlink {nvlink} vs pcie {pcie}");
}

/// Prediction error against the reference ground truth stays within the
/// paper-reported bands for the core validation settings.
#[test]
fn validation_errors_within_paper_bands() {
    let cases: Vec<(ModelId, Parallelism, u64, f64)> = vec![
        // (model, parallelism, global batch, max error)
        (
            ModelId::ResNet18,
            Parallelism::DataParallel { overlap: true },
            64,
            0.10,
        ),
        (
            ModelId::Vgg11,
            Parallelism::DataParallel { overlap: false },
            64,
            0.15,
        ),
        (ModelId::ResNet18, Parallelism::TensorParallel, 32, 0.20),
        (
            ModelId::ResNet18,
            Parallelism::Pipeline { chunks: 2 },
            32,
            0.25,
        ),
    ];
    let platform = Platform::p1();
    for (model, parallelism, batch, max_err) in cases {
        let trace = trace_of(model, 32, GpuModel::A40);
        let pred = SimBuilder::new(&trace, &platform)
            .parallelism(parallelism)
            .global_batch(batch)
            .run()
            .total_time_s();
        let truth = SimBuilder::new(&trace, &platform)
            .parallelism(parallelism)
            .global_batch(batch)
            .fidelity(Fidelity::Reference)
            .run()
            .total_time_s();
        let err = (pred - truth).abs() / truth;
        assert!(
            err < max_err,
            "{model} {parallelism}: error {err:.3} exceeds {max_err}"
        );
    }
}

/// The cross-GPU path (trace on A40, simulate H100) predicts a speedup in
/// the right direction and magnitude.
#[test]
fn cross_gpu_prediction_direction() {
    let trace = trace_of(ModelId::ResNet50, 64, GpuModel::A40);
    let single_a40 = Platform::pcie(GpuModel::A40, 1, "a40");
    let single_h100 = Platform::pcie(GpuModel::H100, 1, "h100");
    let t = |p: &Platform| {
        SimBuilder::new(&trace, p)
            .parallelism(Parallelism::DataParallel { overlap: false })
            .global_batch(64)
            .run()
            .total_time_s()
    };
    let a40 = t(&single_a40);
    let h100 = t(&single_h100);
    assert!(h100 < a40, "H100 predicted faster");
    assert!(h100 > a40 / 10.0, "but not absurdly so");
}

/// Batch rescaling from one trace doubles work when the batch doubles
/// (weak scaling sanity at the whole-model level).
#[test]
fn batch_rescaling_scales_compute() {
    // VGG is GEMM-dominated, so doubling the batch ~doubles compute;
    // launch-overhead floors would blur this on op-fragmented models.
    let trace = trace_of(ModelId::Vgg16, 32, GpuModel::A100);
    let platform = Platform::pcie(GpuModel::A100, 1, "single");
    let t = |batch| {
        SimBuilder::new(&trace, &platform)
            .parallelism(Parallelism::DataParallel { overlap: false })
            .global_batch(batch)
            .run()
            .compute_time_s()
    };
    let ratio = t(64) / t(32);
    assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
}

/// The per-layer compute breakdown (§4.1's output) accounts for every
/// compute second and mirrors the model's FLOP distribution.
#[test]
fn per_layer_breakdown_accounts_for_all_compute() {
    let trace = trace_of(ModelId::ResNet50, 32, GpuModel::A100);
    let platform = Platform::p2(2);
    let report = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .global_batch(64)
        .run();
    let per_layer = report.per_layer_compute_s();
    assert_eq!(per_layer.len(), trace.layer_count());
    let sum: f64 = per_layer.iter().sum();
    let total: f64 = report
        .per_gpu_compute()
        .iter()
        .map(|t| t.as_seconds())
        .sum();
    assert!(
        (sum - total).abs() / total < 1e-9,
        "sum {sum} vs total {total}"
    );
    assert!(per_layer.iter().all(|&t| t > 0.0), "every layer ran");
}

/// Transformers flow through every parallelism without panicking and
/// produce ordered, plausible reports.
#[test]
fn transformers_all_parallelisms() {
    let trace = trace_of(ModelId::T5Small, 8, GpuModel::A100);
    let platform = Platform::p2(2);
    for parallelism in [
        Parallelism::DataParallel { overlap: true },
        Parallelism::DataParallel { overlap: false },
        Parallelism::TensorParallel,
        Parallelism::Pipeline { chunks: 2 },
    ] {
        let report = SimBuilder::new(&trace, &platform)
            .parallelism(parallelism)
            .global_batch(16)
            .run();
        assert!(report.total_time_s() > 0.0, "{parallelism}");
        assert!(report.comm_time_s() > 0.0, "{parallelism}");
        assert!(
            report.total_time_s() < 60.0,
            "{parallelism} took absurdly long"
        );
    }
}
