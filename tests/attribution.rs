//! Bottleneck-attribution and self-profiling integration tests.
//!
//! Three contracts:
//!
//! * **Golden snapshots**: the `BottleneckReport` for the DP/DDP/TP/PP
//!   quartet is committed under `tests/golden/bottleneck_*.json` and
//!   re-blessable with `TRIOSIM_BLESS=1 cargo test --test attribution`.
//! * **Observer invisibility**: canonical `SimReport` bytes are
//!   byte-identical whether or not observability sinks and the
//!   wall-clock self-profiler run (property-tested across parallelism
//!   strategies and platform sizes), and the canonical sweep aggregate
//!   is byte-identical across profiling on/off at 1/2/8 threads.
//! * **Attribution invariants**: per-GPU buckets partition the run's
//!   virtual time exactly, the critical path spans the whole run, and a
//!   fault-seeded straggler GPU is named in the straggler list with its
//!   lost compute attributed.

use std::path::PathBuf;

use proptest::prelude::*;
use triosim::{
    FaultPlan, GpuSlowdown, Parallelism, Platform, SelfProfiler, SimBuilder, SimReport,
    SweepRunConfig, SweepSpec,
};
use triosim_modelzoo::ModelId;
use triosim_obs::{ChromeTraceSink, JsonlSink, PrometheusSink, RunRecorder};
use triosim_trace::{GpuModel, Trace, Tracer};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn bless_mode() -> bool {
    std::env::var_os("TRIOSIM_BLESS").is_some_and(|v| v == "1")
}

fn quartet_trace() -> Trace {
    Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(8))
}

/// Same configuration as the `golden` suite: VGG-11 @ batch 8 on two
/// NVLink'd A100s.
fn quartet_report(parallelism: Parallelism) -> SimReport {
    let trace = quartet_trace();
    let platform = Platform::p2(2);
    SimBuilder::new(&trace, &platform)
        .parallelism(parallelism)
        .run()
}

fn quartet() -> [(&'static str, Parallelism); 4] {
    [
        ("dp", Parallelism::DataParallel { overlap: false }),
        ("ddp", Parallelism::DataParallel { overlap: true }),
        ("tp", Parallelism::TensorParallel),
        ("pp", Parallelism::Pipeline { chunks: 2 }),
    ]
}

fn check_bottleneck_golden(name: &str, parallelism: Parallelism) {
    let report = quartet_report(parallelism);
    let actual =
        serde_json::to_string(&report.bottleneck().to_value()).expect("bottleneck JSON is finite");
    let path = golden_dir().join(format!("bottleneck_{name}.json"));
    if bless_mode() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `TRIOSIM_BLESS=1 cargo test --test \
             attribution` and commit the result",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "\n`bottleneck_{name}` drifted from its golden snapshot.\n\
         If this change is intentional, re-bless with \
         `TRIOSIM_BLESS=1 cargo test --test attribution` and commit the diff.\n\
         actual  : {actual}\n\
         expected: {expected}\n"
    );
}

#[test]
fn golden_bottleneck_dp() {
    check_bottleneck_golden("dp", Parallelism::DataParallel { overlap: false });
}

#[test]
fn golden_bottleneck_ddp() {
    check_bottleneck_golden("ddp", Parallelism::DataParallel { overlap: true });
}

#[test]
fn golden_bottleneck_tp() {
    check_bottleneck_golden("tp", Parallelism::TensorParallel);
}

#[test]
fn golden_bottleneck_pp() {
    check_bottleneck_golden("pp", Parallelism::Pipeline { chunks: 2 });
}

/// The per-GPU buckets must partition the run's total virtual time
/// exactly (the accumulator works in integer ticks; only the final
/// tick→seconds conversion is floating-point), and the critical path
/// must span the whole run.
#[test]
fn buckets_partition_total_time_across_quartet() {
    for (name, parallelism) in quartet() {
        let report = quartet_report(parallelism);
        let b = report.bottleneck();
        let total = report.total_time_s();
        assert!(
            (b.critical_path_s - total).abs() <= 1e-12 * total.max(1.0),
            "{name}: critical path {} != total {total}",
            b.critical_path_s
        );
        assert!(
            (b.path_compute_s + b.path_comm_s - b.critical_path_s).abs() <= 1e-12 * total.max(1.0),
            "{name}: path buckets don't sum"
        );
        for (g, bk) in b.per_gpu.iter().enumerate() {
            let sum = bk.compute_s + bk.exposed_comm_s + bk.idle_s;
            assert!(
                (sum - bk.total_s).abs() <= 1e-9 * bk.total_s.max(1.0),
                "{name} gpu{g}: compute {} + exposed {} + idle {} != total {}",
                bk.compute_s,
                bk.exposed_comm_s,
                bk.idle_s,
                bk.total_s
            );
            assert!(
                (bk.total_s - total).abs() <= 1e-12 * total.max(1.0),
                "{name} gpu{g}: bucket total differs from run total"
            );
        }
    }
}

/// A 3x-slowed GPU must be named in the straggler list, with its busy
/// time well above the median and the fault layer's lost-compute
/// attribution threaded through.
#[test]
fn seeded_straggler_gpu_is_named() {
    let trace = quartet_trace();
    let platform = Platform::p2(4);
    let plan = FaultPlan {
        gpu_slowdowns: vec![GpuSlowdown {
            gpu: 2,
            factor: 3.0,
        }],
        ..FaultPlan::default()
    };
    let report = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .faults(plan)
        .try_run()
        .expect("slowdown does not terminate the run");
    let b = report.bottleneck();
    let straggler = b
        .stragglers
        .iter()
        .find(|s| s.gpu == 2)
        .unwrap_or_else(|| panic!("gpu2 missing from stragglers: {:?}", b.stragglers));
    assert!(
        straggler.vs_median >= 1.25,
        "straggler barely above median: {}",
        straggler.vs_median
    );
    assert!(
        straggler.fault_lost_s > 0.0,
        "fault attribution not threaded into the straggler entry"
    );
    // The healthy GPUs must not be flagged.
    assert!(
        b.stragglers.iter().all(|s| s.gpu == 2),
        "healthy GPUs flagged: {:?}",
        b.stragglers
    );
}

/// Runs the same configuration bare and with the wall-clock
/// self-profiler attached; returns both canonical strings.
///
/// (Observability *sinks* are a different contract: attaching a recorder
/// turns on periodic sampling, which schedules extra queue events and so
/// legitimately changes the `queue` counters. The profiler must be
/// strictly invisible.)
fn bare_vs_profiled(parallelism: Parallelism, gpus: usize, batch: u64) -> (String, String) {
    let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(batch));
    let platform = Platform::p2(gpus);
    let bare = SimBuilder::new(&trace, &platform)
        .parallelism(parallelism)
        .run()
        .to_canonical_json();
    let mut prof = SelfProfiler::new();
    let profiled = SimBuilder::new(&trace, &platform)
        .parallelism(parallelism)
        .try_run_profiled(&mut prof)
        .expect("profiled run succeeds")
        .to_canonical_json();
    assert!(
        !prof.snapshot().is_empty(),
        "profiler actually recorded spans"
    );
    (
        serde_json::to_string(&bare).expect("finite"),
        serde_json::to_string(&profiled).expect("finite"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The self-profiler must never perturb the canonical report —
    /// including its always-on bottleneck section — for any parallelism
    /// strategy, platform size, or batch.
    #[test]
    fn profiler_never_changes_canonical_bytes(
        strategy in 0usize..4,
        gpus in 2usize..5,
        batch_i in 0usize..2,
    ) {
        let parallelism = quartet()[strategy].1;
        let batch = [4u64, 8][batch_i];
        let (bare, profiled) = bare_vs_profiled(parallelism, gpus, batch);
        prop_assert_eq!(bare, profiled);
    }
}

/// Attaching sinks samples the run (extra queue events by design), but
/// the simulation-determined core — totals, timeline records and the
/// order-sensitive timeline hash, and the whole bottleneck section —
/// must still be identical to the bare run.
#[test]
fn sinks_change_only_sampler_queue_counters() {
    let trace = quartet_trace();
    let platform = Platform::p2(2);
    let bare = quartet_report(Parallelism::DataParallel { overlap: true });
    let mut recorder = RunRecorder::new();
    recorder.push(Box::new(JsonlSink::new(Vec::new())));
    recorder.push(Box::new(ChromeTraceSink::new(Vec::new())));
    recorder.push(Box::new(PrometheusSink::new(Vec::new())));
    let mut prof = SelfProfiler::new();
    let observed = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .recorder(Box::new(recorder))
        .try_run_profiled(&mut prof)
        .expect("observed run succeeds");
    assert_eq!(bare.total_time_s(), observed.total_time_s());
    assert_eq!(bare.timeline().len(), observed.timeline().len());
    assert_eq!(
        serde_json::to_string(&bare.bottleneck().to_value()).expect("finite"),
        serde_json::to_string(&observed.bottleneck().to_value()).expect("finite"),
        "sinks perturbed the bottleneck attribution"
    );
}

/// The canonical sweep aggregate must be byte-identical across profiling
/// on/off and worker thread counts 1/2/8.
#[test]
fn sweep_canonical_invariant_to_profiling_and_threads() {
    let spec = SweepSpec::from_json(
        r#"{
            "name": "attr-invariance",
            "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
            "grid": {
                "parallelism": ["dp", "ddp", "tp", "pp:2"],
                "platform": ["p2:2", "p2:4"]
            }
        }"#,
    )
    .expect("spec parses");
    let mut canonicals = Vec::new();
    for threads in [1usize, 2, 8] {
        for profile in [false, true] {
            let outcome = triosim::run_sweep_with(
                &spec,
                &SweepRunConfig {
                    threads,
                    profile,
                    ..SweepRunConfig::default()
                },
            )
            .expect("sweep runs");
            assert_eq!(outcome.profile.is_some(), profile);
            canonicals.push((threads, profile, outcome.to_canonical_string()));
        }
    }
    let (_, _, reference) = &canonicals[0];
    for (threads, profile, c) in &canonicals[1..] {
        assert_eq!(
            c, reference,
            "canonical aggregate drifted at threads={threads} profile={profile}"
        );
    }
}
