//! Sweep-engine integration tests: the same `SweepSpec` run at thread
//! counts 1, 2, and 8 must produce byte-identical aggregated output —
//! including when a scenario's fault plan terminates its run inside the
//! pool (the `try_run` error path becomes a deterministic `error` entry,
//! never a lost or reordered result).

use triosim::{run_sweep, SweepError, SweepSpec};

/// A mixed 6-scenario spec: a 4-point grid plus two explicit scenarios,
/// one of which severs a P1 GPU's only host link mid-run so `try_run`
/// fails with `SimError::Partitioned` inside a pool worker.
const MIXED_SPEC: &str = r#"{
    "name": "determinism",
    "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
    "grid": {
        "parallelism": ["ddp", "pp:2"],
        "platform": ["p1", "p2:2"]
    },
    "scenarios": [
        { "platform": "p2:4", "parallelism": "tp", "fidelity": "reference" },
        { "platform": "p1", "parallelism": "ddp", "label": "partitioned",
          "faults": { "link_failures": [ { "src": 0, "dst": 2, "at_s": 0.0 } ] } }
    ]
}"#;

#[test]
fn aggregate_is_byte_identical_across_thread_counts() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let baseline = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
    for threads in [2, 8] {
        let outcome = run_sweep(&spec, threads, false).unwrap();
        assert_eq!(
            outcome.to_canonical_string(),
            baseline,
            "thread count {threads} changed the aggregate"
        );
    }
}

#[test]
fn fault_terminated_scenario_is_isolated_and_deterministic() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let outcome = run_sweep(&spec, 8, false).unwrap();
    assert_eq!(outcome.results.len(), 6);
    assert_eq!(outcome.failures(), 1, "exactly the partitioned scenario");
    let failed = &outcome.results[5];
    assert_eq!(failed.label, "partitioned");
    let error = failed.outcome.as_ref().unwrap_err();
    assert!(error.contains("partition"), "typed error surfaced: {error}");
    // Its neighbors still produced full reports.
    for r in &outcome.results[..5] {
        assert!(r.outcome.is_ok(), "{} unexpectedly failed", r.label);
    }
}

#[test]
fn scenario_order_follows_expansion_not_completion() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let expected: Vec<String> = spec
        .expand()
        .unwrap()
        .into_iter()
        .map(|s| s.label)
        .collect();
    let outcome = run_sweep(&spec, 8, false).unwrap();
    let got: Vec<String> = outcome.results.iter().map(|r| r.label.clone()).collect();
    assert_eq!(got, expected);
}

#[test]
fn parse_errors_surface_before_any_simulation() {
    let spec = SweepSpec::from_json(
        r#"{ "grid": { "platform": ["p2:2", "p9"], "parallelism": ["ddp"] } }"#,
    )
    .unwrap();
    match run_sweep(&spec, 4, false).unwrap_err() {
        SweepError::Scenario { index, error, .. } => {
            assert_eq!(index, 1, "second grid point holds the bad platform");
            assert!(error.contains("p9"), "{error}");
        }
        other => panic!("wrong error: {other}"),
    }
}

/// A sweep scenario must match a directly-configured `SimBuilder` run
/// bit-for-bit: the shared-artifact plumbing (Arc'd trace, memoized
/// calibration) cannot change results.
#[test]
fn sweep_scenario_matches_direct_simbuilder_run() {
    use triosim::{Parallelism, Platform, SimBuilder};
    use triosim_modelzoo::ModelId;
    use triosim_trace::{GpuModel, Tracer};

    let spec = SweepSpec::from_json(
        r#"{ "scenarios": [ { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                              "platform": "p2:2", "parallelism": "ddp" } ] }"#,
    )
    .unwrap();
    let outcome = run_sweep(&spec, 1, false).unwrap();
    let from_sweep = outcome.results[0].outcome.as_ref().unwrap();

    let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(8));
    let platform = Platform::p2(2);
    let direct = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .run()
        .to_canonical_json();

    assert_eq!(
        serde_json::to_string(from_sweep).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
}
