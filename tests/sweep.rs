//! Sweep-engine integration tests: the same `SweepSpec` run at thread
//! counts 1, 2, and 8 must produce byte-identical aggregated output —
//! including when a scenario's fault plan terminates its run inside the
//! pool (the `try_run` error path becomes a deterministic `error` entry,
//! never a lost or reordered result), and including when the run is
//! killed mid-sweep and resumed from its journal.

use std::path::PathBuf;

use triosim::{run_sweep, run_sweep_with, ScenarioError, SweepError, SweepRunConfig, SweepSpec};

/// A mixed 6-scenario spec: a 4-point grid plus two explicit scenarios,
/// one of which severs a P1 GPU's only host link mid-run so `try_run`
/// fails with `SimError::Partitioned` inside a pool worker.
const MIXED_SPEC: &str = r#"{
    "name": "determinism",
    "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
    "grid": {
        "parallelism": ["ddp", "pp:2"],
        "platform": ["p1", "p2:2"]
    },
    "scenarios": [
        { "platform": "p2:4", "parallelism": "tp", "fidelity": "reference" },
        { "platform": "p1", "parallelism": "ddp", "label": "partitioned",
          "faults": { "link_failures": [ { "src": 0, "dst": 2, "at_s": 0.0 } ] } }
    ]
}"#;

#[test]
fn aggregate_is_byte_identical_across_thread_counts() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let baseline = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
    for threads in [2, 8] {
        let outcome = run_sweep(&spec, threads, false).unwrap();
        assert_eq!(
            outcome.to_canonical_string(),
            baseline,
            "thread count {threads} changed the aggregate"
        );
    }
}

#[test]
fn fault_terminated_scenario_is_isolated_and_deterministic() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let outcome = run_sweep(&spec, 8, false).unwrap();
    assert_eq!(outcome.results.len(), 6);
    assert_eq!(outcome.failures(), 1, "exactly the partitioned scenario");
    let failed = &outcome.results[5];
    assert_eq!(failed.label, "partitioned");
    let error = failed.outcome.as_ref().unwrap_err().to_string();
    assert!(error.contains("partition"), "typed error surfaced: {error}");
    // Its neighbors still produced full reports.
    for r in &outcome.results[..5] {
        assert!(r.outcome.is_ok(), "{} unexpectedly failed", r.label);
    }
}

#[test]
fn scenario_order_follows_expansion_not_completion() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let expected: Vec<String> = spec
        .expand()
        .unwrap()
        .into_iter()
        .map(|s| s.label)
        .collect();
    let outcome = run_sweep(&spec, 8, false).unwrap();
    let got: Vec<String> = outcome.results.iter().map(|r| r.label.clone()).collect();
    assert_eq!(got, expected);
}

#[test]
fn parse_errors_surface_before_any_simulation() {
    let spec = SweepSpec::from_json(
        r#"{ "grid": { "platform": ["p2:2", "p9"], "parallelism": ["ddp"] } }"#,
    )
    .unwrap();
    match run_sweep(&spec, 4, false).unwrap_err() {
        SweepError::Scenario { index, error, .. } => {
            assert_eq!(index, 1, "second grid point holds the bad platform");
            assert!(error.contains("p9"), "{error}");
        }
        other => panic!("wrong error: {other}"),
    }
}

fn temp_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "triosim-sweep-it-{}-{seq}-{tag}.jsonl",
        std::process::id()
    ))
}

/// The tentpole guarantee: kill a journaled sweep partway (modeled as a
/// journal truncated after K fsync'd entries plus a torn final line),
/// resume at several thread counts, and the aggregate must be
/// byte-identical to an uninterrupted run every time.
#[test]
fn kill_and_resume_is_byte_identical_across_thread_counts() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let clean = run_sweep(&spec, 2, false).unwrap().to_canonical_string();

    // A full journaled run, to harvest realistic journal bytes.
    let journal = temp_path("full");
    let config = SweepRunConfig {
        threads: 2,
        journal: Some(journal.clone()),
        spec_text: Some(MIXED_SPEC.to_string()),
        ..SweepRunConfig::default()
    };
    let journaled = run_sweep_with(&spec, &config).unwrap();
    assert_eq!(
        journaled.to_canonical_string(),
        clean,
        "journaling must not perturb the canonical output"
    );

    // "Kill" the run: keep the header + the first 3 durable entries, then
    // a torn final line — exactly what SIGKILL mid-write leaves behind.
    let text = std::fs::read_to_string(&journal).unwrap();
    let mut lines = text.lines();
    let mut truncated = String::new();
    for _ in 0..4 {
        truncated.push_str(lines.next().unwrap());
        truncated.push('\n');
    }
    truncated.push_str(r#"{"index":4,"label":"torn mid-"#);

    for threads in [1, 2, 8] {
        let resume = temp_path(&format!("resume-{threads}"));
        std::fs::write(&resume, &truncated).unwrap();
        let config = SweepRunConfig {
            threads,
            resume: Some(resume.clone()),
            ..SweepRunConfig::default()
        };
        let outcome = run_sweep_with(&spec, &config).unwrap();
        assert_eq!(outcome.replayed, 3, "threads {threads}: replay count");
        assert_eq!(
            outcome.to_canonical_string(),
            clean,
            "threads {threads}: resumed aggregate diverged"
        );
        // The extended journal must itself be resumable (tear healed).
        let config = SweepRunConfig {
            threads: 1,
            resume: Some(resume.clone()),
            ..SweepRunConfig::default()
        };
        let again = run_sweep_with(&spec, &config).unwrap();
        assert_eq!(again.replayed, 6, "everything replays the second time");
        assert_eq!(again.to_canonical_string(), clean);
        std::fs::remove_file(&resume).ok();
    }
    std::fs::remove_file(&journal).ok();
}

/// A journal written for one spec must not silently resume a different
/// one: the header's spec hash catches edits to any canonical field.
#[test]
fn stale_journal_is_rejected_on_resume() {
    let spec = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let journal = temp_path("stale");
    let config = SweepRunConfig {
        threads: 2,
        journal: Some(journal.clone()),
        ..SweepRunConfig::default()
    };
    run_sweep_with(&spec, &config).unwrap();

    // Same name, different grid: the hash must differ.
    let edited = SweepSpec::from_json(
        r#"{
            "name": "determinism",
            "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
            "grid": { "parallelism": ["ddp"], "platform": ["p1"] }
        }"#,
    )
    .unwrap();
    let config = SweepRunConfig {
        threads: 1,
        resume: Some(journal.clone()),
        ..SweepRunConfig::default()
    };
    match run_sweep_with(&edited, &config).unwrap_err() {
        SweepError::Journal(msg) => {
            assert!(msg.contains("stale journal"), "names the staleness: {msg}");
        }
        other => panic!("wrong error: {other}"),
    }
    std::fs::remove_file(&journal).ok();
}

/// Panic isolation and budget enforcement must be exactly as
/// deterministic as ordinary errors: a spec containing a healthy
/// scenario, a panicking scenario, and a budget-limited scenario
/// aggregates byte-identically at thread counts 1, 2, and 8 — and the
/// error entries keep their structured kinds.
#[test]
fn panic_and_budget_entries_are_deterministic_across_thread_counts() {
    // global_batch 0 trips the extrapolator's assertion (a genuine bug
    // panic, not a typed error); max_events 5 trips the runaway guard.
    let spec = SweepSpec::from_json(
        r#"{
            "name": "isolation",
            "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                          "platform": "p2:2", "parallelism": "ddp" },
            "scenarios": [
                {},
                { "global_batch": 0, "label": "boom" },
                { "max_events": 5, "label": "runaway" },
                { "parallelism": "tp" }
            ]
        }"#,
    )
    .unwrap();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let baseline = run_sweep(&spec, 1, false).unwrap();
    let canonical = baseline.to_canonical_string();
    for threads in [2, 8] {
        let outcome = run_sweep(&spec, threads, false).unwrap();
        assert_eq!(
            outcome.to_canonical_string(),
            canonical,
            "threads {threads} changed the aggregate"
        );
        assert_eq!(outcome.panicked(), 1);
        assert_eq!(outcome.budget_terminated(), 1);
        assert_eq!(outcome.failures(), 2);
    }
    std::panic::set_hook(prev_hook);
    assert!(matches!(
        baseline.results[1].outcome,
        Err(ScenarioError::Panicked { index: 1, .. })
    ));
    assert_eq!(
        baseline.results[2]
            .outcome
            .as_ref()
            .unwrap_err()
            .to_string(),
        "budget exceeded: more than 5 events delivered"
    );
    // Healthy neighbors on both sides of the failures still completed.
    assert!(baseline.results[0].outcome.is_ok());
    assert!(baseline.results[3].outcome.is_ok());
}

/// `wall_timeout_ms` is the one budget knob excluded from canonical
/// output (wall-clock enforcement is host-dependent): a generous
/// timeout must leave the aggregate byte-identical to no timeout.
#[test]
fn generous_wall_timeout_does_not_change_canonical_output() {
    let base = SweepSpec::from_json(MIXED_SPEC).unwrap();
    let with_timeout = SweepSpec::from_json(&MIXED_SPEC.replace(
        r#""defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" }"#,
        r#""defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                         "wall_timeout_ms": 3600000 }"#,
    ))
    .unwrap();
    assert_eq!(
        run_sweep(&base, 2, false).unwrap().to_canonical_string(),
        run_sweep(&with_timeout, 2, false)
            .unwrap()
            .to_canonical_string()
    );
}

/// A sweep scenario must match a directly-configured `SimBuilder` run
/// bit-for-bit: the shared-artifact plumbing (Arc'd trace, memoized
/// calibration) cannot change results.
#[test]
fn sweep_scenario_matches_direct_simbuilder_run() {
    use triosim::{Parallelism, Platform, SimBuilder};
    use triosim_modelzoo::ModelId;
    use triosim_trace::{GpuModel, Tracer};

    let spec = SweepSpec::from_json(
        r#"{ "scenarios": [ { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                              "platform": "p2:2", "parallelism": "ddp" } ] }"#,
    )
    .unwrap();
    let outcome = run_sweep(&spec, 1, false).unwrap();
    let from_sweep = outcome.results[0].outcome.as_ref().unwrap();

    let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(8));
    let platform = Platform::p2(2);
    let direct = SimBuilder::new(&trace, &platform)
        .parallelism(Parallelism::DataParallel { overlap: true })
        .run()
        .to_canonical_json();

    assert_eq!(
        serde_json::to_string(from_sweep).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
}
