//! Seeded, deterministic fault-injection plans for TrioSim.
//!
//! A [`FaultPlan`] is a declarative description of everything that can go
//! wrong in a simulated cluster: straggler GPUs (static compute slowdown
//! factors), operator-time jitter, degraded links, transient link failures
//! with repair times, and permanent GPU drop-out. Plans are plain data —
//! JSON-serializable, hashable by content, and **deterministic**: all
//! randomness flows from the plan's single `u64` seed through a splittable
//! SplitMix64 mix, so the same plan always reproduces byte-identical
//! simulation reports no matter the host, thread timing, or event order.
//!
//! The plan itself knows nothing about simulators. The executor consumes a
//! compiled [`FaultSession`], which exposes:
//!
//! * per-GPU static compute dilation factors ([`FaultSession::compute_factor`]),
//! * a stateless jitter factor keyed by `(gpu, task, iteration)`
//!   ([`FaultSession::jitter_factor`]) — order-independent by construction,
//! * a time-sorted [`TimedFault`] timeline of link degradations, failures,
//!   repairs, and GPU drop-outs.
//!
//! An empty plan ([`FaultPlan::is_empty`]) compiles to an empty session and
//! is guaranteed by the executor's test oracle to be bit-identical to a
//! fault-free run.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Fault plans parse untrusted JSON and drive the crash-safe sweep
// layer: production code here must degrade through typed errors, never
// unwrap. Tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// A static compute slowdown applied to one GPU for the whole run.
///
/// `factor` multiplies every compute-op duration on `gpu`; `1.0` is a no-op
/// and `10.0` makes the GPU a 10x straggler.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSlowdown {
    /// GPU rank the slowdown applies to.
    pub gpu: usize,
    /// Duration multiplier, must be finite and `>= 1.0`.
    pub factor: f64,
}

/// Uniform operator-time jitter drawn per `(gpu, task, iteration)`.
///
/// Each compute op is dilated by a factor in `[1, 1 + amplitude)` derived
/// deterministically from the plan seed — the same op in the same iteration
/// always draws the same factor, independent of event-processing order.
#[derive(Debug, Clone, PartialEq)]
pub struct Jitter {
    /// Maximum relative dilation; `0.05` means up to +5% per op.
    pub amplitude: f64,
}

/// A bandwidth degradation of the duplex link between two nodes at a given
/// simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDegradation {
    /// One endpoint of the link (platform node id).
    pub src: usize,
    /// The other endpoint of the link (platform node id).
    pub dst: usize,
    /// Bandwidth multiplier, must be finite and positive; `0.5` halves the
    /// link's capacity in both directions.
    pub factor: f64,
    /// Simulated time (seconds) at which the degradation takes effect.
    /// Defaults to `0.0` (from the start of the run).
    pub at_s: f64,
}

/// A transient failure of the duplex link between two nodes.
///
/// While failed, the link carries no traffic: in-flight flows crossing it
/// are rerouted around it, and if no alternative path exists the simulation
/// ends with a structured `Partitioned` error instead of hanging.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFailure {
    /// One endpoint of the link (platform node id).
    pub src: usize,
    /// The other endpoint of the link (platform node id).
    pub dst: usize,
    /// Simulated time (seconds) at which the link goes down.
    pub at_s: f64,
    /// Simulated time (seconds) at which the link comes back, or `None`
    /// for a permanent failure.
    pub repair_s: Option<f64>,
}

/// A permanent GPU drop-out at a given simulated time.
///
/// A synchronous-training run cannot survive losing a worker, so the
/// executor terminates the run with a structured `GpuLost` error.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDropout {
    /// GPU rank that drops out.
    pub gpu: usize,
    /// Simulated time (seconds) of the drop-out.
    pub at_s: f64,
}

/// A declarative, seeded description of every fault to inject into a run.
///
/// All fields are optional in the JSON form; an absent field means "no
/// faults of that kind". See the crate docs for the schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed for all stochastic fault behavior (currently jitter).
    pub seed: u64,
    /// Static per-GPU compute slowdowns (stragglers).
    pub gpu_slowdowns: Vec<GpuSlowdown>,
    /// Optional operator-time jitter.
    pub jitter: Option<Jitter>,
    /// Timed link bandwidth degradations.
    pub link_degradations: Vec<LinkDegradation>,
    /// Timed transient link failures (with optional repair).
    pub link_failures: Vec<LinkFailure>,
    /// Timed permanent GPU drop-outs.
    pub gpu_dropouts: Vec<GpuDropout>,
}

/// Error produced when a [`FaultPlan`] cannot be parsed or fails
/// validation against a concrete platform.
#[derive(Debug)]
pub enum FaultPlanError {
    /// The JSON text was malformed or had the wrong shape.
    Parse(String),
    /// A record in the plan is invalid; the message names it.
    Invalid(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Parse(e) => write!(f, "invalid fault plan JSON: {e}"),
            FaultPlanError::Invalid(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::from_value(inner).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_missing().ok_or_else(|| DeError(format!("missing field `{name}`"))),
    }
}

fn de_field_or<T: Deserialize>(v: &Value, name: &str, default: T) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::from_value(inner).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(default),
    }
}

impl Serialize for GpuSlowdown {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("gpu".into(), self.gpu.to_value()),
            ("factor".into(), self.factor.to_value()),
        ])
    }
}

impl Deserialize for GpuSlowdown {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(GpuSlowdown {
            gpu: de_field(v, "gpu")?,
            factor: de_field(v, "factor")?,
        })
    }
}

impl Serialize for Jitter {
    fn to_value(&self) -> Value {
        Value::Object(vec![("amplitude".into(), self.amplitude.to_value())])
    }
}

impl Deserialize for Jitter {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Jitter {
            amplitude: de_field(v, "amplitude")?,
        })
    }
}

impl Serialize for LinkDegradation {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("src".into(), self.src.to_value()),
            ("dst".into(), self.dst.to_value()),
            ("factor".into(), self.factor.to_value()),
            ("at_s".into(), self.at_s.to_value()),
        ])
    }
}

impl Deserialize for LinkDegradation {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(LinkDegradation {
            src: de_field(v, "src")?,
            dst: de_field(v, "dst")?,
            factor: de_field(v, "factor")?,
            at_s: de_field_or(v, "at_s", 0.0)?,
        })
    }
}

impl Serialize for LinkFailure {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("src".into(), self.src.to_value()),
            ("dst".into(), self.dst.to_value()),
            ("at_s".into(), self.at_s.to_value()),
            ("repair_s".into(), self.repair_s.to_value()),
        ])
    }
}

impl Deserialize for LinkFailure {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(LinkFailure {
            src: de_field(v, "src")?,
            dst: de_field(v, "dst")?,
            at_s: de_field(v, "at_s")?,
            repair_s: de_field_or(v, "repair_s", None)?,
        })
    }
}

impl Serialize for GpuDropout {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("gpu".into(), self.gpu.to_value()),
            ("at_s".into(), self.at_s.to_value()),
        ])
    }
}

impl Deserialize for GpuDropout {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(GpuDropout {
            gpu: de_field(v, "gpu")?,
            at_s: de_field(v, "at_s")?,
        })
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seed".into(), self.seed.to_value()),
            ("gpu_slowdowns".into(), self.gpu_slowdowns.to_value()),
            ("jitter".into(), self.jitter.to_value()),
            (
                "link_degradations".into(),
                self.link_degradations.to_value(),
            ),
            ("link_failures".into(), self.link_failures.to_value()),
            ("gpu_dropouts".into(), self.gpu_dropouts.to_value()),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_object().is_none() {
            return Err(DeError::expected("fault plan object", v));
        }
        Ok(FaultPlan {
            seed: de_field_or(v, "seed", 0)?,
            gpu_slowdowns: de_field_or(v, "gpu_slowdowns", Vec::new())?,
            jitter: de_field_or(v, "jitter", None)?,
            link_degradations: de_field_or(v, "link_degradations", Vec::new())?,
            link_failures: de_field_or(v, "link_failures", Vec::new())?,
            gpu_dropouts: de_field_or(v, "gpu_dropouts", Vec::new())?,
        })
    }
}

impl FaultPlan {
    /// True when the plan injects nothing at all — the executor's
    /// fault-free fast path, guaranteed bit-identical to a run with no
    /// plan.
    pub fn is_empty(&self) -> bool {
        self.gpu_slowdowns.is_empty()
            && self.jitter.is_none()
            && self.link_degradations.is_empty()
            && self.link_failures.is_empty()
            && self.gpu_dropouts.is_empty()
    }

    /// Replaces the plan's seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a plan from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Parse`] on malformed JSON or a
    /// wrong-shaped document.
    pub fn from_json(json: &str) -> Result<Self, FaultPlanError> {
        serde_json::from_str(json).map_err(|e| FaultPlanError::Parse(e.to_string()))
    }

    /// Serializes the plan to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault plans serialize to plain JSON")
    }

    /// Validates the plan against a platform with `gpus` GPU ranks and
    /// `nodes` topology nodes.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Invalid`] naming the first offending
    /// record (field, index, and why).
    pub fn validate(&self, gpus: usize, nodes: usize) -> Result<(), FaultPlanError> {
        let bad = |msg: String| Err(FaultPlanError::Invalid(msg));
        for (i, s) in self.gpu_slowdowns.iter().enumerate() {
            if s.gpu >= gpus {
                return bad(format!(
                    "gpu_slowdowns[{i}]: gpu {} out of range (platform has {gpus} GPUs)",
                    s.gpu
                ));
            }
            if !s.factor.is_finite() || s.factor < 1.0 {
                return bad(format!(
                    "gpu_slowdowns[{i}]: factor {} must be finite and >= 1",
                    s.factor
                ));
            }
        }
        if let Some(j) = &self.jitter {
            if !j.amplitude.is_finite() || j.amplitude < 0.0 {
                return bad(format!(
                    "jitter: amplitude {} must be finite and >= 0",
                    j.amplitude
                ));
            }
        }
        for (i, d) in self.link_degradations.iter().enumerate() {
            if d.src >= nodes || d.dst >= nodes {
                return bad(format!(
                    "link_degradations[{i}]: endpoint {}->{} out of range (topology has {nodes} nodes)",
                    d.src, d.dst
                ));
            }
            if d.src == d.dst {
                return bad(format!(
                    "link_degradations[{i}]: endpoints must differ (got {})",
                    d.src
                ));
            }
            if !d.factor.is_finite() || d.factor <= 0.0 {
                return bad(format!(
                    "link_degradations[{i}]: factor {} must be finite and positive",
                    d.factor
                ));
            }
            if !d.at_s.is_finite() || d.at_s < 0.0 {
                return bad(format!(
                    "link_degradations[{i}]: at_s {} must be finite and >= 0",
                    d.at_s
                ));
            }
        }
        for (i, l) in self.link_failures.iter().enumerate() {
            if l.src >= nodes || l.dst >= nodes {
                return bad(format!(
                    "link_failures[{i}]: endpoint {}->{} out of range (topology has {nodes} nodes)",
                    l.src, l.dst
                ));
            }
            if l.src == l.dst {
                return bad(format!(
                    "link_failures[{i}]: endpoints must differ (got {})",
                    l.src
                ));
            }
            if !l.at_s.is_finite() || l.at_s < 0.0 {
                return bad(format!(
                    "link_failures[{i}]: at_s {} must be finite and >= 0",
                    l.at_s
                ));
            }
            if let Some(r) = l.repair_s {
                if !r.is_finite() || r <= l.at_s {
                    return bad(format!(
                        "link_failures[{i}]: repair_s {r} must be finite and > at_s ({})",
                        l.at_s
                    ));
                }
            }
        }
        for (i, d) in self.gpu_dropouts.iter().enumerate() {
            if d.gpu >= gpus {
                return bad(format!(
                    "gpu_dropouts[{i}]: gpu {} out of range (platform has {gpus} GPUs)",
                    d.gpu
                ));
            }
            if !d.at_s.is_finite() || d.at_s < 0.0 {
                return bad(format!(
                    "gpu_dropouts[{i}]: at_s {} must be finite and >= 0",
                    d.at_s
                ));
            }
        }
        Ok(())
    }
}

/// One timed fault on the compiled timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    /// Simulated time (seconds) at which the fault fires.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// The concrete event a [`TimedFault`] injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Scale the bandwidth of the duplex link `src <-> dst` by `factor`.
    LinkDegrade {
        /// One endpoint of the link.
        src: usize,
        /// The other endpoint.
        dst: usize,
        /// Bandwidth multiplier.
        factor: f64,
    },
    /// Take the duplex link `src <-> dst` down.
    LinkFail {
        /// One endpoint of the link.
        src: usize,
        /// The other endpoint.
        dst: usize,
    },
    /// Bring the duplex link `src <-> dst` back up.
    LinkRepair {
        /// One endpoint of the link.
        src: usize,
        /// The other endpoint.
        dst: usize,
    },
    /// Permanently lose a GPU.
    GpuDrop {
        /// GPU rank lost.
        gpu: usize,
    },
}

impl FaultKind {
    /// Stable short label for observability events and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::LinkFail { .. } => "link_fail",
            FaultKind::LinkRepair { .. } => "link_repair",
            FaultKind::GpuDrop { .. } => "gpu_drop",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            FaultKind::LinkDegrade { .. } => 0,
            FaultKind::LinkFail { .. } => 1,
            FaultKind::LinkRepair { .. } => 2,
            FaultKind::GpuDrop { .. } => 3,
        }
    }

    fn tiebreak(&self) -> (usize, usize) {
        match *self {
            FaultKind::LinkDegrade { src, dst, .. }
            | FaultKind::LinkFail { src, dst }
            | FaultKind::LinkRepair { src, dst } => (src, dst),
            FaultKind::GpuDrop { gpu } => (gpu, 0),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LinkDegrade { src, dst, factor } => {
                write!(f, "degrade link n{src}<->n{dst} x{factor}")
            }
            FaultKind::LinkFail { src, dst } => write!(f, "fail link n{src}<->n{dst}"),
            FaultKind::LinkRepair { src, dst } => write!(f, "repair link n{src}<->n{dst}"),
            FaultKind::GpuDrop { gpu } => write!(f, "drop gpu{gpu}"),
        }
    }
}

/// SplitMix64 finalizer — the statistical core of the splittable PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed with a stream of keys into a single hash. Splittable and
/// stateless: the result depends only on the inputs, never on draw order.
fn mix(seed: u64, keys: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0x5151_5151_5151_5151);
    for &k in keys {
        h = splitmix64(h ^ k);
    }
    h
}

/// A [`FaultPlan`] compiled against a concrete GPU count, ready for the
/// executor to consume.
#[derive(Debug, Clone)]
pub struct FaultSession {
    seed: u64,
    compute: Vec<f64>,
    jitter_amplitude: f64,
    timeline: Vec<TimedFault>,
}

impl FaultSession {
    /// Compiles `plan` for a platform with `gpus` GPU ranks.
    ///
    /// Link failures with a repair time expand into a fail + repair pair on
    /// the timeline. The timeline is sorted by time with a deterministic
    /// tie-break (kind, then endpoints), so identical plans always produce
    /// identical injection orders.
    pub fn new(plan: &FaultPlan, gpus: usize) -> Self {
        let mut compute = vec![1.0; gpus];
        for s in &plan.gpu_slowdowns {
            if s.gpu < gpus {
                compute[s.gpu] *= s.factor;
            }
        }
        let mut timeline = Vec::new();
        for d in &plan.link_degradations {
            timeline.push(TimedFault {
                at_s: d.at_s,
                kind: FaultKind::LinkDegrade {
                    src: d.src,
                    dst: d.dst,
                    factor: d.factor,
                },
            });
        }
        for l in &plan.link_failures {
            timeline.push(TimedFault {
                at_s: l.at_s,
                kind: FaultKind::LinkFail {
                    src: l.src,
                    dst: l.dst,
                },
            });
            if let Some(r) = l.repair_s {
                timeline.push(TimedFault {
                    at_s: r,
                    kind: FaultKind::LinkRepair {
                        src: l.src,
                        dst: l.dst,
                    },
                });
            }
        }
        for d in &plan.gpu_dropouts {
            timeline.push(TimedFault {
                at_s: d.at_s,
                kind: FaultKind::GpuDrop { gpu: d.gpu },
            });
        }
        timeline.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then_with(|| a.kind.rank().cmp(&b.kind.rank()))
                .then_with(|| a.kind.tiebreak().cmp(&b.kind.tiebreak()))
        });
        FaultSession {
            seed: plan.seed,
            compute,
            jitter_amplitude: plan.jitter.as_ref().map_or(0.0, |j| j.amplitude),
            timeline,
        }
    }

    /// True when the session injects nothing.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
            && self.jitter_amplitude == 0.0
            && self.compute.iter().all(|&f| f == 1.0)
    }

    /// The static compute dilation factor for `gpu` (`>= 1.0`).
    pub fn compute_factor(&self, gpu: usize) -> f64 {
        self.compute.get(gpu).copied().unwrap_or(1.0)
    }

    /// True when the plan carries operator-time jitter.
    pub fn has_jitter(&self) -> bool {
        self.jitter_amplitude > 0.0
    }

    /// The jitter dilation factor for one compute op, in
    /// `[1, 1 + amplitude)`.
    ///
    /// Stateless: the factor depends only on the seed and the
    /// `(gpu, task, iteration)` coordinates of the op, so it is identical
    /// no matter what order events are processed in.
    pub fn jitter_factor(&self, gpu: usize, task: usize, iteration: usize) -> f64 {
        if self.jitter_amplitude == 0.0 {
            return 1.0;
        }
        let h = mix(self.seed, &[1, gpu as u64, task as u64, iteration as u64]);
        // 53 high bits -> uniform in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter_amplitude * unit
    }

    /// The static transfer slowdown between two workers implied by the
    /// plan's link degradations (the Hop model's view of the plan):
    /// a degradation with `factor` 0.5 means transfers take 2x as long.
    ///
    /// Always `>= 1.0`; matches either direction of the pair.
    pub fn link_slowdown(&self, a: usize, b: usize) -> f64 {
        let mut slowdown = 1.0;
        for t in &self.timeline {
            if let FaultKind::LinkDegrade { src, dst, factor } = t.kind {
                if (src == a && dst == b) || (src == b && dst == a) {
                    slowdown *= 1.0 / factor;
                }
            }
        }
        slowdown.max(1.0)
    }

    /// The time-sorted fault timeline.
    pub fn timeline(&self) -> &[TimedFault] {
        &self.timeline
    }

    /// The plan seed the session was compiled from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            gpu_slowdowns: vec![GpuSlowdown {
                gpu: 3,
                factor: 10.0,
            }],
            jitter: Some(Jitter { amplitude: 0.05 }),
            link_degradations: vec![LinkDegradation {
                src: 0,
                dst: 1,
                factor: 0.5,
                at_s: 0.001,
            }],
            link_failures: vec![LinkFailure {
                src: 1,
                dst: 2,
                at_s: 0.002,
                repair_s: Some(0.004),
            }],
            gpu_dropouts: vec![],
        }
    }

    #[test]
    fn json_round_trip() {
        let plan = sample_plan();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn sparse_json_fills_defaults() {
        let plan = FaultPlan::from_json(r#"{"gpu_slowdowns": [{"gpu": 0, "factor": 2.0}]}"#)
            .expect("sparse plan must parse");
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.gpu_slowdowns.len(), 1);
        assert!(plan.jitter.is_none());
        assert!(!plan.is_empty());
        assert!(FaultPlan::from_json("{}").unwrap().is_empty());
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(
            FaultPlan::from_json("not json"),
            Err(FaultPlanError::Parse(_))
        ));
        assert!(matches!(
            FaultPlan::from_json(r#"{"gpu_slowdowns": [{"gpu": 0}]}"#),
            Err(FaultPlanError::Parse(_))
        ));
    }

    #[test]
    fn validation_names_the_offending_record() {
        let mut plan = sample_plan();
        plan.gpu_slowdowns[0].gpu = 99;
        let err = plan.validate(8, 9).unwrap_err().to_string();
        assert!(err.contains("gpu_slowdowns[0]"), "got: {err}");
        assert!(err.contains("99"), "got: {err}");

        let mut plan = sample_plan();
        plan.link_failures[0].repair_s = Some(0.001);
        let err = plan.validate(8, 9).unwrap_err().to_string();
        assert!(err.contains("link_failures[0]"), "got: {err}");

        assert!(sample_plan().validate(8, 9).is_ok());
    }

    #[test]
    fn timeline_is_sorted_and_expands_repairs() {
        let session = FaultSession::new(&sample_plan(), 8);
        let times: Vec<f64> = session.timeline().iter().map(|t| t.at_s).collect();
        assert_eq!(times, vec![0.001, 0.002, 0.004]);
        assert!(matches!(
            session.timeline()[2].kind,
            FaultKind::LinkRepair { src: 1, dst: 2 }
        ));
    }

    #[test]
    fn jitter_is_stateless_and_bounded() {
        let session = FaultSession::new(&sample_plan(), 8);
        let a = session.jitter_factor(2, 17, 1);
        let b = session.jitter_factor(2, 17, 1);
        assert_eq!(a, b, "same coordinates must draw the same factor");
        assert!(session.jitter_factor(2, 18, 1) != a, "streams must split");
        for gpu in 0..8 {
            for task in 0..64 {
                let f = session.jitter_factor(gpu, task, 0);
                assert!((1.0..1.05 + 1e-12).contains(&f), "factor {f} out of range");
            }
        }
    }

    #[test]
    fn empty_plan_compiles_to_empty_session() {
        let session = FaultSession::new(&FaultPlan::default(), 4);
        assert!(session.is_empty());
        assert_eq!(session.compute_factor(0), 1.0);
        assert_eq!(session.jitter_factor(0, 0, 0), 1.0);
        assert_eq!(session.link_slowdown(0, 1), 1.0);
    }

    #[test]
    fn straggler_and_link_views() {
        let session = FaultSession::new(&sample_plan(), 8);
        assert_eq!(session.compute_factor(3), 10.0);
        assert_eq!(session.compute_factor(0), 1.0);
        assert_eq!(session.link_slowdown(0, 1), 2.0);
        assert_eq!(session.link_slowdown(1, 0), 2.0);
        assert_eq!(session.link_slowdown(4, 5), 1.0);
    }
}
