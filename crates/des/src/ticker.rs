//! Periodic ticking, Akita-style.
//!
//! Akita components that poll state (progress monitors, AkitaRTM's
//! real-time view) are *ticking* components: they re-schedule themselves
//! at a fixed period until told to stop. [`Ticker`] packages that pattern
//! for [`EventQueue`]-based simulators: it hands out the next tick time
//! and knows when to stop, leaving event delivery to the owning loop.

use crate::queue::EventQueue;
use crate::time::{TimeSpan, VirtualTime};

/// A fixed-period tick source.
///
/// # Example
///
/// ```rust
/// use triosim_des::{EventQueue, TimeSpan, Ticker, VirtualTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev {
///     Tick,
///     Done,
/// }
///
/// let mut q = EventQueue::new();
/// let mut ticker = Ticker::new(TimeSpan::from_millis(10.0));
/// q.schedule(ticker.first_tick(VirtualTime::ZERO), Ev::Tick);
/// q.schedule(VirtualTime::from_millis(35.0), Ev::Done);
///
/// let mut ticks = 0;
/// while let Some((now, ev)) = q.pop() {
///     match ev {
///         Ev::Tick => {
///             ticks += 1;
///             if let Some(next) = ticker.next_tick(now) {
///                 q.schedule(next, Ev::Tick);
///             }
///         }
///         Ev::Done => ticker.stop(),
///     }
/// }
/// assert_eq!(ticks, 4, "ticks at 10, 20, 30, 40 ms; stopped after Done");
/// ```
#[derive(Debug, Clone)]
pub struct Ticker {
    period: TimeSpan,
    stopped: bool,
    ticks: u64,
}

impl Ticker {
    /// Creates a ticker with the given period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero (it would flood the queue).
    pub fn new(period: TimeSpan) -> Self {
        assert!(!period.is_zero(), "tick period must be positive");
        Ticker {
            period,
            stopped: false,
            ticks: 0,
        }
    }

    /// The tick period.
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// Number of ticks issued so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The first tick time after `now`.
    pub fn first_tick(&mut self, now: VirtualTime) -> VirtualTime {
        self.ticks += 1;
        now + self.period
    }

    /// The next tick time, or `None` once stopped.
    pub fn next_tick(&mut self, now: VirtualTime) -> Option<VirtualTime> {
        if self.stopped {
            return None;
        }
        self.ticks += 1;
        Some(now + self.period)
    }

    /// Stops the ticker; subsequent [`next_tick`](Ticker::next_tick)
    /// calls return `None`.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// True once stopped.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }
}

/// Drives a closure at a fixed period over an existing queue until the
/// queue runs dry or the closure returns `false` — a convenience for
/// monitors that sample simulation state.
///
/// Returns the number of ticks delivered.
///
/// # Example
///
/// ```rust
/// use triosim_des::{tick_while, EventQueue, TimeSpan, VirtualTime};
///
/// let mut samples = Vec::new();
/// let n = tick_while(TimeSpan::from_millis(5.0), VirtualTime::from_millis(18.0), |t| {
///     samples.push(t.as_millis());
///     true
/// });
/// assert_eq!(n, 3); // 5, 10, 15 ms
/// assert_eq!(samples, vec![5.0, 10.0, 15.0]);
/// ```
pub fn tick_while(
    period: TimeSpan,
    until: VirtualTime,
    mut on_tick: impl FnMut(VirtualTime) -> bool,
) -> u64 {
    let mut queue: EventQueue<()> = EventQueue::new();
    let mut ticker = Ticker::new(period);
    let first = ticker.first_tick(VirtualTime::ZERO);
    if first <= until {
        queue.schedule(first, ());
    }
    let mut delivered = 0;
    while let Some((now, ())) = queue.pop() {
        delivered += 1;
        if !on_tick(now) {
            break;
        }
        if let Some(next) = ticker.next_tick(now) {
            if next <= until {
                queue.schedule(next, ());
            }
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_count_and_stop() {
        let mut t = Ticker::new(TimeSpan::from_seconds(1.0));
        let t1 = t.first_tick(VirtualTime::ZERO);
        assert_eq!(t1, VirtualTime::from_seconds(1.0));
        assert_eq!(t.next_tick(t1), Some(VirtualTime::from_seconds(2.0)));
        assert_eq!(t.ticks(), 2);
        t.stop();
        assert!(t.is_stopped());
        assert_eq!(t.next_tick(t1), None);
        assert_eq!(t.ticks(), 2, "stopped ticker issues no ticks");
    }

    #[test]
    fn tick_while_respects_deadline() {
        let mut count = 0;
        let n = tick_while(
            TimeSpan::from_seconds(1.0),
            VirtualTime::from_seconds(3.5),
            |_| {
                count += 1;
                true
            },
        );
        assert_eq!(n, 3);
        assert_eq!(count, 3);
    }

    #[test]
    fn tick_while_early_exit() {
        let n = tick_while(
            TimeSpan::from_seconds(1.0),
            VirtualTime::from_seconds(100.0),
            |t| t < VirtualTime::from_seconds(2.5),
        );
        assert_eq!(n, 3, "stops on the tick where the closure says no");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = Ticker::new(TimeSpan::ZERO);
    }
}
