//! Conservative-lookahead sharded execution: the parallel counterpart of
//! [`EventQueue`](crate::EventQueue).
//!
//! A simulation is partitioned into *shards*, each owning its own event
//! queue and driven by its own worker thread. Shards exchange
//! virtual-time-stamped boundary events through per-shard mailboxes and
//! synchronize at horizon barriers (the rustasim worker/synchronizer
//! design):
//!
//! 1. Every cross-shard event must be stamped at least `lookahead` past
//!    the sender's clock — the minimum cross-shard link latency gives the
//!    natural lower bound.
//! 2. At each round, the synchronizer computes the global minimum
//!    next-event time `M` across all shards; the round's horizon is
//!    `H = M + lookahead`.
//! 3. Each shard may safely process every local event earlier than `H`:
//!    any boundary event still in flight was sent at some time `≥ M`, so
//!    it is stamped `≥ M + lookahead = H` and cannot affect this round.
//! 4. Mailboxes are drained at the barrier and ingested in canonical
//!    `(time, source shard, sequence)` order, so the merge — and with it
//!    the whole execution — is deterministic.
//!
//! Because `M` is a property of the *global* event set, the sequence of
//! horizons (and therefore which events fall into which round) does not
//! depend on how the simulation is sharded. That makes round-granular
//! bookkeeping — notably [`RunBudget`] enforcement, aggregated across
//! shards at each barrier — deterministic across shard counts: the same
//! budget trips with the same kind and limit whether the run uses one
//! shard or eight.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::budget::{BudgetKind, RunBudget};
use crate::queue::EventQueue;
use crate::stats::QueueStats;
use crate::time::{TimeSpan, VirtualTime};

/// A boundary event in flight between shards.
struct Remote<E> {
    time: VirtualTime,
    src: usize,
    seq: u64,
    event: E,
}

/// The per-shard execution context handed to [`ShardHandler::handle`].
///
/// Lets the handler schedule follow-up events on its own shard and emit
/// boundary events to other shards, enforcing the lookahead contract.
#[derive(Debug)]
pub struct ShardCtx<'a, E> {
    shard: usize,
    lookahead: TimeSpan,
    queue: &'a mut EventQueue<E>,
    /// Boundary events staged this round as `(dst shard, time, event)`;
    /// flushed into mailboxes before the next barrier.
    staged: &'a mut Vec<(usize, VirtualTime, E)>,
}

impl<E> ShardCtx<'_, E> {
    /// The shard this context belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The current virtual time on this shard.
    pub fn now(&self) -> VirtualTime {
        self.queue.now()
    }

    /// Schedules a local follow-up event on this shard.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in this shard's past.
    pub fn schedule(&mut self, at: VirtualTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Emits an event to shard `dst` at absolute time `at`.
    ///
    /// A send to the local shard is an ordinary
    /// [`schedule`](ShardCtx::schedule). A cross-shard send must respect
    /// the conservative contract: `at` must be at least `lookahead` past
    /// the sender's clock, otherwise the receiver could already have
    /// advanced past it.
    ///
    /// # Panics
    ///
    /// Panics if a cross-shard `at` violates the lookahead bound.
    pub fn send(&mut self, dst: usize, at: VirtualTime, event: E) {
        if dst == self.shard {
            self.schedule(at, event);
            return;
        }
        assert!(
            at >= self.now() + self.lookahead,
            "cross-shard event at {at} violates the lookahead bound \
             (now {now} + lookahead {la})",
            now = self.now(),
            la = self.lookahead.as_seconds(),
        );
        self.staged.push((dst, at, event));
    }
}

/// Per-shard event logic for a sharded simulation.
///
/// One handler instance runs on each shard's worker thread; it owns that
/// shard's mutable state and reacts to events, scheduling local
/// follow-ups and emitting cross-shard boundary events through the
/// [`ShardCtx`].
pub trait ShardHandler: Send {
    /// The event type exchanged within and across shards.
    type Event: Send;

    /// Processes one event at virtual time `now`.
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event>, now: VirtualTime, event: Self::Event);
}

/// One shard's starting state: its handler plus the `(time, event)`
/// pairs seeded into its queue before the first round.
pub type ShardSeed<H> = (H, Vec<(VirtualTime, <H as ShardHandler>::Event)>);

/// The result of a completed sharded run.
#[derive(Debug)]
pub struct ShardOutcome<H> {
    /// The handlers, returned with their final state (one per shard).
    pub handlers: Vec<H>,
    /// Horizon rounds executed. A property of the global event set:
    /// identical across shard counts for the same simulation.
    pub rounds: u64,
    /// Total events delivered across all shards.
    pub events: u64,
    /// Per-shard queue statistics merged via [`QueueStats::merge`].
    pub queue_stats: QueueStats,
}

/// Synchronizer state shared by all worker threads.
struct Coordinator<E> {
    barrier: Barrier,
    /// Per-shard mailboxes of in-flight boundary events.
    mailboxes: Vec<Mutex<Vec<Remote<E>>>>,
    /// Per-shard next-event time in femtoseconds (`u64::MAX` = idle).
    next_times: Vec<AtomicU64>,
    /// Per-shard cumulative delivered-event counts.
    counts: Vec<AtomicU64>,
    /// This round's horizon in femtoseconds, written by the leader.
    horizon: AtomicU64,
    /// Set by the leader when every shard is idle or the budget tripped.
    done: AtomicBool,
    /// Set by any worker whose handler panicked. The leader aborts the
    /// run at its next horizon; workers keep the barrier protocol intact
    /// so siblings never deadlock, and the original panic payload is
    /// re-raised on the caller's thread.
    poisoned: AtomicBool,
    /// The budget trip, if any (leader-written, merged once).
    trip: Mutex<Option<(BudgetKind, u64)>>,
}

/// A caught handler panic, parked until the protocol winds down.
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Runs a sharded simulation to completion.
///
/// `shards` supplies one handler per shard together with its initially
/// scheduled events; `lookahead` is the conservative bound every
/// cross-shard event must respect (the minimum cross-shard link latency).
/// The optional `budget` is aggregated across shards at every horizon
/// barrier and enforced at round granularity, which keeps trips
/// deterministic across shard counts.
///
/// Workers run on scoped threads — one per shard — so handlers may borrow
/// from the caller's stack.
///
/// # Errors
///
/// Returns the tripped axis and its limit when the aggregated budget is
/// exceeded (the same `(kind, limit)` for every shard count).
///
/// # Panics
///
/// Panics if `shards` is empty, if `lookahead` is zero (no round could
/// make progress), or if a handler violates the lookahead contract. A
/// handler panic poisons the run: every worker exits the barrier
/// protocol cleanly (no deadlocked siblings), and the original payload
/// is re-raised here, on the caller's thread — the lowest-numbered
/// panicking shard wins when several panic in the same round.
pub fn run_sharded<H: ShardHandler>(
    shards: Vec<ShardSeed<H>>,
    lookahead: TimeSpan,
    budget: Option<RunBudget>,
) -> Result<ShardOutcome<H>, (BudgetKind, u64)> {
    assert!(!shards.is_empty(), "need at least one shard");
    assert!(
        lookahead > TimeSpan::ZERO,
        "a zero lookahead admits no event into any round"
    );
    let n = shards.len();
    let sync: Coordinator<H::Event> = Coordinator {
        barrier: Barrier::new(n),
        mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        next_times: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
        counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
        horizon: AtomicU64::new(0),
        done: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
        trip: Mutex::new(None),
    };
    let rounds = AtomicU64::new(0);
    let results: Vec<Mutex<Option<(H, QueueStats)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panics: Vec<Mutex<Option<PanicPayload>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (shard, (handler, seeds)) in shards.into_iter().enumerate() {
            let sync = &sync;
            let rounds = &rounds;
            let budget = &budget;
            let slot = &results[shard];
            let panic_slot = &panics[shard];
            scope.spawn(move || {
                worker(
                    shard, handler, seeds, lookahead, sync, budget, rounds, slot, panic_slot,
                );
            });
        }
    });

    for slot in panics {
        if let Some(payload) = slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            std::panic::resume_unwind(payload);
        }
    }
    if let Some(trip) = sync.trip.into_inner().unwrap_or(None) {
        return Err(trip);
    }
    let mut handlers = Vec::with_capacity(n);
    let mut queue_stats = QueueStats::default();
    let mut events = 0;
    for (i, slot) in results.into_iter().enumerate() {
        let (h, s) = slot
            .into_inner()
            .ok()
            .flatten()
            .unwrap_or_else(|| panic!("shard {i} worker exited without a result"));
        events += s.delivered();
        queue_stats.merge(&s);
        handlers.push(h);
    }
    Ok(ShardOutcome {
        handlers,
        rounds: rounds.load(Ordering::Acquire),
        events,
        queue_stats,
    })
}

/// One shard's worker loop: ingest → publish → barrier → horizon →
/// process → flush, until the leader declares the run finished.
#[allow(clippy::too_many_arguments)]
fn worker<H: ShardHandler>(
    shard: usize,
    mut handler: H,
    seeds: Vec<(VirtualTime, H::Event)>,
    lookahead: TimeSpan,
    sync: &Coordinator<H::Event>,
    budget: &Option<RunBudget>,
    rounds: &AtomicU64,
    slot: &Mutex<Option<(H, QueueStats)>>,
    panic_slot: &Mutex<Option<PanicPayload>>,
) {
    let mut queue = EventQueue::new();
    for (at, ev) in seeds {
        queue.schedule(at, ev);
    }
    let mut staged: Vec<(usize, VirtualTime, H::Event)> = Vec::new();
    let mut panicked = false;
    loop {
        // Ingest the mailbox in canonical (time, source shard, sequence)
        // order so simultaneous boundary events from different shards
        // always enter the local queue the same way.
        let mut inbox = {
            let mut mb = sync.mailboxes[shard]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *mb)
        };
        inbox.sort_by_key(|r| (r.time, r.src, r.seq));
        for r in inbox {
            queue.schedule(r.time, r.event);
        }

        // Publish this shard's next event time and cumulative work, then
        // wait for every shard to do the same. A panicked shard reports
        // idle forever: it stays in the protocol (keeping the barriers
        // balanced) but contributes no more work.
        let next = if panicked {
            u64::MAX
        } else {
            queue.peek_time().map_or(u64::MAX, VirtualTime::as_femtos)
        };
        sync.next_times[shard].store(next, Ordering::Release);
        sync.counts[shard].store(queue.stats().delivered(), Ordering::Release);
        sync.barrier.wait();

        // The leader computes the global minimum, checks the aggregated
        // budget, and publishes the round's horizon.
        if shard == 0 {
            let min = sync
                .next_times
                .iter()
                .map(|t| t.load(Ordering::Acquire))
                .min()
                .unwrap_or(u64::MAX);
            if min == u64::MAX || sync.poisoned.load(Ordering::Acquire) {
                sync.done.store(true, Ordering::Release);
            } else {
                let total: u64 = sync.counts.iter().map(|c| c.load(Ordering::Acquire)).sum();
                let tripped = budget.as_ref().and_then(|b| {
                    // The *next* event would push the run past the
                    // budget: check one event ahead at the round's start
                    // time, mirroring the serial check-before-process.
                    b.check(total + 1, VirtualTime::from_femtos(min))
                });
                if let Some(t) = tripped {
                    *sync.trip.lock().unwrap_or_else(|e| e.into_inner()) = Some(t);
                    sync.done.store(true, Ordering::Release);
                } else {
                    let horizon = VirtualTime::from_femtos(min) + lookahead;
                    sync.horizon.store(horizon.as_femtos(), Ordering::Release);
                    rounds.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        sync.barrier.wait();

        if sync.done.load(Ordering::Acquire) {
            break;
        }
        let horizon = VirtualTime::from_femtos(sync.horizon.load(Ordering::Acquire));

        // Process every local event strictly before the horizon; any
        // boundary event still in flight is stamped >= horizon and so
        // belongs to a later round. A handler panic must not unwind past
        // the barriers (siblings would block forever), so it is caught
        // here, parked in `panic_slot`, and re-raised by the caller once
        // every worker has wound down.
        if !panicked {
            let run_round = std::panic::AssertUnwindSafe(|| {
                while queue.peek_time().is_some_and(|t| t < horizon) {
                    let Some((now, event)) = queue.pop() else {
                        break;
                    };
                    let mut ctx = ShardCtx {
                        shard,
                        lookahead,
                        queue: &mut queue,
                        staged: &mut staged,
                    };
                    handler.handle(&mut ctx, now, event);
                }
            });
            if let Err(payload) = std::panic::catch_unwind(run_round) {
                panicked = true;
                staged.clear();
                *panic_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(payload);
                sync.poisoned.store(true, Ordering::Release);
            }
        }

        // Flush staged boundary events into their mailboxes. The next
        // barrier orders these writes before any shard's next ingest.
        for (seq, (dst, time, event)) in staged.drain(..).enumerate() {
            sync.mailboxes[dst]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Remote {
                    time,
                    src: shard,
                    seq: seq as u64,
                    event,
                });
        }
        sync.barrier.wait();
    }
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((handler, *queue.stats()));
}
