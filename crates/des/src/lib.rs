//! Deterministic discrete-event simulation engine for TrioSim-RS.
//!
//! This crate is the Rust equivalent of the role the Akita Simulator Engine
//! plays in the original (Go) TrioSim: it owns *virtual time*, an event
//! queue, and the dispatch loop, and lets the rest of the simulator
//! fast-forward over uninteresting wall-clock detail by jumping from event
//! to event.
//!
//! Two layers are provided:
//!
//! * [`EventQueue`] — a minimal, fully generic priority queue of
//!   `(time, event)` pairs with stable FIFO ordering for simultaneous
//!   events and O(log n) lazy cancellation. Most simulators built on this
//!   crate define one event `enum` and drive the loop themselves.
//! * [`Engine`] + [`Handler`] — an Akita-style dispatch layer where
//!   components register as handlers and events are routed by
//!   [`HandlerId`]. Useful when a simulation is composed of many loosely
//!   coupled components.
//! * [`run_sharded`] + [`ShardHandler`] — a conservative-lookahead
//!   parallel layer: per-shard event queues driven by worker threads,
//!   synchronized at horizon barriers, with deterministic boundary-event
//!   merging (see the `shard` module docs for the lookahead argument).
//!
//! # Determinism
//!
//! The engine is strictly deterministic: events scheduled for the same
//! virtual time are delivered in the order they were scheduled (a
//! monotonically increasing sequence number breaks ties). There is no
//! threading; given the same inputs, a simulation always produces the same
//! outputs. This mirrors the reproducibility requirement of the paper's
//! evaluation (every figure is regenerated from a seed).
//!
//! # Example
//!
//! ```rust
//! use triosim_des::{EventQueue, TimeSpan, VirtualTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule(VirtualTime::from_seconds(1.0), Ev::Pong);
//! q.schedule(VirtualTime::from_seconds(0.5), Ev::Ping);
//!
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::Ping);
//! assert_eq!(t, VirtualTime::from_seconds(0.5));
//! assert_eq!(q.now(), t);
//!
//! // Relative scheduling uses the current virtual time.
//! q.schedule_in(TimeSpan::from_seconds(0.1), Ev::Ping);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The DES loop underpins the sweep engine's crash-safety contract:
// production code here must degrade through typed errors, never unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod budget;
mod engine;
mod queue;
mod shard;
mod stats;
mod ticker;
mod time;

pub use budget::{BudgetKind, BudgetProgress, RunBudget};
pub use engine::{Engine, EngineCtx, EngineError, Handler, HandlerId, HandlerStats};
pub use queue::{EventId, EventQueue};
pub use shard::{run_sharded, ShardCtx, ShardHandler, ShardOutcome, ShardSeed};
pub use stats::QueueStats;
pub use ticker::{tick_while, Ticker};
pub use time::{TimeSpan, VirtualTime};
