//! Per-run execution budgets: the runaway guards of the crash-safe
//! sweep layer.
//!
//! A single mis-specified scenario (a typo'd batch size that explodes the
//! task graph, a fault plan that strands a flow) must not be able to pin
//! a sweep worker forever. [`RunBudget`] caps a run along three axes:
//!
//! * **events** — delivered simulation events, the purest measure of
//!   work done;
//! * **simulated time** — virtual time reached, for workloads whose
//!   event count is fine but whose clock runs away;
//! * **wall clock** — a host-time deadline, the guard of last resort.
//!
//! The first two are deterministic: the same inputs trip them at exactly
//! the same event. The wall-clock deadline is inherently **not**
//! deterministic — it depends on host speed and load — which is why
//! callers that promise byte-identical output (the sweep's canonical
//! aggregate) must keep the wall-clock limit out of any canonical
//! serialization. To keep the guard cheap, the host clock is probed only
//! once every [`RunBudget::WALL_CHECK_PERIOD`] events; the event-count
//! and sim-time comparisons are two branch-predictable integer compares
//! per event.
//!
//! An unlimited budget ([`RunBudget::unlimited`], also the `Default`)
//! never trips and costs one `Option` discriminant test per event at the
//! enforcement site, so budget-free runs stay on their exact pre-budget
//! code path.

use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::time::VirtualTime;

/// Which budget axis a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// More events were delivered than `max_events` allows.
    Events,
    /// Virtual time passed the `max_sim_time_us` horizon.
    SimTime,
    /// The host clock passed the `wall_timeout_ms` deadline.
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "events",
            BudgetKind::SimTime => "sim_time",
            BudgetKind::WallClock => "wall_clock",
        })
    }
}

/// A per-run execution budget; see the [module docs](self) for the
/// three axes and their determinism guarantees.
///
/// The wall-clock deadline is armed when
/// [`with_wall_timeout_ms`](RunBudget::with_wall_timeout_ms) is called,
/// so construct the budget when the run it guards actually starts.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    max_events: Option<u64>,
    /// Limit plus the original microsecond figure for error reporting.
    max_sim_time: Option<(VirtualTime, u64)>,
    /// Deadline plus the original millisecond figure for error reporting.
    deadline: Option<(Instant, u64)>,
}

impl RunBudget {
    /// The host clock is probed once every this many events (must be a
    /// power of two; the check uses a mask).
    pub const WALL_CHECK_PERIOD: u64 = 256;

    /// A budget with no limits: [`check`](RunBudget::check) never trips.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Caps the number of delivered events.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Caps virtual time at `us` microseconds.
    pub fn with_max_sim_time_us(mut self, us: u64) -> Self {
        self.max_sim_time = Some((VirtualTime::from_micros(us as f64), us));
        self
    }

    /// Arms a wall-clock deadline `ms` milliseconds from **now** (the
    /// moment this method is called).
    pub fn with_wall_timeout_ms(mut self, ms: u64) -> Self {
        self.deadline = Some((Instant::now() + Duration::from_millis(ms), ms));
        self
    }

    /// True when no axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_sim_time.is_none() && self.deadline.is_none()
    }

    /// True when an event-count or sim-time limit (a deterministic axis)
    /// is set.
    pub fn has_deterministic_axes(&self) -> bool {
        self.max_events.is_some() || self.max_sim_time.is_some()
    }

    /// True when a wall-clock deadline is armed.
    pub fn has_wall_deadline(&self) -> bool {
        self.deadline.is_some()
    }

    /// This budget with the wall-clock axis removed: only the
    /// deterministic (event-count and sim-time) limits remain.
    ///
    /// Sharded runs use this to *replay* budget enforcement after the
    /// fact: each shard records the virtual times of the real events it
    /// delivered, and the merge walks them in canonical order through
    /// this budget's [`check`](RunBudget::check) — tripping on exactly
    /// the same event, with the same kind and limit, as the serial run.
    /// The wall axis must be excluded because it is host-dependent by
    /// design (and its `Instant` deadline belongs to the live run).
    pub fn deterministic_only(&self) -> RunBudget {
        RunBudget {
            max_events: self.max_events,
            max_sim_time: self.max_sim_time,
            deadline: None,
        }
    }

    /// This budget with the deterministic axes removed: only the live
    /// wall-clock deadline remains. The complement of
    /// [`deterministic_only`](RunBudget::deterministic_only) — sharded
    /// workers carry this so a runaway still hits the host deadline while
    /// the deterministic axes are enforced by replay.
    pub fn wall_only(&self) -> RunBudget {
        RunBudget {
            max_events: None,
            max_sim_time: None,
            deadline: self.deadline,
        }
    }

    /// A stable fingerprint of the deterministic axes (event cap and
    /// sim-time horizon), FNV-1a over their configured limits.
    ///
    /// Checkpoint specs fold this in so a snapshot taken under one budget
    /// is never restored under a different deterministic budget — the
    /// resumed run would trip (or fail to trip) at a different event than
    /// the uninterrupted oracle. The wall-clock deadline is deliberately
    /// excluded: it is host-dependent by design and is re-armed on
    /// restore.
    pub fn deterministic_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.max_events.map_or(0, |m| 1 + m));
        fold(self.max_sim_time.map_or(0, |(_, us)| 1 + us));
        h
    }

    /// Checks the budget against the run's progress: `events` delivered
    /// so far and virtual time `now`. Returns the tripped axis and its
    /// configured limit (events, µs, or ms respectively), or `None` while
    /// the run is within budget.
    ///
    /// The event that *would* exceed the budget trips the check — so with
    /// `max_events = N`, exactly `N` events are processed. The wall clock
    /// is probed only when `events % WALL_CHECK_PERIOD == 1` (including
    /// the very first event), keeping the common path free of syscalls.
    #[inline]
    pub fn check(&self, events: u64, now: VirtualTime) -> Option<(BudgetKind, u64)> {
        if let Some(max) = self.max_events {
            if events > max {
                return Some((BudgetKind::Events, max));
            }
        }
        if let Some((limit, us)) = self.max_sim_time {
            if now > limit {
                return Some((BudgetKind::SimTime, us));
            }
        }
        if let Some((deadline, ms)) = self.deadline {
            if events & (Self::WALL_CHECK_PERIOD - 1) == 1 && Instant::now() > deadline {
                return Some((BudgetKind::WallClock, ms));
            }
        }
        None
    }
}

/// Serializable progress along a [`RunBudget`]'s deterministic axes.
///
/// The event counter is the only budget state a resumed run needs:
/// sim-time enforcement reads the restored clock directly, and the
/// wall-clock deadline is re-armed fresh on restore (an `Instant` is
/// meaningless across processes). Checkpoints embed this so the resumed
/// run's [`check`](RunBudget::check) calls continue from the exact event
/// count the interrupted run reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BudgetProgress {
    /// Real (budget-counted) events delivered so far.
    pub events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check(u64::MAX, VirtualTime::MAX).is_none());
    }

    #[test]
    fn event_budget_trips_past_the_limit() {
        let b = RunBudget::unlimited().with_max_events(10);
        assert!(!b.is_unlimited());
        assert!(b.check(10, VirtualTime::ZERO).is_none(), "at the limit");
        assert_eq!(
            b.check(11, VirtualTime::ZERO),
            Some((BudgetKind::Events, 10))
        );
    }

    #[test]
    fn sim_time_budget_trips_past_the_horizon() {
        let b = RunBudget::unlimited().with_max_sim_time_us(5);
        let at = |us: f64| VirtualTime::from_micros(us);
        assert!(b.check(1, at(5.0)).is_none(), "at the horizon");
        assert_eq!(b.check(1, at(5.1)), Some((BudgetKind::SimTime, 5)));
    }

    #[test]
    fn wall_clock_is_probed_sparsely() {
        // A deadline armed in the past trips, but only on probe events.
        let b = RunBudget::unlimited().with_wall_timeout_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.check(2, VirtualTime::ZERO).is_none(), "not a probe event");
        assert_eq!(
            b.check(1, VirtualTime::ZERO),
            Some((BudgetKind::WallClock, 0)),
            "first event is a probe"
        );
        assert_eq!(
            b.check(RunBudget::WALL_CHECK_PERIOD + 1, VirtualTime::ZERO),
            Some((BudgetKind::WallClock, 0)),
            "every WALL_CHECK_PERIOD-th event probes"
        );
    }

    #[test]
    fn axes_report_in_fixed_order() {
        // When several axes are exceeded at once the event axis wins,
        // then sim time — deterministic axes before the wall clock.
        let b = RunBudget::unlimited()
            .with_max_events(1)
            .with_max_sim_time_us(1)
            .with_wall_timeout_ms(0);
        assert_eq!(
            b.check(5, VirtualTime::from_micros(9.0)),
            Some((BudgetKind::Events, 1))
        );
    }

    #[test]
    fn axis_splits_partition_the_budget() {
        let b = RunBudget::unlimited()
            .with_max_events(7)
            .with_max_sim_time_us(3)
            .with_wall_timeout_ms(60_000);
        assert!(b.has_deterministic_axes());
        assert!(b.has_wall_deadline());
        let det = b.deterministic_only();
        assert!(det.has_deterministic_axes() && !det.has_wall_deadline());
        assert_eq!(
            det.check(8, VirtualTime::ZERO),
            Some((BudgetKind::Events, 7))
        );
        let wall = b.wall_only();
        assert!(!wall.has_deterministic_axes() && wall.has_wall_deadline());
        assert!(wall.check(u64::MAX, VirtualTime::MAX).is_none());
        assert!(RunBudget::unlimited().deterministic_only().is_unlimited());
        assert!(RunBudget::unlimited().wall_only().is_unlimited());
    }

    #[test]
    fn kind_displays_are_stable() {
        assert_eq!(BudgetKind::Events.to_string(), "events");
        assert_eq!(BudgetKind::SimTime.to_string(), "sim_time");
        assert_eq!(BudgetKind::WallClock.to_string(), "wall_clock");
    }
}
