//! Virtual time and duration types.
//!
//! Virtual time is kept as an integer number of femtoseconds so that the
//! event queue's ordering never suffers from floating-point drift. One
//! femtosecond of resolution is fine-grained enough that even a 1000 GB/s
//! link transferring a single byte advances time by a representable amount,
//! while `u64` still covers simulations of more than five virtual hours —
//! orders of magnitude beyond the multi-second training iterations TrioSim
//! targets.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Femtoseconds per second.
const FS_PER_SEC: f64 = 1e15;

/// An instant in simulated (virtual) time.
///
/// `VirtualTime` is an absolute point on the simulation clock, measured in
/// femtoseconds since the start of the simulation. Use [`TimeSpan`] for
/// durations; the arithmetic between the two types is closed in the usual
/// affine way (`VirtualTime - VirtualTime = TimeSpan`,
/// `VirtualTime + TimeSpan = VirtualTime`).
///
/// # Example
///
/// ```rust
/// use triosim_des::{TimeSpan, VirtualTime};
///
/// let t0 = VirtualTime::ZERO;
/// let t1 = t0 + TimeSpan::from_micros(3.0);
/// assert_eq!(t1 - t0, TimeSpan::from_micros(3.0));
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The start of the simulation.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The greatest representable instant; useful as an "infinity" sentinel
    /// when searching for the earliest of several candidate times.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates an instant from raw femtoseconds.
    pub const fn from_femtos(fs: u64) -> Self {
        VirtualTime(fs)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_seconds(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "virtual time must be finite and non-negative, got {secs}"
        );
        VirtualTime((secs * FS_PER_SEC).round() as u64)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_seconds(ms * 1e-3)
    }

    /// Creates an instant `us` microseconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        Self::from_seconds(us * 1e-6)
    }

    /// Raw femtoseconds since simulation start.
    pub const fn as_femtos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy above ~2^53 fs, i.e. ~9 s of
    /// femtosecond-exact range; fine for reporting).
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 / FS_PER_SEC
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> f64 {
        self.as_seconds() * 1e3
    }

    /// The later of two instants.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: Self) -> TimeSpan {
        TimeSpan(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_seconds();
        if s >= 1.0 {
            write!(f, "{s:.6}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

/// A length of simulated time (a duration on the virtual clock).
///
/// # Example
///
/// ```rust
/// use triosim_des::TimeSpan;
///
/// let transfer = TimeSpan::from_seconds(0.25);
/// let doubled = transfer * 2.0;
/// assert_eq!(doubled.as_seconds(), 0.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeSpan(u64);

impl TimeSpan {
    /// The zero-length span.
    pub const ZERO: TimeSpan = TimeSpan(0);

    /// Creates a span from raw femtoseconds.
    pub const fn from_femtos(fs: u64) -> Self {
        TimeSpan(fs)
    }

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_seconds(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time span must be finite and non-negative, got {secs}"
        );
        TimeSpan((secs * FS_PER_SEC).round() as u64)
    }

    /// Creates a span of `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_seconds(ms * 1e-3)
    }

    /// Creates a span of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        Self::from_seconds(us * 1e-6)
    }

    /// Creates a span of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_seconds(ns * 1e-9)
    }

    /// Raw femtoseconds.
    pub const fn as_femtos(self) -> u64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 / FS_PER_SEC
    }

    /// The span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.as_seconds() * 1e3
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        VirtualTime(self.0).fmt(f)
    }
}

impl Add<TimeSpan> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, rhs: TimeSpan) -> VirtualTime {
        VirtualTime(
            self.0
                .checked_add(rhs.0)
                .expect("virtual time overflow: simulation ran past the representable horizon"),
        )
    }
}

impl AddAssign<TimeSpan> for VirtualTime {
    fn add_assign(&mut self, rhs: TimeSpan) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = TimeSpan;

    fn sub(self, rhs: VirtualTime) -> TimeSpan {
        TimeSpan(
            self.0
                .checked_sub(rhs.0)
                .expect("attempted to compute a negative time span"),
        )
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;

    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.checked_add(rhs.0).expect("time span overflow"))
    }
}

impl AddAssign for TimeSpan {
    fn add_assign(&mut self, rhs: TimeSpan) {
        *self = *self + rhs;
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;

    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(
            self.0
                .checked_sub(rhs.0)
                .expect("attempted to compute a negative time span"),
        )
    }
}

impl SubAssign for TimeSpan {
    fn sub_assign(&mut self, rhs: TimeSpan) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for TimeSpan {
    type Output = TimeSpan;

    fn mul(self, rhs: f64) -> TimeSpan {
        assert!(
            rhs.is_finite() && rhs >= 0.0,
            "time span scale factor must be finite and non-negative"
        );
        TimeSpan((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<f64> for TimeSpan {
    type Output = TimeSpan;

    fn div(self, rhs: f64) -> TimeSpan {
        assert!(
            rhs.is_finite() && rhs > 0.0,
            "time span divisor must be finite and positive"
        );
        TimeSpan((self.0 as f64 / rhs).round() as u64)
    }
}

impl Sum for TimeSpan {
    fn sum<I: Iterator<Item = TimeSpan>>(iter: I) -> TimeSpan {
        iter.fold(TimeSpan::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = VirtualTime::from_seconds(1.5);
        assert!((t.as_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn affine_arithmetic() {
        let t0 = VirtualTime::from_seconds(1.0);
        let dt = TimeSpan::from_seconds(0.5);
        let t1 = t0 + dt;
        assert_eq!(t1 - t0, dt);
        assert_eq!(t0.saturating_since(t1), TimeSpan::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = VirtualTime::from_millis(1.0);
        let b = VirtualTime::from_millis(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn span_scaling() {
        let d = TimeSpan::from_seconds(2.0);
        assert_eq!((d * 0.5).as_seconds(), 1.0);
        assert_eq!((d / 4.0).as_seconds(), 0.5);
    }

    #[test]
    fn span_sum() {
        let total: TimeSpan = (1..=4).map(|i| TimeSpan::from_seconds(i as f64)).sum();
        assert_eq!(total, TimeSpan::from_seconds(10.0));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_seconds_rejected() {
        let _ = VirtualTime::from_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative time span")]
    fn negative_span_rejected() {
        let a = VirtualTime::from_seconds(1.0);
        let b = VirtualTime::from_seconds(2.0);
        let _ = a - b;
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", VirtualTime::from_seconds(2.0)), "2.000000s");
        assert_eq!(format!("{}", VirtualTime::from_millis(2.0)), "2.000ms");
        assert_eq!(format!("{}", VirtualTime::from_micros(2.0)), "2.000us");
    }

    #[test]
    fn millis_and_micros_constructors_agree() {
        assert_eq!(
            VirtualTime::from_millis(1.0),
            VirtualTime::from_micros(1000.0)
        );
        assert_eq!(TimeSpan::from_millis(1.0), TimeSpan::from_micros(1000.0));
        assert_eq!(TimeSpan::from_micros(1.0), TimeSpan::from_nanos(1000.0));
    }
}
