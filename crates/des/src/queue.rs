//! The core event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::fmt;

use crate::stats::QueueStats;
use crate::time::{TimeSpan, VirtualTime};

/// A handle to a scheduled event, usable for cancellation.
///
/// Returned by [`EventQueue::schedule`] and friends. Each id is unique for
/// the lifetime of the queue that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (and, within a
        // time, the first-scheduled) event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// The queue is the heart of the simulation engine: it holds all pending
/// events and advances the virtual clock as they are popped. Events at the
/// same instant are delivered in FIFO scheduling order, making simulations
/// fully reproducible.
///
/// Cancellation is *lazy*: [`cancel`](EventQueue::cancel) marks the id and
/// the event is silently dropped when its heap entry surfaces. This is the
/// standard technique for flow-network models that must reschedule delivery
/// events whenever bandwidth allocations change (see the `triosim-network`
/// crate).
///
/// # Example
///
/// ```rust
/// use triosim_des::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// let keep = q.schedule(VirtualTime::from_seconds(1.0), "keep");
/// let drop = q.schedule(VirtualTime::from_seconds(0.5), "drop");
/// q.cancel(drop);
///
/// assert_eq!(q.pop(), Some((VirtualTime::from_seconds(1.0), "keep")));
/// assert_eq!(q.pop(), None);
/// # let _ = keep;
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    now: VirtualTime,
    next_seq: u64,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`VirtualTime::ZERO`].
    pub fn new() -> Self {
        Self::starting_at(VirtualTime::ZERO)
    }

    /// Creates an empty queue with the clock already advanced to `origin`.
    ///
    /// Sharded execution uses this to replay a partition of a longer run
    /// in its own queue: events before `origin` belong to other shards, so
    /// scheduling anything earlier is rejected exactly as if the queue had
    /// ticked its way there.
    pub fn starting_at(origin: VirtualTime) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            now: origin,
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// [`starting_at`](Self::starting_at) with the cumulative statistics
    /// counters pre-seeded.
    ///
    /// Checkpoint restore uses this to resume a run at a quiescent
    /// boundary: a fresh queue advanced to the boundary time whose
    /// counters continue from the interrupted run's, so the final
    /// [`QueueStats`] match an uninterrupted run exactly (all counters
    /// are additive; `max_pending` is a running maximum).
    pub fn starting_at_with_stats(origin: VirtualTime, stats: QueueStats) -> Self {
        let mut q = Self::starting_at(origin);
        q.stats = stats;
        q
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Schedules `event` at absolute time `time` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](EventQueue::now) — the
    /// simulation cannot rewrite its past.
    pub fn schedule(&mut self, time: VirtualTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Scheduled { time, seq, event });
        self.stats.record_scheduled(self.heap.len());
        EventId(seq)
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_in(&mut self, delay: TimeSpan, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the current instant. It will be delivered after
    /// every event already scheduled for this instant (FIFO order).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule(self.now, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the id was still pending (it will now never be
    /// delivered), `false` if it had already been delivered or cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.stats.record_cancelled();
        if self.cancelled.len() >= Self::COMPACT_MIN_CANCELLED
            && self.cancelled.len() * 2 > self.heap.len()
        {
            self.compact();
        }
        true
    }

    /// Don't bother compacting tiny queues: the rebuild costs more than
    /// lazily skipping a handful of entries.
    const COMPACT_MIN_CANCELLED: usize = 64;

    /// Rebuilds the heap without its lazily-cancelled entries. Every
    /// cancelled id is by construction still in the heap (ids leave
    /// `cancelled` only when their entry surfaces), so the set drains to
    /// empty and memory stops growing O(cancellations) between pops.
    fn compact(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|s| !self.cancelled.remove(&s.seq))
            .collect();
        debug_assert!(self.cancelled.is_empty(), "compaction must drain cancelled");
        self.stats.record_compaction();
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        while let Some(Scheduled { time, seq, event }) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.pending.remove(&seq);
            debug_assert!(time >= self.now, "event queue produced out-of-order event");
            self.now = time;
            self.stats.record_delivered();
            return Some((time, event));
        }
        None
    }

    /// The timestamp of the earliest pending (non-cancelled) event without
    /// popping it.
    pub fn peek_time(&mut self) -> Option<VirtualTime> {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(head.time);
        }
        None
    }

    /// Number of pending (scheduled, neither delivered nor cancelled)
    /// events.
    // An accurate emptiness check must skip lazily-cancelled events, so
    // `is_empty` takes `&mut self` and cannot match clippy's expected pair.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no event remains to be delivered.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Cumulative scheduling statistics (for monitoring, akin to AkitaRTM's
    /// live counters).
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::from_seconds(3.0), 3);
        q.schedule(VirtualTime::from_seconds(1.0), 1);
        q.schedule(VirtualTime::from_seconds(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_seconds(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::from_seconds(5.0), ());
        assert_eq!(q.now(), VirtualTime::ZERO);
        q.pop();
        assert_eq!(q.now(), VirtualTime::from_seconds(5.0));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), "a");
        q.schedule(VirtualTime::from_seconds(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancel_after_delivery_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::from_seconds(1.0), "first");
        q.pop();
        q.schedule_in(TimeSpan::from_seconds(0.5), "second");
        assert_eq!(q.pop().unwrap().0, VirtualTime::from_seconds(1.5));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::ZERO, "a");
        q.schedule_now("b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::from_seconds(2.0), ());
        q.pop();
        q.schedule(VirtualTime::from_seconds(1.0), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), "a");
        q.schedule(VirtualTime::from_seconds(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(VirtualTime::from_seconds(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn is_empty_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), ());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_evicts_cancelled_entries_and_preserves_order() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..200)
            .map(|i| q.schedule(VirtualTime::from_seconds(i as f64), i))
            .collect();
        // Cancel 150 of 200: crosses both the minimum-size and the
        // half-the-heap thresholds, forcing at least one rebuild.
        for id in &ids[0..150] {
            q.cancel(*id);
        }
        assert!(q.stats().compactions() >= 1);
        assert_eq!(q.len(), 50);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (150..200).collect::<Vec<_>>());
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), ());
        q.schedule(VirtualTime::from_seconds(2.0), ());
        q.cancel(a);
        assert_eq!(q.stats().compactions(), 0);
    }

    #[test]
    fn starting_at_sets_the_clock_and_rejects_the_past() {
        let mut q = EventQueue::starting_at(VirtualTime::from_seconds(10.0));
        assert_eq!(q.now(), VirtualTime::from_seconds(10.0));
        q.schedule(VirtualTime::from_seconds(11.0), "ok");
        assert_eq!(q.pop().unwrap().0, VirtualTime::from_seconds(11.0));
        let past = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(VirtualTime::from_seconds(9.0), "past");
        }));
        assert!(past.is_err(), "scheduling before the origin must panic");
    }

    #[test]
    fn stats_count_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(VirtualTime::from_seconds(1.0), ());
        q.schedule(VirtualTime::from_seconds(2.0), ());
        q.cancel(a);
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled(), 2);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.cancelled(), 1);
        assert!(s.max_pending() >= 2);
    }
}
