//! Akita-style component/handler dispatch layer.
//!
//! The original TrioSim is built on the Akita Simulator Engine, where each
//! simulator component registers as an event handler and events carry the
//! identity of the handler that must process them. [`Engine`] reproduces
//! that structure on top of [`EventQueue`]: components implement
//! [`Handler`], register to obtain a [`HandlerId`], and schedule payloads
//! addressed to any handler (including themselves) through the
//! [`EngineCtx`] passed into their `handle` method.
//!
//! Most of `triosim` uses the lower-level [`EventQueue`] directly (a single
//! simulator struct with an event `enum` is simpler and faster), but the
//! engine layer is exercised by the network case studies, where swapping a
//! network model in and out as a component mirrors the paper's "only
//! implement Send and Deliver" extension story.

use std::any::Any;
use std::fmt;
use std::time::Instant;

use crate::budget::{BudgetKind, RunBudget};
use crate::queue::EventQueue;
use crate::time::{TimeSpan, VirtualTime};

/// Identifies a registered [`Handler`] within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(usize);

/// Error raised by [`Engine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An event was addressed to a handler id that was never registered.
    UnknownHandler(HandlerId),
    /// Delivering the next event would exceed the engine's [`RunBudget`]
    /// (see [`Engine::set_budget`]); the event stays queued.
    BudgetExceeded {
        /// The budget axis that tripped.
        kind: BudgetKind,
        /// The configured limit on that axis (events, µs, or ms).
        limit: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownHandler(id) => {
                write!(f, "event addressed to unregistered handler {id:?}")
            }
            EngineError::BudgetExceeded { kind, limit } => {
                write!(f, "run budget exceeded: {kind} limit {limit}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Scheduling facade passed to handlers while they run.
///
/// A handler cannot hold `&mut Engine` (the engine holds `&mut` to the
/// handler itself), so scheduling during dispatch goes through this
/// context, which owns the event queue for the duration of the call.
pub struct EngineCtx<'a> {
    queue: &'a mut EventQueue<Envelope>,
}

impl fmt::Debug for EngineCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineCtx")
            .field("now", &self.now())
            .finish()
    }
}

impl EngineCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.queue.now()
    }

    /// Schedules `payload` for handler `to` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (see [`EventQueue::schedule`]).
    pub fn schedule(&mut self, to: HandlerId, time: VirtualTime, payload: Box<dyn Any>) {
        self.queue.schedule(time, Envelope { to, payload });
    }

    /// Schedules `payload` for handler `to` after `delay`.
    pub fn schedule_in(&mut self, to: HandlerId, delay: TimeSpan, payload: Box<dyn Any>) {
        self.queue.schedule_in(delay, Envelope { to, payload });
    }
}

/// A simulation component that reacts to events.
///
/// The `Any` supertrait lets [`Engine::handler`] hand components back to
/// the caller after a run (e.g. to read out accumulated results).
pub trait Handler: Any {
    /// Processes one event payload at the current virtual time.
    ///
    /// Any follow-up events are scheduled through `ctx`.
    fn handle(&mut self, ctx: &mut EngineCtx<'_>, payload: Box<dyn Any>);
}

struct Envelope {
    to: HandlerId,
    payload: Box<dyn Any>,
}

/// Per-handler dispatch accounting — the engine-level slice of the
/// AkitaRTM-style monitoring story.
///
/// Dispatch counts are always maintained (one integer increment per
/// event). Wall-clock attribution is opt-in via
/// [`Engine::set_profiling`], because reading the host clock per event
/// is not free and wall-clock values are inherently non-deterministic;
/// they belong only in clearly-marked profile output, never in
/// deterministic artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerStats {
    /// The handler's registered name (defaults to its type name).
    pub name: String,
    /// Events dispatched to this handler.
    pub dispatches: u64,
    /// Wall-clock seconds spent inside this handler's `handle` calls.
    /// Zero unless profiling is enabled.
    pub busy_s: f64,
}

/// A component-oriented event-driven simulation engine.
///
/// # Example
///
/// ```rust
/// use std::any::Any;
/// use triosim_des::{Engine, EngineCtx, Handler, TimeSpan, VirtualTime};
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl Handler for Counter {
///     fn handle(&mut self, _ctx: &mut EngineCtx<'_>, _payload: Box<dyn Any>) {
///         self.fired += 1;
///     }
/// }
///
/// let mut engine = Engine::new();
/// let id = engine.register(Counter { fired: 0 });
/// engine.schedule(id, VirtualTime::from_seconds(1.0), Box::new("tick"));
/// engine.run().unwrap();
///
/// let counter: &Counter = engine.handler(id).unwrap();
/// assert_eq!(counter.fired, 1);
/// ```
pub struct Engine {
    queue: EventQueue<Envelope>,
    handlers: Vec<Option<Box<dyn Handler>>>,
    stats: Vec<HandlerStats>,
    profiling: bool,
    budget: Option<RunBudget>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with no handlers and an empty queue.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            handlers: Vec::new(),
            stats: Vec::new(),
            profiling: false,
            budget: None,
        }
    }

    /// Installs a [`RunBudget`] enforced before every dispatch; an
    /// unlimited budget is dropped so the hot loop keeps its single
    /// `Option` test. Event-count and sim-time limits trip
    /// deterministically; the wall-clock deadline is probed sparsely (see
    /// [`RunBudget::check`]) and is inherently host-dependent.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = (!budget.is_unlimited()).then_some(budget);
    }

    /// Registers a component and returns its id. The handler's stats
    /// entry is named after its type; use
    /// [`register_named`](Engine::register_named) for explicit names.
    pub fn register<H: Handler + 'static>(&mut self, handler: H) -> HandlerId {
        let full = std::any::type_name::<H>();
        let short = full.rsplit("::").next().unwrap_or(full).to_string();
        self.register_named(short, handler)
    }

    /// Registers a component under an explicit stats name.
    pub fn register_named<H: Handler + 'static>(
        &mut self,
        name: impl Into<String>,
        handler: H,
    ) -> HandlerId {
        let id = HandlerId(self.handlers.len());
        self.handlers.push(Some(Box::new(handler)));
        self.stats.push(HandlerStats {
            name: name.into(),
            dispatches: 0,
            busy_s: 0.0,
        });
        id
    }

    /// Enables or disables wall-clock attribution per handler. Off by
    /// default: reading the host clock on every dispatch costs time, and
    /// the resulting values are non-deterministic (profile-only data).
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether wall-clock attribution is currently enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Dispatch accounting for every registered handler, indexed by
    /// [`HandlerId`] registration order.
    pub fn handler_stats(&self) -> &[HandlerStats] {
        &self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.queue.now()
    }

    /// Schedules `payload` for handler `to` at absolute `time`.
    pub fn schedule(&mut self, to: HandlerId, time: VirtualTime, payload: Box<dyn Any>) {
        self.queue.schedule(time, Envelope { to, payload });
    }

    /// Delivers the next event, if any. Returns `Ok(true)` if an event was
    /// processed, `Ok(false)` if the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownHandler`] if the event's addressee was
    /// never registered, and [`EngineError::BudgetExceeded`] when
    /// delivering the next event would exceed the installed budget (the
    /// event is left in the queue, not consumed).
    pub fn step(&mut self) -> Result<bool, EngineError> {
        if let Some(b) = &self.budget {
            if let Some(next_at) = self.queue.peek_time() {
                // `delivered() + 1` is the event about to be dispatched.
                let about_to_deliver = self.queue.stats().delivered() + 1;
                if let Some((kind, limit)) = b.check(about_to_deliver, next_at) {
                    return Err(EngineError::BudgetExceeded { kind, limit });
                }
            }
        }
        let Some((_, Envelope { to, payload })) = self.queue.pop() else {
            return Ok(false);
        };
        let slot = self
            .handlers
            .get_mut(to.0)
            .ok_or(EngineError::UnknownHandler(to))?;
        let mut handler = slot.take().ok_or(EngineError::UnknownHandler(to))?;
        self.stats[to.0].dispatches += 1;
        let started = self.profiling.then(Instant::now);
        handler.handle(
            &mut EngineCtx {
                queue: &mut self.queue,
            },
            payload,
        );
        if let Some(t0) = started {
            self.stats[to.0].busy_s += t0.elapsed().as_secs_f64();
        }
        self.handlers[to.0] = Some(handler);
        Ok(true)
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn run(&mut self) -> Result<(), EngineError> {
        while self.step()? {}
        Ok(())
    }

    /// Borrows a registered handler, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn handler<H: Handler>(&self, id: HandlerId) -> Option<&H> {
        let boxed = self.handlers.get(id.0)?.as_ref()?;
        let any: &dyn Any = boxed.as_ref();
        any.downcast_ref::<H>()
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.queue.now())
            .field("handlers", &self.handlers.len())
            .field("queue", &self.queue)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        seen: Vec<String>,
        forward_to: Option<HandlerId>,
    }

    impl Handler for Echo {
        fn handle(&mut self, ctx: &mut EngineCtx<'_>, payload: Box<dyn Any>) {
            let msg = payload.downcast::<String>().expect("string payload");
            self.seen.push(*msg.clone());
            if let Some(next) = self.forward_to {
                ctx.schedule_in(next, TimeSpan::from_seconds(1.0), msg);
            }
        }
    }

    #[test]
    fn unknown_handler_is_an_error() {
        let mut engine = Engine::new();
        engine.schedule(HandlerId(7), VirtualTime::from_seconds(1.0), Box::new(()));
        assert_eq!(engine.run(), Err(EngineError::UnknownHandler(HandlerId(7))));
    }

    #[test]
    fn events_flow_between_handlers() {
        let mut engine = Engine::new();
        let sink = engine.register(Echo {
            seen: vec![],
            forward_to: None,
        });
        let relay = engine.register(Echo {
            seen: vec![],
            forward_to: Some(sink),
        });
        engine.schedule(
            relay,
            VirtualTime::from_seconds(1.0),
            Box::new("hello".to_string()),
        );
        engine.run().unwrap();
        assert_eq!(engine.now(), VirtualTime::from_seconds(2.0));
    }

    #[test]
    fn step_reports_queue_exhaustion() {
        let mut engine = Engine::new();
        assert_eq!(engine.step(), Ok(false));
    }

    #[test]
    fn error_display_is_meaningful() {
        let err = EngineError::UnknownHandler(HandlerId(3));
        assert!(err.to_string().contains("unregistered handler"));
        let err = EngineError::BudgetExceeded {
            kind: BudgetKind::Events,
            limit: 64,
        };
        assert_eq!(err.to_string(), "run budget exceeded: events limit 64");
    }

    #[test]
    fn event_budget_stops_the_run_without_consuming_the_event() {
        let mut engine = Engine::new();
        let id = engine.register(Echo {
            seen: vec![],
            forward_to: None,
        });
        for i in 0..5 {
            engine.schedule(
                id,
                VirtualTime::from_seconds(1.0 + i as f64),
                Box::new(format!("m{i}")),
            );
        }
        engine.set_budget(RunBudget::unlimited().with_max_events(3));
        assert_eq!(
            engine.run(),
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Events,
                limit: 3
            })
        );
        // Exactly the budgeted number of events dispatched; virtual time
        // stands at the last delivered event, not the rejected one.
        assert_eq!(engine.handler_stats()[id.0].dispatches, 3);
        assert_eq!(engine.now(), VirtualTime::from_seconds(3.0));
    }

    #[test]
    fn sim_time_budget_stops_before_crossing_the_horizon() {
        let mut engine = Engine::new();
        let id = engine.register(Echo {
            seen: vec![],
            forward_to: None,
        });
        engine.schedule(id, VirtualTime::from_micros(1.0), Box::new("a".to_string()));
        engine.schedule(id, VirtualTime::from_micros(9.0), Box::new("b".to_string()));
        engine.set_budget(RunBudget::unlimited().with_max_sim_time_us(5));
        assert_eq!(
            engine.run(),
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::SimTime,
                limit: 5
            })
        );
        assert_eq!(engine.handler_stats()[id.0].dispatches, 1);
    }

    #[test]
    fn unlimited_budget_is_dropped_entirely() {
        let mut engine = Engine::new();
        let id = engine.register(Echo {
            seen: vec![],
            forward_to: None,
        });
        engine.schedule(
            id,
            VirtualTime::from_seconds(1.0),
            Box::new("x".to_string()),
        );
        engine.set_budget(RunBudget::unlimited());
        assert_eq!(engine.run(), Ok(()));
        assert_eq!(engine.handler_stats()[id.0].dispatches, 1);
    }

    #[test]
    fn dispatch_counts_attribute_per_handler() {
        let mut engine = Engine::new();
        let sink = engine.register(Echo {
            seen: vec![],
            forward_to: None,
        });
        let relay = engine.register_named(
            "relay",
            Echo {
                seen: vec![],
                forward_to: Some(sink),
            },
        );
        for i in 0..3 {
            engine.schedule(
                relay,
                VirtualTime::from_seconds(1.0 + i as f64),
                Box::new(format!("m{i}")),
            );
        }
        engine.run().unwrap();
        let stats = engine.handler_stats();
        assert_eq!(stats[relay.0].name, "relay");
        assert_eq!(stats[sink.0].name, "Echo", "defaults to the type name");
        assert_eq!(stats[0].dispatches, 3, "sink got every forwarded event");
        assert_eq!(stats[1].dispatches, 3);
        assert_eq!(stats[0].busy_s, 0.0, "profiling is off by default");
    }

    #[test]
    fn profiling_attributes_wall_clock() {
        struct Sleeper;
        impl Handler for Sleeper {
            fn handle(&mut self, _: &mut EngineCtx<'_>, _: Box<dyn Any>) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let mut engine = Engine::new();
        let id = engine.register_named("sleeper", Sleeper);
        engine.set_profiling(true);
        assert!(engine.profiling());
        engine.schedule(id, VirtualTime::from_seconds(1.0), Box::new(()));
        engine.run().unwrap();
        let s = &engine.handler_stats()[0];
        assert_eq!(s.dispatches, 1);
        assert!(s.busy_s >= 1e-3, "wall-clock attributed: {}", s.busy_s);
    }
}
