//! Lightweight monitoring counters.
//!
//! The original TrioSim advertises real-time monitoring through AkitaRTM.
//! We keep the same spirit with a zero-cost counter block that every
//! [`EventQueue`](crate::EventQueue) maintains; higher layers (the
//! `triosim` crate's reporting module) surface these in their run summaries.

use serde::{Deserialize, Serialize};

/// Cumulative counters describing event-queue activity.
///
/// # Example
///
/// ```rust
/// use triosim_des::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(VirtualTime::from_seconds(1.0), ());
/// q.pop();
/// assert_eq!(q.stats().scheduled(), 1);
/// assert_eq!(q.stats().delivered(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    scheduled: u64,
    delivered: u64,
    cancelled: u64,
    max_pending: usize,
    compactions: u64,
}

impl QueueStats {
    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered by `pop`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total events cancelled before delivery.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// High-water mark of the pending-event count.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Times the heap was rebuilt to evict lazily-cancelled entries.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Folds another queue's counters into this one: totals add, the
    /// high-water mark takes the maximum.
    ///
    /// This is how sharded runs aggregate per-shard queue statistics into
    /// one report. When the shards partition a run whose serial queue
    /// fully drains at every partition boundary (so each shard's queue
    /// replays exactly the pending-depth profile the serial queue had in
    /// that span), the merged counters are identical to the serial run's.
    pub fn merge(&mut self, other: &QueueStats) {
        self.scheduled += other.scheduled;
        self.delivered += other.delivered;
        self.cancelled += other.cancelled;
        self.max_pending = self.max_pending.max(other.max_pending);
        self.compactions += other.compactions;
    }

    pub(crate) fn record_scheduled(&mut self, pending: usize) {
        self.scheduled += 1;
        if pending > self.max_pending {
            self.max_pending = pending;
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_cancelled(&mut self) {
        self.cancelled += 1;
    }

    pub(crate) fn record_compaction(&mut self) {
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_high_water() {
        let mut a = QueueStats {
            scheduled: 10,
            delivered: 8,
            cancelled: 2,
            max_pending: 5,
            compactions: 1,
        };
        let b = QueueStats {
            scheduled: 3,
            delivered: 3,
            cancelled: 0,
            max_pending: 9,
            compactions: 0,
        };
        a.merge(&b);
        assert_eq!(a.scheduled(), 13);
        assert_eq!(a.delivered(), 11);
        assert_eq!(a.cancelled(), 2);
        assert_eq!(a.max_pending(), 9);
        assert_eq!(a.compactions(), 1);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = QueueStats {
            scheduled: 7,
            delivered: 7,
            cancelled: 0,
            max_pending: 4,
            compactions: 2,
        };
        let before = a;
        a.merge(&QueueStats::default());
        assert_eq!(a, before);
    }
}
