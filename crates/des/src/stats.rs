//! Lightweight monitoring counters.
//!
//! The original TrioSim advertises real-time monitoring through AkitaRTM.
//! We keep the same spirit with a zero-cost counter block that every
//! [`EventQueue`](crate::EventQueue) maintains; higher layers (the
//! `triosim` crate's reporting module) surface these in their run summaries.

use serde::{Deserialize, Serialize};

/// Cumulative counters describing event-queue activity.
///
/// # Example
///
/// ```rust
/// use triosim_des::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(VirtualTime::from_seconds(1.0), ());
/// q.pop();
/// assert_eq!(q.stats().scheduled(), 1);
/// assert_eq!(q.stats().delivered(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    scheduled: u64,
    delivered: u64,
    cancelled: u64,
    max_pending: usize,
    compactions: u64,
}

impl QueueStats {
    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered by `pop`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total events cancelled before delivery.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// High-water mark of the pending-event count.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Times the heap was rebuilt to evict lazily-cancelled entries.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    pub(crate) fn record_scheduled(&mut self, pending: usize) {
        self.scheduled += 1;
        if pending > self.max_pending {
            self.max_pending = pending;
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_cancelled(&mut self) {
        self.cancelled += 1;
    }

    pub(crate) fn record_compaction(&mut self) {
        self.compactions += 1;
    }
}
