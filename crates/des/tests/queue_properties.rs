//! Property-based tests for the event queue's ordering guarantees.

use proptest::prelude::*;
use triosim_des::{EventQueue, VirtualTime};

proptest! {
    /// Events always come out sorted by time; equal times preserve
    /// scheduling order (stable FIFO).
    #[test]
    fn pops_are_totally_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VirtualTime::from_femtos(t), i);
        }
        let mut prev: Option<(VirtualTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((pt, pidx)) = prev {
                prop_assert!(t >= pt, "time went backwards");
                if t == pt {
                    prop_assert!(idx > pidx, "FIFO violated for simultaneous events");
                }
            }
            prev = Some((t, idx));
        }
    }

    /// Every scheduled event is delivered exactly once (no loss, no dup).
    #[test]
    fn conservation_of_events(times in prop::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VirtualTime::from_femtos(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, idx)) = q.pop() {
            prop_assert!(!seen[idx], "event delivered twice");
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "event lost");
    }

    /// Cancelled events are never delivered; everything else still is.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(VirtualTime::from_femtos(t), i))
            .collect();
        let mut cancelled = vec![false; times.len()];
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
                cancelled[i] = true;
            }
        }
        let mut delivered = vec![false; times.len()];
        while let Some((_, idx)) = q.pop() {
            delivered[idx] = true;
        }
        for i in 0..times.len() {
            prop_assert_eq!(delivered[i], !cancelled[i], "event {} wrong fate", i);
        }
    }

    /// `peek_time` always equals the time of the next `pop`.
    #[test]
    fn peek_agrees_with_pop(times in prop::collection::vec(0u64..1_000, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VirtualTime::from_femtos(t), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            prop_assert_eq!(peeked, popped);
        }
        prop_assert!(q.pop().is_none());
    }
}
