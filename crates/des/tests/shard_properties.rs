//! Properties of the conservative-lookahead sharded engine: serial
//! equivalence (the 1-shard run is the oracle), determinism, round-count
//! invariance across shard counts, and budget-trip determinism.

use triosim_des::{
    run_sharded, BudgetKind, RunBudget, ShardCtx, ShardHandler, ShardOutcome, TimeSpan, VirtualTime,
};

const ACTORS: usize = 8;

/// Link latency out of `actor`: distinct per actor, all at least the
/// lookahead bound (the minimum, 10 µs, out of actor 0).
fn latency(actor: usize) -> TimeSpan {
    TimeSpan::from_micros(10.0 + actor as f64)
}

fn lookahead() -> TimeSpan {
    TimeSpan::from_micros(10.0)
}

/// Contiguous block partition of the actor ring over `shards` shards.
fn shard_of(actor: usize, shards: usize) -> usize {
    let per = ACTORS.div_ceil(shards);
    (actor / per).min(shards - 1)
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Token {
    actor: usize,
    hops: u32,
}

/// One shard of the token ring: forwards tokens around the ring, logging
/// every arrival it owns.
struct RingShard {
    shards: usize,
    log: Vec<(usize, VirtualTime, u32)>,
}

impl ShardHandler for RingShard {
    type Event = Token;

    fn handle(&mut self, ctx: &mut ShardCtx<'_, Token>, now: VirtualTime, ev: Token) {
        self.log.push((ev.actor, now, ev.hops));
        if ev.hops == 0 {
            return;
        }
        let next = (ev.actor + 1) % ACTORS;
        ctx.send(
            shard_of(next, self.shards),
            now + latency(ev.actor),
            Token {
                actor: next,
                hops: ev.hops - 1,
            },
        );
    }
}

/// One `(actor, time, hops_left)` delivery record in the merged log.
type LogEntry = (usize, VirtualTime, u32);

/// Runs the ring on `shards` shards and returns the globally merged log
/// plus the outcome bookkeeping (rounds, events).
fn run_ring(
    shards: usize,
    hops: u32,
    budget: Option<RunBudget>,
) -> Result<(Vec<LogEntry>, u64, u64), (BudgetKind, u64)> {
    let mut setup = Vec::new();
    for s in 0..shards {
        let mut seeds = Vec::new();
        // Three tokens, seeded at staggered times on actors 0, 3, 5.
        for (actor, start_us) in [(0usize, 0.0), (3, 4.0), (5, 7.0)] {
            if shard_of(actor, shards) == s {
                seeds.push((VirtualTime::from_micros(start_us), Token { actor, hops }));
            }
        }
        seeds.sort_by_key(|(t, ev)| (*t, ev.actor));
        setup.push((
            RingShard {
                shards,
                log: Vec::new(),
            },
            seeds,
        ));
    }
    let ShardOutcome {
        handlers,
        rounds,
        events,
        queue_stats,
    } = run_sharded(setup, lookahead(), budget)?;
    assert_eq!(queue_stats.delivered(), events);
    let mut log: Vec<(usize, VirtualTime, u32)> =
        handlers.into_iter().flat_map(|h| h.log).collect();
    // Canonical order: (time, actor, hops). Arrival times in this ring
    // are unique per (actor, hop), so the sort is a total order.
    log.sort_by_key(|&(actor, t, hops)| (t, actor, hops));
    Ok((log, rounds, events))
}

#[test]
fn sharded_ring_matches_the_serial_oracle_at_every_shard_count() {
    let (oracle, oracle_rounds, oracle_events) = run_ring(1, 40, None).expect("no budget");
    assert_eq!(oracle.len(), 3 * 41, "three tokens, 40 hops each + seed");
    for shards in [2, 4, 8] {
        let (log, rounds, events) = run_ring(shards, 40, None).expect("no budget");
        assert_eq!(log, oracle, "event log diverged at {shards} shards");
        assert_eq!(events, oracle_events, "event count at {shards} shards");
        assert_eq!(
            rounds, oracle_rounds,
            "horizon rounds are a property of the global event set"
        );
    }
}

#[test]
fn sharded_runs_are_deterministic() {
    let a = run_ring(4, 25, None).expect("no budget");
    let b = run_ring(4, 25, None).expect("no budget");
    assert_eq!(a, b);
}

#[test]
fn budget_trips_identically_across_shard_counts() {
    let trip_at_1 = run_ring(1, 40, Some(RunBudget::unlimited().with_max_events(20)))
        .expect_err("20 events cannot carry three tokens 40 hops");
    assert_eq!(trip_at_1, (BudgetKind::Events, 20));
    for shards in [2, 4, 8] {
        let trip = run_ring(shards, 40, Some(RunBudget::unlimited().with_max_events(20)))
            .expect_err("budget must trip at every shard count");
        assert_eq!(trip, trip_at_1, "budget trip diverged at {shards} shards");
    }
}

#[test]
fn sim_time_budget_trips_identically_across_shard_counts() {
    let budget = || Some(RunBudget::unlimited().with_max_sim_time_us(60));
    let trip_at_1 = run_ring(1, 40, budget()).expect_err("60us cannot finish the ring");
    assert_eq!(trip_at_1, (BudgetKind::SimTime, 60));
    for shards in [2, 4, 8] {
        assert_eq!(run_ring(shards, 40, budget()), Err(trip_at_1));
    }
}

#[test]
fn generous_budget_changes_nothing() {
    let plain = run_ring(4, 15, None).expect("no budget");
    let budgeted = run_ring(
        4,
        15,
        Some(RunBudget::unlimited().with_max_events(u64::MAX)),
    )
    .expect("generous budget never trips");
    assert_eq!(plain, budgeted);
}

/// A handler that stamps a cross-shard event inside the lookahead window.
struct Cheater;

impl ShardHandler for Cheater {
    type Event = u32;

    fn handle(&mut self, ctx: &mut ShardCtx<'_, u32>, now: VirtualTime, _ev: u32) {
        ctx.send(1, now + TimeSpan::from_micros(1.0), 0);
    }
}

#[test]
#[should_panic(expected = "lookahead")]
fn violating_the_lookahead_contract_panics() {
    let _ = run_sharded(
        vec![
            (Cheater, vec![(VirtualTime::ZERO, 0u32)]),
            (Cheater, vec![]),
        ],
        TimeSpan::from_micros(10.0),
        None,
    );
}
