//! Property tests for the flow network's max-min fairness invariants.

use proptest::prelude::*;
use triosim_des::VirtualTime;
use triosim_network::{FlowId, FlowNetwork, LinkId, NetworkModel, NodeId, Topology};

/// Builds one of the standard topology families from a selector.
fn topology(kind: u8, n: usize) -> Topology {
    match kind % 3 {
        0 => Topology::ring(n.max(2), 1e9, 1e-6),
        1 => Topology::switch(n.max(2), 1e9, 1e-6),
        _ => Topology::chain(n.max(2), 1e9, 1e-6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any set of concurrent sends: (1) no link carries more than
    /// its capacity, (2) every flow gets a positive rate, and (3) every
    /// flow is bottlenecked — it crosses at least one saturated link
    /// (the defining property of max-min fairness).
    #[test]
    fn maxmin_invariants(
        kind in any::<u8>(),
        n in 3usize..10,
        pairs in prop::collection::vec((0usize..10, 0usize..10), 1..15),
    ) {
        let topo = topology(kind, n);
        let mut net = FlowNetwork::new(topo);
        let mut flows: Vec<FlowId> = Vec::new();
        for (a, b) in pairs {
            let (src, dst) = (NodeId(a % n), NodeId(b % n));
            if src == dst {
                continue;
            }
            let (f, _) = net.send(VirtualTime::ZERO, src, dst, 1 << 20);
            flows.push(f);
        }
        prop_assume!(!flows.is_empty());

        // Reconstruct per-link load from flow rates and routes.
        let mut link_load: std::collections::HashMap<LinkId, f64> = Default::default();
        for &f in &flows {
            let rate = net.flow_rate(f).expect("in flight");
            prop_assert!(rate > 0.0, "flow {f} starved");
            let (src, dst, _) = net.flow(f).expect("in flight");
            for l in net.topology().route(src, dst).unwrap() {
                *link_load.entry(l).or_insert(0.0) += rate;
            }
        }
        for (&l, &load) in &link_load {
            let cap = net.topology().bandwidth(l);
            prop_assert!(load <= cap * (1.0 + 1e-9), "link {l:?} oversubscribed: {load} > {cap}");
        }
        // Bottleneck property: every flow crosses >= 1 saturated link.
        for &f in &flows {
            let (src, dst, _) = net.flow(f).expect("in flight");
            let saturated = net
                .topology()
                .route(src, dst)
                .unwrap()
                .iter()
                .any(|l| {
                    let cap = net.topology().bandwidth(*l);
                    link_load.get(l).copied().unwrap_or(0.0) >= cap * (1.0 - 1e-6)
                });
            prop_assert!(saturated, "flow {f} is not bottlenecked anywhere");
        }
    }

    /// Delivery times are monotone in payload size for a lone flow.
    #[test]
    fn lone_flow_time_is_monotone(sizes in prop::collection::vec(1u64..1_000_000_000, 2..10)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let mut last = 0.0f64;
        for bytes in sorted {
            let topo = Topology::ring(4, 1e9, 1e-6);
            let mut net = FlowNetwork::new(topo);
            let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(2), bytes);
            let at = cmds
                .iter()
                .find_map(|c| match c {
                    triosim_network::NetCommand::Schedule { flow, at } if *flow == f => Some(*at),
                    _ => None,
                })
                .unwrap();
            prop_assert!(at.as_seconds() >= last);
            last = at.as_seconds();
        }
    }
}
