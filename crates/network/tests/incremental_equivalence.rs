//! Randomized equivalence between the incremental fast path and
//! from-scratch progressive filling.
//!
//! The incremental reallocator refills only the connected component of
//! links the triggering flow touches and re-arms only flows whose rate
//! changed. Progressive filling decomposes over components and both modes
//! run the same component-local arithmetic, so the two must agree *bit
//! for bit*: identical command streams, identical delivery sequences,
//! identical rates after every event. This test drives random topologies
//! and arrival scripts through both modes in lockstep and asserts exactly
//! that (independently of the `debug_assert` oracle inside the network,
//! which this also exercises in debug builds).

use std::collections::BTreeMap;

use proptest::prelude::*;
use triosim_des::VirtualTime;
use triosim_network::{
    FlowId, FlowNetwork, NetCommand, NetworkModel, NodeId, ReallocationMode, Topology,
};

/// Standard families plus a disconnected "islands" topology, which is
/// where component-scoped refills diverge from full refills if anything
/// is wrong with the scoping.
fn topology(kind: u8, n: usize) -> Topology {
    let n = n.max(4);
    match kind % 4 {
        0 => Topology::ring(n, 1e9, 1e-6),
        1 => Topology::switch(n, 1e9, 1e-6),
        2 => Topology::chain(n, 1e9, 1e-6),
        _ => {
            let mut t = Topology::new(n);
            for i in (0..n - 1).step_by(2) {
                t.add_duplex(NodeId(i), NodeId(i + 1), 1e9, 1e-6);
            }
            t
        }
    }
}

type Script = Vec<(VirtualTime, NodeId, NodeId, u64)>;

/// The observable history of a run: per-step command logs, the delivery
/// sequence, and the rate bits of all in-flight flows after each step.
type History = (
    Vec<Vec<NetCommand>>,
    Vec<(VirtualTime, FlowId)>,
    Vec<Vec<(FlowId, u64)>>,
);

/// Runs a send script, delivering every flow at exactly its armed time.
fn run_script(mode: ReallocationMode, topo: Topology, sends: &Script) -> History {
    let mut net = FlowNetwork::new(topo);
    net.set_reallocation_mode(mode);
    let mut armed: BTreeMap<FlowId, VirtualTime> = BTreeMap::new();
    let mut known: Vec<FlowId> = Vec::new();
    let mut log = Vec::new();
    let mut deliveries = Vec::new();
    let mut rates = Vec::new();
    let apply = |armed: &mut BTreeMap<FlowId, VirtualTime>, cmds: &[NetCommand]| {
        for c in cmds {
            match *c {
                NetCommand::Schedule { flow, at } => {
                    armed.insert(flow, at);
                }
                NetCommand::Cancel { flow } => {
                    armed.remove(&flow);
                }
            }
        }
    };
    let mut sends = sends.iter().peekable();
    loop {
        let next_due = armed.iter().map(|(&f, &at)| (at, f)).min();
        let take_send = match (sends.peek(), next_due) {
            (Some(&&(at, ..)), Some((due, _))) => at <= due,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let cmds = if take_send {
            let &&(at, src, dst, bytes) = sends.peek().unwrap();
            sends.next();
            let (f, cmds) = net.send(at, src, dst, bytes);
            known.push(f);
            cmds
        } else {
            let (due, flow) = next_due.unwrap();
            armed.remove(&flow);
            deliveries.push((due, flow));
            net.deliver(flow, due)
        };
        apply(&mut armed, &cmds);
        log.push(cmds);
        rates.push(
            known
                .iter()
                .filter_map(|&f| Some((f, net.flow_rate(f)?.to_bits())))
                .collect(),
        );
    }
    assert_eq!(net.in_flight(), 0, "script must drain completely");
    (log, deliveries, rates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_is_bit_identical_to_full(
        kind in any::<u8>(),
        n in 4usize..12,
        script in prop::collection::vec(
            (0u64..5_000_000, 0usize..12, 0usize..12, 1u64..32_000_000),
            1..20,
        ),
    ) {
        let n = n.max(4);
        let mut sends: Script = script
            .iter()
            .map(|&(t_ns, a, b, bytes)| {
                (
                    VirtualTime::from_seconds(t_ns as f64 * 1e-9),
                    NodeId(a % n),
                    NodeId(b % n),
                    bytes,
                )
            })
            // Unreachable pairs (islands topology) would panic in send;
            // keep only connected endpoints. Local (src == dst) sends
            // stay in: they exercise the empty-route path.
            .filter(|&(_, src, dst, _)| {
                let topo = topology(kind, n);
                src == dst || topo.route(src, dst).is_ok()
            })
            .collect();
        sends.sort_by_key(|&(t, ..)| t);
        prop_assume!(!sends.is_empty());

        let (log_i, del_i, rates_i) =
            run_script(ReallocationMode::Incremental, topology(kind, n), &sends);
        let (log_f, del_f, rates_f) =
            run_script(ReallocationMode::Full, topology(kind, n), &sends);

        prop_assert_eq!(log_i, log_f, "command streams diverged");
        prop_assert_eq!(del_i, del_f, "delivery sequences diverged");
        prop_assert_eq!(rates_i, rates_f, "rate bits diverged");
    }
}
