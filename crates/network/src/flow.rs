//! The packet-switching flow network (§4.5 of the paper).
//!
//! Beyond the paper's 4-step model, this implementation carries a *fast
//! path* (see `DESIGN.md` §5, "Network fast path"): per-source route
//! caching, slab-indexed flow storage with a per-link membership index,
//! max-min reallocation scoped to the connected component of links the
//! triggering flow touches, and delta-rescheduling that re-arms only the
//! flows whose rate actually changed.

use std::collections::HashMap;
use std::sync::Arc;

use triosim_des::{TimeSpan, VirtualTime};

use crate::model::{
    FlowId, LinkCheckpoint, LinkFault, LinkObservation, NetCheckpoint, NetCommand, NetObservation,
    NetRestoreError, NetStatsSnapshot, NetworkModel, PartitionedError,
};
use crate::topology::{LinkId, NodeId, Topology};

/// Fidelity knobs of the flow network.
///
/// With the default (all-zero) configuration the model is exactly the
/// paper's lightweight network model: route latency plus bytes over
/// fair-shared bandwidth, nothing else. The non-zero knobs add the
/// protocol-level effects the paper explicitly *excludes* ("TrioSim does
/// not model communication protocols or … data transfer unit sizes");
/// [`FlowNetworkConfig::reference`] enables them, turning the same engine
/// into the high-fidelity ground-truth network of this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowNetworkConfig {
    /// Fixed protocol overhead paid once per message, in seconds.
    pub per_message_overhead_s: f64,
    /// Transfer-unit size in bytes; each full-or-partial chunk pays
    /// [`chunk_overhead_s`](FlowNetworkConfig::chunk_overhead_s). Zero
    /// disables chunking.
    pub chunk_bytes: u64,
    /// Per-chunk protocol overhead, in seconds.
    pub chunk_overhead_s: f64,
    /// Bandwidth ramp: a message of `B` bytes drains as if it were
    /// `B + ramp` bytes, derating small transfers (protocol slow-start,
    /// per-transfer setup DMA work).
    pub bandwidth_ramp_bytes: f64,
}

impl Default for FlowNetworkConfig {
    fn default() -> Self {
        FlowNetworkConfig {
            per_message_overhead_s: 0.0,
            chunk_bytes: 0,
            chunk_overhead_s: 0.0,
            bandwidth_ramp_bytes: 0.0,
        }
    }
}

impl FlowNetworkConfig {
    /// The high-fidelity reference configuration used as ground truth:
    /// NCCL-like 4 MiB transfer units with a small per-chunk cost, a
    /// per-message protocol overhead, and a small-message bandwidth ramp.
    pub fn reference() -> Self {
        FlowNetworkConfig {
            per_message_overhead_s: 5.0e-6,
            chunk_bytes: 4 << 20,
            chunk_overhead_s: 1.5e-6,
            bandwidth_ramp_bytes: 256.0 * 1024.0,
        }
    }
}

/// How the network recomputes fair shares when a flow starts or finishes.
///
/// All three modes produce bit-identical per-flow rates (progressive
/// filling decomposes over connected components of the flow-interference
/// graph, and every mode runs the same component-local filling
/// arithmetic). They differ in how much work they do per event:
///
/// * [`Incremental`](ReallocationMode::Incremental) — the default fast
///   path. Refills only the connected component of links touched by the
///   starting/finishing flow, and emits `Schedule` commands only for
///   flows whose rate actually changed.
/// * [`Full`](ReallocationMode::Full) — refills every component from
///   scratch but still delta-reschedules. The equivalence oracle the
///   incremental path is validated against.
/// * [`FullReschedule`](ReallocationMode::FullReschedule) — refills every
///   component *and* re-arms every in-flight delivery, whether or not its
///   rate changed: the pre-fast-path behaviour, kept as the benchmark
///   baseline for the O(F²) event churn it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReallocationMode {
    /// Component-scoped refill + delta-rescheduling (the fast path).
    #[default]
    Incremental,
    /// From-scratch refill + delta-rescheduling (equivalence oracle).
    Full,
    /// From-scratch refill + re-arm everything (legacy baseline).
    FullReschedule,
}

impl std::str::FromStr for ReallocationMode {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        match spec {
            "incremental" => Ok(ReallocationMode::Incremental),
            "full" => Ok(ReallocationMode::Full),
            "full-reschedule" | "full_reschedule" => Ok(ReallocationMode::FullReschedule),
            _ => Err(format!(
                "unknown reallocation mode `{spec}` (try incremental, full, full-reschedule)"
            )),
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    route: Arc<[LinkId]>,
    /// Bytes (including ramp) still to drain.
    remaining: f64,
    /// Currently allocated rate in bytes/s.
    rate: f64,
    /// Draining starts only after the latency + protocol overhead phase.
    drain_start: VirtualTime,
    last_update: VirtualTime,
}

/// One `(src, dst)` entry of the per-source route cache.
#[derive(Debug, Clone)]
struct CachedRoute {
    route: Arc<[LinkId]>,
    latency_s: f64,
}

/// Cumulative per-link activity counters.
///
/// Both fields are integers (ticks for time) so that forked-model
/// statistics can be merged back exactly: integer sums are associative,
/// which is what keeps sharded runs byte-identical to serial ones.
/// Payload bytes are credited when a flow *delivers* (one full payload
/// per route link), busy time accrues per progress window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Payload bytes of delivered flows that crossed this link.
    pub bytes: u64,
    /// Time during which at least one flow was draining through it.
    pub busy: TimeSpan,
}

/// Reusable, epoch-stamped working memory for reallocation and progress
/// accounting. Buffers are sized once (per link / per flow slot) and
/// validity is tracked by comparing stamps, so no buffer is ever cleared
/// or reallocated on the per-event hot path.
#[derive(Debug, Default)]
struct Scratch {
    /// Component-gather generation; buffers stamped with an older value
    /// are logically empty.
    epoch: u64,
    /// Per-link stamp: link belongs to the current component.
    link_epoch: Vec<u64>,
    /// Remaining capacity per link (valid where `link_epoch == epoch`).
    cap: Vec<f64>,
    /// Unfrozen-flow count per link (valid where `link_epoch == epoch`).
    count: Vec<u32>,
    /// Per-link stamp: link saturated in filling round `sat[l]`.
    sat: Vec<u64>,
    /// Global filling-round counter backing `sat`.
    round: u64,
    /// Per-slot stamp: flow belongs to the current component.
    flow_epoch: Vec<u64>,
    /// Per-slot stamp for full-refill sweeps over all components.
    visit: Vec<u64>,
    /// Sweep generation backing `visit`.
    sweep: u64,
    /// New rate per slot (written by the most recent fill touching it).
    rates: Vec<f64>,
    /// Links of the component being filled.
    comp_links: Vec<LinkId>,
    /// Flow slots of the component being filled.
    comp_flows: Vec<u32>,
    /// BFS worklist for component gathering.
    stack: Vec<u32>,
    /// Flows not yet frozen by progressive filling.
    unfrozen: Vec<u32>,
    /// Seed slots for the deliver path's per-component refills.
    seeds: Vec<u32>,
    /// Flow slots whose schedule commands this reallocation may emit.
    emit: Vec<u32>,
    /// Per-link stamp: link was busy in the current progress window.
    busy: Vec<u64>,
    /// Progress-window generation backing `busy`.
    busy_epoch: u64,
}

impl Scratch {
    fn ensure_links(&mut self, links: usize) {
        if self.link_epoch.len() < links {
            self.link_epoch.resize(links, 0);
            self.cap.resize(links, 0.0);
            self.count.resize(links, 0);
            self.sat.resize(links, 0);
            self.busy.resize(links, 0);
        }
    }

    fn ensure_slots(&mut self, slots: usize) {
        if self.flow_epoch.len() < slots {
            self.flow_epoch.resize(slots, 0);
            self.visit.resize(slots, 0);
            self.rates.resize(slots, 0.0);
        }
    }
}

/// The paper's lightweight packet-switching network model.
///
/// Message transfer follows the 4-step process of Figure 5: shortest-path
/// routing, fair bandwidth allocation, scheduling a potential delivery
/// event, and — on any flow start or completion — recomputation of the
/// affected allocations and rescheduling of the deliveries they move.
///
/// Bandwidth sharing is *max-min fair* (progressive filling): concurrent
/// flows through a link split it evenly unless bottlenecked elsewhere.
///
/// Routing runs against a per-source route cache (one BFS amortized over
/// all destinations, invalidated on topology mutation), reallocation is
/// scoped to the connected component of links the triggering flow
/// touches, and only flows whose rate changed are rescheduled — see
/// [`ReallocationMode`].
///
/// # Example
///
/// ```rust
/// use triosim_des::VirtualTime;
/// use triosim_network::{FlowNetwork, NetCommand, NetworkModel, NodeId, Topology};
///
/// // Two flows sharing one 10 GB/s link: each gets 5 GB/s.
/// let mut topo = Topology::new(2);
/// topo.add_duplex(NodeId(0), NodeId(1), 10e9, 0.0);
/// let mut net = FlowNetwork::new(topo);
///
/// let (_f1, cmds1) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 10_000_000_000);
/// let NetCommand::Schedule { at: alone, .. } = cmds1[0] else { panic!() };
/// assert!((alone.as_seconds() - 1.0).abs() < 1e-9, "1 s alone");
///
/// let (_f2, cmds2) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 10_000_000_000);
/// // Both flows now finish at 2 s.
/// for cmd in cmds2 {
///     let NetCommand::Schedule { at, .. } = cmd else { panic!() };
///     assert!((at.as_seconds() - 2.0).abs() < 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct FlowNetwork {
    topo: Topology,
    config: FlowNetworkConfig,
    mode: ReallocationMode,
    /// Slab of in-flight flows; `FlowId`s map to slots via `slot_of`.
    slots: Vec<Option<ActiveFlow>>,
    free_slots: Vec<u32>,
    slot_of: HashMap<u64, u32>,
    /// Per-link membership index: slots of the flows routed through it.
    link_flows: Vec<Vec<u32>>,
    /// Per-source route table, built lazily by one BFS per source and
    /// cleared whenever the topology is mutated.
    route_cache: Vec<Option<Box<[Option<CachedRoute>]>>>,
    route_hits: u64,
    route_misses: u64,
    next_flow: u64,
    bytes_delivered: u64,
    flows_completed: u64,
    reallocations: u64,
    reschedules: u64,
    link_faults: u64,
    reroutes: u64,
    added_hops: u64,
    link_stats: Vec<LinkStats>,
    last_progress: VirtualTime,
    scratch: Scratch,
}

impl FlowNetwork {
    /// Creates the model over a topology with the clean (paper-default)
    /// configuration.
    pub fn new(topo: Topology) -> Self {
        Self::with_config(topo, FlowNetworkConfig::default())
    }

    /// Creates the model with explicit fidelity knobs.
    pub fn with_config(topo: Topology, config: FlowNetworkConfig) -> Self {
        let links = topo.link_count();
        let nodes = topo.node_count();
        let mut scratch = Scratch::default();
        scratch.ensure_links(links);
        FlowNetwork {
            topo,
            config,
            mode: ReallocationMode::default(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            slot_of: HashMap::new(),
            link_flows: vec![Vec::new(); links],
            route_cache: vec![None; nodes],
            route_hits: 0,
            route_misses: 0,
            next_flow: 0,
            bytes_delivered: 0,
            flows_completed: 0,
            reallocations: 0,
            reschedules: 0,
            link_faults: 0,
            reroutes: 0,
            added_hops: 0,
            link_stats: vec![LinkStats::default(); links],
            last_progress: VirtualTime::ZERO,
            scratch,
        }
    }

    /// Selects how reallocation scopes its work (see [`ReallocationMode`]).
    pub fn set_reallocation_mode(&mut self, mode: ReallocationMode) {
        self.mode = mode;
    }

    /// The active reallocation mode.
    pub fn reallocation_mode(&self) -> ReallocationMode {
        self.mode
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (used to inject Hop-style slowdowns between
    /// simulations; do not mutate while flows are in flight). Invalidates
    /// the route cache.
    ///
    /// # Panics
    ///
    /// Panics if flows are currently in flight.
    pub fn topology_mut(&mut self) -> &mut Topology {
        assert!(
            self.slot_of.is_empty(),
            "cannot mutate the topology while flows are in flight"
        );
        self.route_cache.fill(None);
        &mut self.topo
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Total flows completed so far.
    pub fn flows_completed(&self) -> u64 {
        self.flows_completed
    }

    /// Bandwidth-reallocation rounds performed so far (one per flow
    /// start or completion).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Delivery events re-armed because a reallocation changed an
    /// in-flight flow's rate — the model's genuine reallocation churn.
    /// (In [`ReallocationMode::FullReschedule`] this reverts to counting
    /// every re-arm, changed or not.)
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Route-cache effectiveness: `(hits, misses)` where a miss runs one
    /// single-source BFS that populates the table for every destination.
    pub fn route_cache_stats(&self) -> (u64, u64) {
        (self.route_hits, self.route_misses)
    }

    /// Link faults applied so far (degradations, failures, repairs).
    pub fn link_faults(&self) -> u64 {
        self.link_faults
    }

    /// In-flight flows rerouted around failed links so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Extra hops accumulated by reroutes (new minus old route length,
    /// summed over every rerouted flow).
    pub fn added_hops(&self) -> u64 {
        self.added_hops
    }

    /// Source, destination, and size of an in-flight flow.
    pub fn flow(&self, id: FlowId) -> Option<(NodeId, NodeId, u64)> {
        let f = self.get(id)?;
        Some((f.src, f.dst, f.bytes))
    }

    /// The current fair-share rate of an in-flight flow, bytes/s.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        Some(self.get(id)?.rate)
    }

    fn get(&self, id: FlowId) -> Option<&ActiveFlow> {
        let &slot = self.slot_of.get(&id.0)?;
        self.slots[slot as usize].as_ref()
    }

    /// Protocol overhead for a message under the current config.
    fn message_overhead_s(&self, bytes: u64) -> f64 {
        let mut o = self.config.per_message_overhead_s;
        if self.config.chunk_bytes > 0 {
            let chunks = bytes.div_ceil(self.config.chunk_bytes).max(1);
            o += chunks as f64 * self.config.chunk_overhead_s;
        }
        o
    }

    /// Grows link-indexed state after out-of-band topology mutation
    /// (links may be added between simulations via `topology_mut`).
    fn sync_links(&mut self) {
        let links = self.topo.link_count();
        if self.link_stats.len() != links {
            self.link_stats.resize(links, LinkStats::default());
            self.link_flows.resize(links, Vec::new());
        }
        self.scratch.ensure_links(links);
    }

    /// The cached route and latency for `(src, dst)`; one BFS per source,
    /// amortized over every destination. A missing path (the topology is
    /// partitioned between the endpoints) is a typed error.
    fn try_cached_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<CachedRoute, PartitionedError> {
        assert!(
            src.0 < self.route_cache.len(),
            "send source must be a known node"
        );
        if self.route_cache[src.0].is_none() {
            self.route_misses += 1;
            let table = self
                .topo
                .routes_from(src)
                .expect("source bounds checked above");
            let table: Box<[Option<CachedRoute>]> = table
                .into_iter()
                .map(|r| {
                    r.map(|route| CachedRoute {
                        latency_s: self.topo.route_latency(&route),
                        route: route.into(),
                    })
                })
                .collect();
            self.route_cache[src.0] = Some(table);
        } else {
            self.route_hits += 1;
        }
        self.route_cache[src.0].as_ref().expect("just ensured")[dst.0]
            .clone()
            .ok_or(PartitionedError { src, dst })
    }

    /// Advances every flow's drained-bytes accounting to `now`, marking
    /// per-link busy time along the way. (Payload bytes are credited at
    /// delivery — see [`deliver`](NetworkModel::deliver) — so the byte
    /// counter stays an exact integer.)
    fn update_progress(&mut self, now: VirtualTime) {
        let sc = &mut self.scratch;
        let stats = &mut self.link_stats;
        sc.busy_epoch += 1;
        let be = sc.busy_epoch;
        let mut any_busy = false;
        for slot in self.slots.iter_mut() {
            let Some(f) = slot else { continue };
            let from = f.last_update.max(f.drain_start);
            if now > from && f.rate > 0.0 {
                let dt = (now - from).as_seconds();
                let drained = (f.rate * dt).min(f.remaining);
                f.remaining -= drained;
                for &l in f.route.iter() {
                    sc.busy[l.0] = be;
                    any_busy = true;
                }
            }
            f.last_update = now;
        }
        if now > self.last_progress {
            if any_busy {
                let dt = now - self.last_progress;
                for (stat, mark) in stats.iter_mut().zip(&sc.busy) {
                    if *mark == be {
                        stat.busy += dt;
                    }
                }
            }
            self.last_progress = now;
        }
    }

    /// Cumulative activity counters for one link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.link_stats[link.0]
    }

    /// The `k` busiest links by bytes carried, descending.
    pub fn hottest_links(&self, k: usize) -> Vec<(LinkId, LinkStats)> {
        let mut v: Vec<(LinkId, LinkStats)> = self
            .link_stats
            .iter()
            .enumerate()
            .map(|(i, &s)| (LinkId(i), s))
            .collect();
        v.sort_by_key(|&(_, s)| std::cmp::Reverse(s.bytes));
        v.truncate(k);
        v
    }

    /// Collects into `scratch.comp_flows`/`comp_links` the connected
    /// component of the flow-interference graph containing `seed`.
    fn gather_component(&mut self, seed: u32) {
        let sc = &mut self.scratch;
        let slots = &self.slots;
        let link_flows = &self.link_flows;
        sc.epoch += 1;
        let e = sc.epoch;
        sc.comp_links.clear();
        sc.comp_flows.clear();
        sc.stack.clear();
        sc.flow_epoch[seed as usize] = e;
        sc.comp_flows.push(seed);
        sc.stack.push(seed);
        while let Some(s) = sc.stack.pop() {
            let f = slots[s as usize].as_ref().expect("component slot live");
            for &l in f.route.iter() {
                if sc.link_epoch[l.0] != e {
                    sc.link_epoch[l.0] = e;
                    sc.comp_links.push(l);
                    for &s2 in &link_flows[l.0] {
                        if sc.flow_epoch[s2 as usize] != e {
                            sc.flow_epoch[s2 as usize] = e;
                            sc.comp_flows.push(s2);
                            sc.stack.push(s2);
                        }
                    }
                }
            }
        }
    }

    /// Progressive filling over the gathered component, writing the new
    /// rate of each member into `scratch.rates[slot]`.
    ///
    /// The arithmetic is a pure function of the component's member set
    /// (order-insensitive: the headroom `delta` is a min over links and
    /// capacity updates are per-link), which is what makes incremental and
    /// full refills bit-identical.
    fn fill_component(&mut self) {
        let sc = &mut self.scratch;
        let slots = &self.slots;
        let topo = &self.topo;
        sc.unfrozen.clear();
        for &l in &sc.comp_links {
            sc.cap[l.0] = topo.bandwidth(l);
            sc.count[l.0] = 0;
        }
        for &s in &sc.comp_flows {
            let f = slots[s as usize].as_ref().expect("component slot live");
            if f.route.is_empty() {
                // Local (src == dst) flows carry no bandwidth.
                sc.rates[s as usize] = 0.0;
                continue;
            }
            sc.unfrozen.push(s);
            for &l in f.route.iter() {
                sc.count[l.0] += 1;
            }
        }
        let mut level = 0.0f64;
        while !sc.unfrozen.is_empty() {
            // Uniform headroom until the tightest link saturates.
            let mut delta = f64::INFINITY;
            for &l in &sc.comp_links {
                let c = sc.count[l.0];
                if c > 0 {
                    delta = delta.min(sc.cap[l.0] / c as f64);
                }
            }
            debug_assert!(delta.is_finite() && delta >= 0.0);
            level += delta;
            // Drain capacity and stamp saturated links with this round.
            sc.round += 1;
            let round = sc.round;
            let mut any_saturated = false;
            for &l in &sc.comp_links {
                let c = sc.count[l.0];
                if c == 0 {
                    continue;
                }
                let cap = &mut sc.cap[l.0];
                *cap -= delta * c as f64;
                if *cap <= 1e-6 * topo.bandwidth(l) {
                    *cap = 0.0;
                    sc.sat[l.0] = round;
                    any_saturated = true;
                }
            }
            debug_assert!(
                any_saturated,
                "progressive filling must saturate at least one link per round"
            );
            // Freeze every unfrozen flow crossing a saturated link.
            let mut i = 0;
            while i < sc.unfrozen.len() {
                let s = sc.unfrozen[i];
                let f = slots[s as usize].as_ref().expect("component slot live");
                if f.route.iter().any(|l| sc.sat[l.0] == round) {
                    sc.rates[s as usize] = level;
                    for &l in f.route.iter() {
                        sc.count[l.0] -= 1;
                    }
                    sc.unfrozen.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// From-scratch refill: every connected component, one at a time.
    fn fill_all(&mut self) {
        self.scratch.sweep += 1;
        let sweep = self.scratch.sweep;
        for s in 0..self.slots.len() as u32 {
            if self.slots[s as usize].is_none() || self.scratch.visit[s as usize] == sweep {
                continue;
            }
            self.gather_component(s);
            for i in 0..self.scratch.comp_flows.len() {
                let m = self.scratch.comp_flows[i];
                self.scratch.visit[m as usize] = sweep;
            }
            self.fill_component();
        }
    }

    /// Debug oracle: a from-scratch refill must reproduce, bit for bit,
    /// the rates the incremental path left behind (fresh values for the
    /// touched component, previously computed values everywhere else).
    #[cfg(debug_assertions)]
    fn assert_full_equivalence(&mut self) {
        let sweep = self.scratch.sweep;
        let expected: Vec<(u32, f64)> = (0..self.slots.len() as u32)
            .filter_map(|s| {
                let f = self.slots[s as usize].as_ref()?;
                let want = if self.scratch.visit[s as usize] == sweep {
                    self.scratch.rates[s as usize]
                } else {
                    f.rate
                };
                Some((s, want))
            })
            .collect();
        self.fill_all();
        for (s, want) in expected {
            let got = self.scratch.rates[s as usize];
            assert!(
                got.to_bits() == want.to_bits(),
                "incremental refill diverged from full progressive filling: \
                 slot {s} got {got}, full recompute says {want}"
            );
        }
    }

    /// Recomputes the fair rates affected by a flow start (`new_slot`) or
    /// completion (`seed_route` = the finished flow's links) and returns
    /// `Schedule` commands for the flows whose delivery time moved.
    fn reallocate(
        &mut self,
        now: VirtualTime,
        new_slot: Option<u32>,
        seed_route: &[LinkId],
    ) -> Vec<NetCommand> {
        self.reallocations += 1;
        match self.mode {
            ReallocationMode::Incremental => {
                let mut emit = std::mem::take(&mut self.scratch.emit);
                emit.clear();
                self.scratch.sweep += 1;
                let sweep = self.scratch.sweep;
                if let Some(s) = new_slot {
                    // A starting flow connects everything it touches into
                    // one component.
                    self.gather_component(s);
                    for i in 0..self.scratch.comp_flows.len() {
                        let m = self.scratch.comp_flows[i];
                        self.scratch.visit[m as usize] = sweep;
                    }
                    emit.extend_from_slice(&self.scratch.comp_flows);
                    self.fill_component();
                } else {
                    // A finishing flow may have been the bridge holding
                    // its component together: the survivors on its links
                    // can now fall into several disconnected components,
                    // and each must be refilled *separately* — a single
                    // merged fill would interleave the components' level
                    // accumulation and drift from a from-scratch refill
                    // by float-rounding ulps.
                    let mut seeds = std::mem::take(&mut self.scratch.seeds);
                    seeds.clear();
                    for &l in seed_route {
                        seeds.extend_from_slice(&self.link_flows[l.0]);
                    }
                    for &s in &seeds {
                        if self.scratch.visit[s as usize] == sweep {
                            continue;
                        }
                        self.gather_component(s);
                        for j in 0..self.scratch.comp_flows.len() {
                            let m = self.scratch.comp_flows[j];
                            self.scratch.visit[m as usize] = sweep;
                        }
                        emit.extend_from_slice(&self.scratch.comp_flows);
                        self.fill_component();
                    }
                    self.scratch.seeds = seeds;
                }
                self.scratch.emit = emit;
                #[cfg(debug_assertions)]
                self.assert_full_equivalence();
            }
            ReallocationMode::Full | ReallocationMode::FullReschedule => {
                let mut emit = std::mem::take(&mut self.scratch.emit);
                emit.clear();
                emit.extend(
                    (0..self.slots.len() as u32).filter(|&s| self.slots[s as usize].is_some()),
                );
                self.scratch.emit = emit;
                self.fill_all();
            }
        }
        self.emit_commands(now, new_slot)
    }

    /// Emits `Schedule` commands — in `FlowId` order for determinism —
    /// for the candidate flows whose rate changed (plus the new flow,
    /// plus everything in [`ReallocationMode::FullReschedule`]).
    fn emit_commands(&mut self, now: VirtualTime, new_slot: Option<u32>) -> Vec<NetCommand> {
        let sc = &mut self.scratch;
        let slots = &mut self.slots;
        sc.emit
            .sort_unstable_by_key(|&s| slots[s as usize].as_ref().expect("candidate live").id);
        let rearm_all = self.mode == ReallocationMode::FullReschedule;
        let mut cmds = Vec::with_capacity(sc.emit.len());
        let mut reschedules = 0u64;
        for &s in &sc.emit {
            let f = slots[s as usize].as_mut().expect("candidate live");
            let new_rate = sc.rates[s as usize];
            let is_new = new_slot == Some(s);
            let changed = new_rate.to_bits() != f.rate.to_bits();
            f.rate = new_rate;
            if !(is_new || changed || rearm_all) {
                // Delta-rescheduling: an unchanged rate means the armed
                // delivery event is still exact — leave it alone.
                continue;
            }
            let base = now.max(f.drain_start);
            let at = if f.remaining <= 0.0 {
                base
            } else if new_rate > 0.0 {
                base + TimeSpan::from_seconds(f.remaining / new_rate)
            } else {
                // Local (src == dst) flows have empty routes and zero
                // remaining; any other rate-0 case is a config bug.
                unreachable!("a routed flow always receives bandwidth")
            };
            cmds.push(NetCommand::Schedule { flow: f.id, at });
            if !is_new {
                reschedules += 1;
            }
        }
        self.reschedules += reschedules;
        cmds
    }

    /// From-scratch refill of every component with every live flow as an
    /// emit candidate — the recovery path after a link failure rewires
    /// routes across component boundaries.
    fn refill_all_and_emit(&mut self, now: VirtualTime) -> Vec<NetCommand> {
        self.reallocations += 1;
        let mut emit = std::mem::take(&mut self.scratch.emit);
        emit.clear();
        emit.extend((0..self.slots.len() as u32).filter(|&s| self.slots[s as usize].is_some()));
        self.scratch.emit = emit;
        self.fill_all();
        self.emit_commands(now, None)
    }

    /// Moves every in-flight flow crossing a downed link onto a fresh
    /// shortest path that avoids down links, updating the per-link
    /// membership index and the reroute counters.
    ///
    /// Rerouted flows keep their drained progress and original latency
    /// phase; only the remaining bytes travel the detour.
    fn reroute_around(
        &mut self,
        now: VirtualTime,
        downed: &[LinkId],
    ) -> Result<Vec<NetCommand>, PartitionedError> {
        let mut moved: Vec<u32> = Vec::new();
        for &l in downed {
            for &s in &self.link_flows[l.0] {
                if !moved.contains(&s) {
                    moved.push(s);
                }
            }
        }
        // Deterministic processing order regardless of membership layout.
        moved.sort_unstable();
        for &s in &moved {
            let (src, dst, old_route) = {
                let f = self.slots[s as usize].as_ref().expect("rerouted slot live");
                (f.src, f.dst, f.route.clone())
            };
            let new_route = self
                .topo
                .route(src, dst)
                .map_err(|_| PartitionedError { src, dst })?;
            for &l in old_route.iter() {
                let members = &mut self.link_flows[l.0];
                if let Some(pos) = members.iter().position(|&x| x == s) {
                    members.swap_remove(pos);
                }
            }
            for &l in &new_route {
                self.link_flows[l.0].push(s);
            }
            self.reroutes += 1;
            self.added_hops += new_route.len().saturating_sub(old_route.len()) as u64;
            let f = self.slots[s as usize].as_mut().expect("rerouted slot live");
            f.route = new_route.into();
        }
        Ok(self.refill_all_and_emit(now))
    }
}

impl NetworkModel for FlowNetwork {
    fn send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (FlowId, Vec<NetCommand>) {
        match self.try_send(now, src, dst, bytes) {
            Ok(r) => r,
            Err(e) => panic!("send endpoints must be connected: {e}"),
        }
    }

    fn try_send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<(FlowId, Vec<NetCommand>), PartitionedError> {
        self.sync_links();
        let cached = self.try_cached_route(src, dst)?;
        let id = FlowId(self.next_flow);
        self.next_flow += 1;

        let latency = cached.latency_s + self.message_overhead_s(bytes);
        let remaining = if cached.route.is_empty() {
            0.0 // local copy: modeled as instantaneous (same-device data)
        } else {
            bytes as f64 + self.config.bandwidth_ramp_bytes
        };
        self.update_progress(now);
        let flow = ActiveFlow {
            id,
            src,
            dst,
            bytes,
            route: cached.route,
            remaining,
            rate: 0.0,
            drain_start: now + TimeSpan::from_seconds(latency),
            last_update: now,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(flow);
                s
            }
            None => {
                self.slots.push(Some(flow));
                (self.slots.len() - 1) as u32
            }
        };
        self.scratch.ensure_slots(self.slots.len());
        self.slot_of.insert(id.0, slot);
        let route = self.slots[slot as usize]
            .as_ref()
            .expect("just inserted")
            .route
            .clone();
        for &l in route.iter() {
            self.link_flows[l.0].push(slot);
        }
        Ok((id, self.reallocate(now, Some(slot), &[])))
    }

    fn apply_link_fault(
        &mut self,
        now: VirtualTime,
        a: NodeId,
        b: NodeId,
        fault: LinkFault,
    ) -> Result<Vec<NetCommand>, PartitionedError> {
        self.sync_links();
        // Drain progress at pre-fault rates before anything changes.
        self.update_progress(now);
        let affected: Vec<LinkId> = (0..self.topo.link_count())
            .map(LinkId)
            .filter(|&l| {
                let (s, d) = self.topo.endpoints(l);
                (s == a && d == b) || (s == b && d == a)
            })
            .collect();
        if affected.is_empty() {
            // No direct link between the endpoints; a validated plan never
            // gets here, and an unmatched fault is a no-op by design.
            return Ok(Vec::new());
        }
        self.link_faults += 1;
        match fault {
            LinkFault::Degrade { factor } => {
                for &l in &affected {
                    self.topo.scale_bandwidth(l, factor);
                }
                // Routes are hop-count shortest paths: a bandwidth change
                // moves rates, not routes, so the route cache stays valid.
                Ok(self.reallocate(now, None, &affected))
            }
            LinkFault::Fail => {
                for &l in &affected {
                    self.topo.set_link_up(l, false);
                }
                self.route_cache.fill(None);
                self.reroute_around(now, &affected)
            }
            LinkFault::Repair => {
                for &l in &affected {
                    self.topo.set_link_up(l, true);
                }
                self.route_cache.fill(None);
                // In-flight flows keep their detours (no re-optimization on
                // repair); only new sends see the restored link, so no
                // rates move and there is nothing to re-arm.
                Ok(Vec::new())
            }
        }
    }

    fn deliver(&mut self, flow: FlowId, now: VirtualTime) -> Vec<NetCommand> {
        self.update_progress(now);
        let slot = self
            .slot_of
            .remove(&flow.0)
            .expect("delivered flow must be in flight");
        let f = self.slots[slot as usize].take().expect("slot occupied");
        debug_assert!(
            f.remaining <= 1.0,
            "flow {flow} delivered with {} bytes left",
            f.remaining
        );
        for &l in f.route.iter() {
            let members = &mut self.link_flows[l.0];
            let pos = members
                .iter()
                .position(|&s| s == slot)
                .expect("membership index tracks every routed flow");
            members.swap_remove(pos);
        }
        self.free_slots.push(slot);
        // Credit the full payload to every link on the route now that the
        // flow has finished: an exact integer per link, independent of how
        // many progress windows the drain spanned.
        for &l in f.route.iter() {
            self.link_stats[l.0].bytes += f.bytes;
        }
        self.bytes_delivered += f.bytes;
        self.flows_completed += 1;
        self.reallocate(now, None, &f.route)
    }

    fn in_flight(&self) -> usize {
        self.slot_of.len()
    }

    fn observe(&self) -> NetObservation {
        NetObservation {
            in_flight: self.slot_of.len(),
            bytes_delivered: self.bytes_delivered,
            flows_completed: self.flows_completed,
            reallocations: self.reallocations,
            reschedules: self.reschedules,
            link_faults: self.link_faults,
            reroutes: self.reroutes,
            added_hops: self.added_hops,
        }
    }

    fn observe_links(&self) -> Vec<LinkObservation> {
        (0..self.link_stats.len())
            .map(|i| {
                let link = LinkId(i);
                let (src, dst) = self.topo.endpoints(link);
                LinkObservation {
                    label: format!("n{}->n{}", src.0, dst.0),
                    bandwidth: self.topo.bandwidth(link),
                    bytes: self.link_stats[i].bytes as f64,
                    busy_s: self.link_stats[i].busy.as_seconds(),
                    active_flows: self.link_flows[i].len(),
                }
            })
            .collect()
    }

    fn iteration_invariant(&self) -> bool {
        // All time arithmetic in this model is either tick-integer or a
        // function of tick *differences* (dt in seconds), so shifting a
        // traffic pattern by a constant offset shifts every command by
        // exactly that offset and leaves all statistics deltas identical.
        true
    }

    fn fork_pristine(&self) -> Option<Box<dyn NetworkModel + Send>> {
        let mut fork = FlowNetwork::with_config(self.topo.clone(), self.config);
        fork.set_reallocation_mode(self.mode);
        Some(Box::new(fork))
    }

    fn stats_snapshot(&self) -> Option<NetStatsSnapshot> {
        Some(NetStatsSnapshot {
            observation: self.observe(),
            links: self.link_stats.iter().map(|s| (s.bytes, s.busy)).collect(),
        })
    }

    fn absorb_stats(&mut self, snapshot: &NetStatsSnapshot) {
        let o = &snapshot.observation;
        self.bytes_delivered += o.bytes_delivered;
        self.flows_completed += o.flows_completed;
        self.reallocations += o.reallocations;
        self.reschedules += o.reschedules;
        self.link_faults += o.link_faults;
        self.reroutes += o.reroutes;
        self.added_hops += o.added_hops;
        assert_eq!(
            snapshot.links.len(),
            self.link_stats.len(),
            "absorbed snapshot must come from a fork of the same topology"
        );
        for (stat, &(bytes, busy)) in self.link_stats.iter_mut().zip(&snapshot.links) {
            stat.bytes += bytes;
            stat.busy += busy;
        }
    }

    fn spec_fingerprint(&self) -> u64 {
        // FNV-1a over the model's full configuration: the serialized
        // topology (nodes, links, parameters, transit restrictions), the
        // fidelity knobs as raw bits, and the reallocation mode. Live
        // mutable state (link stats, counters, the route cache) is
        // deliberately excluded — two runs of the same *spec* must agree
        // even when captured at different points in time.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        let topo_json =
            serde_json::to_string(&self.topo).expect("topologies serialize to plain JSON");
        fold(topo_json.as_bytes());
        fold(&self.config.per_message_overhead_s.to_bits().to_le_bytes());
        fold(&self.config.chunk_bytes.to_le_bytes());
        fold(&self.config.chunk_overhead_s.to_bits().to_le_bytes());
        fold(&self.config.bandwidth_ramp_bytes.to_bits().to_le_bytes());
        fold(&[match self.mode {
            ReallocationMode::Incremental => 0u8,
            ReallocationMode::Full => 1,
            ReallocationMode::FullReschedule => 2,
        }]);
        h
    }

    fn checkpoint_state(&self) -> Option<NetCheckpoint> {
        // Snapshots are only meaningful at quiescent instants: an
        // in-flight flow's continuous drain state has no exact serialized
        // form, so the model simply refuses to checkpoint mid-transfer.
        if !self.slot_of.is_empty() {
            return None;
        }
        Some(NetCheckpoint {
            bytes_delivered: self.bytes_delivered,
            flows_completed: self.flows_completed,
            reallocations: self.reallocations,
            reschedules: self.reschedules,
            link_faults: self.link_faults,
            reroutes: self.reroutes,
            added_hops: self.added_hops,
            links: (0..self.link_stats.len())
                .map(|i| {
                    let l = LinkId(i);
                    LinkCheckpoint {
                        bandwidth_bits: self.topo.bandwidth(l).to_bits(),
                        up: self.topo.is_link_up(l),
                        bytes: self.link_stats[i].bytes,
                        busy: self.link_stats[i].busy,
                    }
                })
                .collect(),
        })
    }

    fn restore_state(&mut self, ck: &NetCheckpoint) -> Result<(), NetRestoreError> {
        if !self.slot_of.is_empty() {
            return Err(NetRestoreError::NotQuiescent);
        }
        if ck.links.len() != self.link_stats.len() {
            return Err(NetRestoreError::LinkCountMismatch {
                expected: self.link_stats.len(),
                got: ck.links.len(),
            });
        }
        // Validate every bandwidth before mutating anything, so a corrupt
        // snapshot leaves the model untouched instead of half-restored.
        for (i, lc) in ck.links.iter().enumerate() {
            let bw = f64::from_bits(lc.bandwidth_bits);
            if !bw.is_finite() || bw <= 0.0 {
                return Err(NetRestoreError::BadBandwidth { link: i });
            }
        }
        self.bytes_delivered = ck.bytes_delivered;
        self.flows_completed = ck.flows_completed;
        self.reallocations = ck.reallocations;
        self.reschedules = ck.reschedules;
        self.link_faults = ck.link_faults;
        self.reroutes = ck.reroutes;
        self.added_hops = ck.added_hops;
        for (i, lc) in ck.links.iter().enumerate() {
            let l = LinkId(i);
            self.topo
                .set_bandwidth(l, f64::from_bits(lc.bandwidth_bits));
            self.topo.set_link_up(l, lc.up);
            self.link_stats[i] = LinkStats {
                bytes: lc.bytes,
                busy: lc.busy,
            };
        }
        // Routes are recomputed on demand from the restored topology —
        // the snapshot is route-cache-free by design.
        self.route_cache.fill(None);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_time(cmds: &[NetCommand], flow: FlowId) -> VirtualTime {
        cmds.iter()
            .find_map(|c| match c {
                NetCommand::Schedule { flow: f, at } if *f == flow => Some(*at),
                _ => None,
            })
            .expect("flow scheduled")
    }

    fn one_link_net(bw: f64, latency: f64) -> FlowNetwork {
        let mut topo = Topology::new(2);
        topo.add_duplex(NodeId(0), NodeId(1), bw, latency);
        FlowNetwork::new(topo)
    }

    #[test]
    fn single_flow_is_latency_plus_bandwidth() {
        let mut net = one_link_net(1e9, 5e-6);
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let at = sched_time(&cmds, f);
        assert!((at.as_seconds() - (5e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn two_flows_halve_bandwidth() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        assert!((sched_time(&cmds, f1).as_seconds() - 2e-3).abs() < 1e-9);
        assert!((sched_time(&cmds, f2).as_seconds() - 2e-3).abs() < 1e-9);
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn completion_restores_bandwidth() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        // Flow 1: 1 MB; flow 2: 2 MB. Shared until f1 finishes at 2 ms
        // (0.5 GB/s each), then f2 drains its remaining 1 MB at 1 GB/s,
        // finishing at 3 ms.
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 2_000_000);
        let f1_done = sched_time(&cmds, f1);
        assert!((f1_done.as_seconds() - 2e-3).abs() < 1e-9);
        let cmds = net.deliver(f1, f1_done);
        let f2_done = sched_time(&cmds, f2);
        assert!(
            (f2_done.as_seconds() - 3e-3).abs() < 1e-9,
            "got {}",
            f2_done.as_seconds()
        );
        net.deliver(f2, f2_done);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.bytes_delivered(), 3_000_000);
        assert_eq!(net.flows_completed(), 2);
    }

    #[test]
    fn reverse_direction_does_not_share() {
        // Full duplex: 0->1 and 1->0 are independent links.
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(1), NodeId(0), 1_000_000);
        let f2_at = sched_time(&cmds, f2);
        assert!((f2_at.as_seconds() - 1e-3).abs() < 1e-9);
        // f1's rate is untouched by the disjoint f2 — delta-rescheduling
        // leaves its armed delivery alone.
        assert!((net.flow_rate(f1).unwrap() - 1e9).abs() < 1.0);
        assert!(!cmds.iter().any(|c| matches!(
            c,
            NetCommand::Schedule { flow, .. } if *flow == f1
        )));
    }

    #[test]
    fn max_min_respects_bottleneck() {
        // 0 -> 1 -> 2 chain, flow A crosses both links, flow B only the
        // second. Both share link 1->2 equally; A's rate on 0->1 is
        // limited to its bottleneck share.
        let topo = Topology::chain(3, 1e9, 0.0);
        let mut net = FlowNetwork::new(topo);
        let t0 = VirtualTime::ZERO;
        let (fa, _) = net.send(t0, NodeId(0), NodeId(2), 10_000_000);
        let (fb, _) = net.send(t0, NodeId(1), NodeId(2), 10_000_000);
        assert!((net.flow_rate(fa).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fb).unwrap() - 0.5e9).abs() < 1.0);
    }

    #[test]
    fn unbottlenecked_flow_gets_leftover() {
        // Flows A, B share link L1; flow C alone on link L2 gets full bw.
        let mut topo = Topology::new(4);
        topo.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        topo.add_duplex(NodeId(2), NodeId(3), 1e9, 0.0);
        let mut net = FlowNetwork::new(topo);
        let t0 = VirtualTime::ZERO;
        let (fa, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (fb, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (fc, _) = net.send(t0, NodeId(2), NodeId(3), 1_000_000);
        assert!((net.flow_rate(fa).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fb).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fc).unwrap() - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn local_transfer_is_instantaneous() {
        let mut net = one_link_net(1e9, 1e-6);
        let (f, cmds) = net.send(VirtualTime::from_seconds(1.0), NodeId(0), NodeId(0), 123);
        assert_eq!(sched_time(&cmds, f), VirtualTime::from_seconds(1.0));
    }

    #[test]
    fn reference_config_is_slower_than_clean() {
        let mut topo_a = Topology::new(2);
        topo_a.add_duplex(NodeId(0), NodeId(1), 1e9, 1e-6);
        let topo_b = topo_a.clone();
        let mut clean = FlowNetwork::new(topo_a);
        let mut reference = FlowNetwork::with_config(topo_b, FlowNetworkConfig::reference());
        let bytes = 64_000_000;
        let (fc, c1) = clean.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let (fr, c2) = reference.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let t_clean = sched_time(&c1, fc);
        let t_ref = sched_time(&c2, fr);
        assert!(t_ref > t_clean);
        // But not wildly slower: within ~10% for a 64 MB message.
        let ratio = t_ref.as_seconds() / t_clean.as_seconds();
        assert!(ratio < 1.10, "ratio {ratio}");
    }

    #[test]
    fn staggered_start_progress_accounting() {
        // f1 runs alone for 1 ms (drains 1 MB of its 2 MB), then f2
        // joins; both at 0.5 GB/s. f1 has 1 MB left -> 2 ms more.
        let mut net = one_link_net(1e9, 0.0);
        let (f1, _) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 2_000_000);
        let t1 = VirtualTime::from_seconds(1e-3);
        let (_f2, cmds) = net.send(t1, NodeId(0), NodeId(1), 2_000_000);
        let f1_done = sched_time(&cmds, f1);
        assert!(
            (f1_done.as_seconds() - 3e-3).abs() < 1e-9,
            "got {}",
            f1_done.as_seconds()
        );
    }

    #[test]
    fn link_stats_track_bytes_and_busy_time() {
        let mut net = one_link_net(1e9, 0.0);
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 2_000_000);
        let done = sched_time(&cmds, f);
        net.deliver(f, done);
        let route = net.topology().route(NodeId(0), NodeId(1)).unwrap();
        let stats = net.link_stats(route[0]);
        assert_eq!(stats.bytes, 2_000_000, "exact payload credit at delivery");
        assert!(
            (stats.busy.as_seconds() - 2e-3).abs() < 1e-9,
            "busy {}",
            stats.busy.as_seconds()
        );
        // The reverse link carried nothing.
        let back = net.topology().route(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(net.link_stats(back[0]).bytes, 0);
        let hottest = net.hottest_links(1);
        assert_eq!(hottest[0].0, route[0]);
    }

    #[test]
    fn fork_pristine_and_absorb_reproduce_the_serial_stats_exactly() {
        // Serial oracle: two flows, back to back.
        let run = |net: &mut dyn NetworkModel, offset: VirtualTime| {
            let mut t = offset;
            for _ in 0..2 {
                let (f, cmds) = net.send(t, NodeId(0), NodeId(1), 1_000_000);
                let done = sched_time(&cmds, f);
                net.deliver(f, done);
                t = done + TimeSpan::from_micros(10.0);
            }
        };
        let mut serial = one_link_net(1e9, 0.0);
        run(&mut serial, VirtualTime::ZERO);
        run(&mut serial, VirtualTime::from_seconds(1.0));

        // Sharded shape: the second batch runs on a pristine fork at a
        // shifted origin, then its stats are absorbed.
        let mut base = one_link_net(1e9, 0.0);
        assert!(base.iteration_invariant());
        run(&mut base, VirtualTime::ZERO);
        let mut fork = base.fork_pristine().expect("flow network forks");
        assert_eq!(fork.in_flight(), 0);
        run(fork.as_mut(), VirtualTime::from_seconds(1.0));
        let snap = fork.stats_snapshot().expect("fork snapshots");
        base.absorb_stats(&snap);

        assert_eq!(base.observe(), serial.observe());
        assert_eq!(
            base.stats_snapshot().expect("snapshot"),
            serial.stats_snapshot().expect("snapshot")
        );
    }

    #[test]
    fn observation_counts_churn_and_links() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        // Second send re-arms f1: one reschedule of churn.
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let obs = net.observe();
        assert_eq!(obs.in_flight, 2);
        assert_eq!(obs.reallocations, 2, "one round per send");
        assert_eq!(obs.reschedules, 1, "f1 re-armed when f2 joined");
        let links = net.observe_links();
        assert_eq!(links.len(), 2, "duplex pair");
        assert_eq!(links[0].label, "n0->n1");
        assert_eq!(links[0].active_flows, 2);
        assert_eq!(links[1].active_flows, 0);

        let done = sched_time(&cmds, f1);
        net.deliver(f1, done);
        net.deliver(f2, done);
        let obs = net.observe();
        assert_eq!(obs.flows_completed, 2);
        assert_eq!(obs.bytes_delivered, 2_000_000);
        // Delivering f1 re-armed f2; delivering f2 re-armed nothing.
        assert_eq!(obs.reschedules, 2);
        assert_eq!(obs.reallocations, 4);
    }

    #[test]
    fn route_cache_amortizes_bfs() {
        let mut net = FlowNetwork::new(Topology::ring(8, 1e9, 0.0));
        let t0 = VirtualTime::ZERO;
        net.send(t0, NodeId(0), NodeId(3), 1_000);
        net.send(t0, NodeId(0), NodeId(5), 1_000);
        net.send(t0, NodeId(0), NodeId(3), 1_000);
        net.send(t0, NodeId(2), NodeId(4), 1_000);
        // One BFS per distinct source, every later send is a cache hit.
        assert_eq!(net.route_cache_stats(), (2, 2));
    }

    #[test]
    fn topology_mutation_invalidates_route_cache() {
        let mut net = one_link_net(1e9, 0.0);
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let done = sched_time(&cmds, f);
        net.deliver(f, done);
        let link = net.topology().route(NodeId(0), NodeId(1)).unwrap()[0];
        net.topology_mut().scale_bandwidth(link, 0.5);
        let (f2, _) = net.send(done, NodeId(0), NodeId(1), 1_000_000);
        assert!(
            (net.flow_rate(f2).unwrap() - 0.5e9).abs() < 1.0,
            "post-mutation send must see the rebuilt cache and new bandwidth"
        );
    }

    /// Drives the same send script through two modes — delivering flows
    /// at exactly their armed times — and asserts bit-identical command
    /// streams and delivery sequences.
    fn assert_modes_agree(a: ReallocationMode, b: ReallocationMode, delta_only: bool) {
        use std::collections::BTreeMap;
        let run = |mode: ReallocationMode| {
            let mut net = FlowNetwork::new(Topology::ring(6, 1e9, 1e-6));
            net.set_reallocation_mode(mode);
            let t = VirtualTime::from_seconds;
            let sends = [
                (t(0.0), NodeId(0), NodeId(2), 4_000_000u64),
                (t(0.0), NodeId(1), NodeId(2), 2_000_000),
                (t(0.001), NodeId(3), NodeId(4), 8_000_000),
                (t(0.002), NodeId(2), NodeId(0), 1_000_000),
            ];
            let mut armed: BTreeMap<FlowId, VirtualTime> = BTreeMap::new();
            let mut log: Vec<Vec<NetCommand>> = Vec::new();
            let mut deliveries: Vec<(VirtualTime, FlowId)> = Vec::new();
            let apply = |armed: &mut BTreeMap<FlowId, VirtualTime>, cmds: &[NetCommand]| {
                for c in cmds {
                    match *c {
                        NetCommand::Schedule { flow, at } => {
                            armed.insert(flow, at);
                        }
                        NetCommand::Cancel { flow } => {
                            armed.remove(&flow);
                        }
                    }
                }
            };
            let mut sends = sends.iter().peekable();
            loop {
                let next_due = armed.iter().map(|(&f, &at)| (at, f)).min();
                let take_send = match (sends.peek(), next_due) {
                    (Some(&&(at, ..)), Some((due, _))) => at <= due,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_send {
                    let &&(at, src, dst, bytes) = sends.peek().unwrap();
                    sends.next();
                    let (_, cmds) = net.send(at, src, dst, bytes);
                    apply(&mut armed, &cmds);
                    log.push(cmds);
                } else {
                    let (due, flow) = next_due.unwrap();
                    armed.remove(&flow);
                    deliveries.push((due, flow));
                    let cmds = net.deliver(flow, due);
                    apply(&mut armed, &cmds);
                    log.push(cmds);
                }
            }
            (log, deliveries, net.reschedules())
        };
        let (log_a, del_a, resched_a) = run(a);
        let (log_b, del_b, resched_b) = run(b);
        assert_eq!(log_a, log_b, "{a:?} and {b:?} command streams diverged");
        assert_eq!(del_a, del_b, "{a:?} and {b:?} delivery order diverged");
        if delta_only {
            assert_eq!(resched_a, resched_b);
        }
    }

    #[test]
    fn incremental_matches_full_bitwise() {
        assert_modes_agree(ReallocationMode::Incremental, ReallocationMode::Full, true);
    }

    #[test]
    fn delta_skips_disjoint_flows() {
        // Two disjoint duplex pairs: a send on the second pair must not
        // touch (or reschedule) the flow on the first.
        let mut topo = Topology::new(4);
        topo.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        topo.add_duplex(NodeId(2), NodeId(3), 1e9, 0.0);
        let mut net = FlowNetwork::new(topo);
        let (f1, _) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let (_f2, cmds) = net.send(VirtualTime::ZERO, NodeId(2), NodeId(3), 1_000_000);
        assert_eq!(cmds.len(), 1, "only the new flow is scheduled");
        assert_eq!(net.reschedules(), 0);
        assert!((net.flow_rate(f1).unwrap() - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "while flows are in flight")]
    fn topology_mutation_guarded() {
        let mut net = one_link_net(1e9, 0.0);
        net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1);
        let _ = net.topology_mut();
    }

    #[test]
    fn degrade_slows_inflight_flow() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        // 2 MB at 1 GB/s: due at 2 ms.
        let (f, cmds) = net.send(t0, NodeId(0), NodeId(1), 2_000_000);
        assert!((sched_time(&cmds, f).as_seconds() - 2e-3).abs() < 1e-9);
        // Halve the link at 1 ms: 1 MB drained, the rest drains at
        // 0.5 GB/s -> 2 ms more, done at 3 ms.
        let cmds = net
            .apply_link_fault(
                VirtualTime::from_seconds(1e-3),
                NodeId(0),
                NodeId(1),
                LinkFault::Degrade { factor: 0.5 },
            )
            .unwrap();
        let at = sched_time(&cmds, f);
        assert!(
            (at.as_seconds() - 3e-3).abs() < 1e-9,
            "got {}",
            at.as_seconds()
        );
        assert_eq!(net.link_faults(), 1);
        assert_eq!(net.reroutes(), 0);
    }

    #[test]
    fn degrade_without_flows_is_quiet() {
        let mut net = one_link_net(1e9, 0.0);
        let cmds = net
            .apply_link_fault(
                VirtualTime::ZERO,
                NodeId(0),
                NodeId(1),
                LinkFault::Degrade { factor: 0.5 },
            )
            .unwrap();
        assert!(cmds.is_empty());
        // A later send sees the degraded bandwidth.
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        assert!((sched_time(&cmds, f).as_seconds() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn link_failure_reroutes_with_added_hops() {
        // Ring of 4: flow 0->1 takes the 1-hop direct link; failing it
        // forces the 3-hop detour 0->3->2->1.
        let mut net = FlowNetwork::new(Topology::ring(4, 1e9, 0.0));
        let t0 = VirtualTime::ZERO;
        let (f, cmds) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        assert!((sched_time(&cmds, f).as_seconds() - 1e-3).abs() < 1e-9);
        let cmds = net
            .apply_link_fault(t0, NodeId(0), NodeId(1), LinkFault::Fail)
            .unwrap();
        // Same bandwidth on the detour, so the delivery time is unchanged
        // bitwise and delta-rescheduling may emit nothing — but the route
        // and the counters must show the detour.
        let _ = cmds;
        assert_eq!(net.reroutes(), 1);
        assert_eq!(net.added_hops(), 2, "1-hop route became 3 hops");
        assert_eq!(net.link_faults(), 1);
        // New sends also avoid the downed link.
        let (f2, _) = net.send(t0, NodeId(0), NodeId(1), 1_000);
        let done = VirtualTime::from_seconds(1.0);
        net.deliver(f, done);
        net.deliver(f2, done);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn link_failure_partitions_inflight_flow() {
        // Chain 0-1-2: failing 1<->2 strands an in-flight 0->2 flow.
        let mut net = FlowNetwork::new(Topology::chain(3, 1e9, 0.0));
        let t0 = VirtualTime::ZERO;
        net.send(t0, NodeId(0), NodeId(2), 1_000_000);
        let err = net
            .apply_link_fault(t0, NodeId(1), NodeId(2), LinkFault::Fail)
            .unwrap_err();
        assert_eq!(
            err,
            PartitionedError {
                src: NodeId(0),
                dst: NodeId(2)
            }
        );
        assert!(err.to_string().contains("no path from n0 to n2"));
    }

    #[test]
    fn try_send_reports_partition_as_error() {
        let mut net = FlowNetwork::new(Topology::chain(3, 1e9, 0.0));
        let t0 = VirtualTime::ZERO;
        net.apply_link_fault(t0, NodeId(1), NodeId(2), LinkFault::Fail)
            .unwrap();
        let err = net.try_send(t0, NodeId(0), NodeId(2), 1_000).unwrap_err();
        assert_eq!(err.dst, NodeId(2));
    }

    #[test]
    fn repair_restores_direct_routes_for_new_sends() {
        let mut net = FlowNetwork::new(Topology::ring(4, 1e9, 0.0));
        let t0 = VirtualTime::ZERO;
        net.apply_link_fault(t0, NodeId(0), NodeId(1), LinkFault::Fail)
            .unwrap();
        let (fa, _) = net.send(t0, NodeId(0), NodeId(1), 1_000);
        // Detour while down...
        let (_, _, _) = net.flow(fa).unwrap();
        let cmds = net
            .apply_link_fault(t0, NodeId(0), NodeId(1), LinkFault::Repair)
            .unwrap();
        assert!(cmds.is_empty(), "repair re-arms nothing");
        // ...and a fresh send after repair uses the direct hop again: with
        // the link up, 1 MB alone finishes in ~1 ms, unaffected by the
        // detoured fa on the other links.
        let (fb, cmds) = net.send(t0, NodeId(1), NodeId(0), 1_000_000);
        assert!((sched_time(&cmds, fb).as_seconds() - 1e-3).abs() < 1e-9);
        assert_eq!(net.link_faults(), 2);
    }

    #[test]
    fn fault_on_unlinked_pair_is_a_noop() {
        let mut net = FlowNetwork::new(Topology::ring(4, 1e9, 0.0));
        let cmds = net
            .apply_link_fault(VirtualTime::ZERO, NodeId(0), NodeId(2), LinkFault::Fail)
            .unwrap();
        assert!(cmds.is_empty());
        assert_eq!(net.link_faults(), 0, "unmatched faults are not counted");
    }
}
