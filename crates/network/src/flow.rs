//! The packet-switching flow network (§4.5 of the paper).

use std::collections::BTreeMap;

use triosim_des::{TimeSpan, VirtualTime};

use crate::model::{FlowId, LinkObservation, NetCommand, NetObservation, NetworkModel};
use crate::topology::{LinkId, NodeId, Topology};

/// Fidelity knobs of the flow network.
///
/// With the default (all-zero) configuration the model is exactly the
/// paper's lightweight network model: route latency plus bytes over
/// fair-shared bandwidth, nothing else. The non-zero knobs add the
/// protocol-level effects the paper explicitly *excludes* ("TrioSim does
/// not model communication protocols or … data transfer unit sizes");
/// [`FlowNetworkConfig::reference`] enables them, turning the same engine
/// into the high-fidelity ground-truth network of this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowNetworkConfig {
    /// Fixed protocol overhead paid once per message, in seconds.
    pub per_message_overhead_s: f64,
    /// Transfer-unit size in bytes; each full-or-partial chunk pays
    /// [`chunk_overhead_s`](FlowNetworkConfig::chunk_overhead_s). Zero
    /// disables chunking.
    pub chunk_bytes: u64,
    /// Per-chunk protocol overhead, in seconds.
    pub chunk_overhead_s: f64,
    /// Bandwidth ramp: a message of `B` bytes drains as if it were
    /// `B + ramp` bytes, derating small transfers (protocol slow-start,
    /// per-transfer setup DMA work).
    pub bandwidth_ramp_bytes: f64,
}

impl Default for FlowNetworkConfig {
    fn default() -> Self {
        FlowNetworkConfig {
            per_message_overhead_s: 0.0,
            chunk_bytes: 0,
            chunk_overhead_s: 0.0,
            bandwidth_ramp_bytes: 0.0,
        }
    }
}

impl FlowNetworkConfig {
    /// The high-fidelity reference configuration used as ground truth:
    /// NCCL-like 4 MiB transfer units with a small per-chunk cost, a
    /// per-message protocol overhead, and a small-message bandwidth ramp.
    pub fn reference() -> Self {
        FlowNetworkConfig {
            per_message_overhead_s: 5.0e-6,
            chunk_bytes: 4 << 20,
            chunk_overhead_s: 1.5e-6,
            bandwidth_ramp_bytes: 256.0 * 1024.0,
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    route: Vec<LinkId>,
    /// Bytes (including ramp) still to drain.
    remaining: f64,
    /// Currently allocated rate in bytes/s.
    rate: f64,
    /// Draining starts only after the latency + protocol overhead phase.
    drain_start: VirtualTime,
    last_update: VirtualTime,
}

/// Cumulative per-link activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Payload bytes that crossed this link.
    pub bytes: f64,
    /// Seconds during which at least one flow was draining through it.
    pub busy_s: f64,
}

/// The paper's lightweight packet-switching network model.
///
/// Message transfer follows the 4-step process of Figure 5: shortest-path
/// routing, fair bandwidth allocation, scheduling a potential delivery
/// event, and — on any flow start or completion — recomputation of all
/// allocations and rescheduling of all in-transit deliveries.
///
/// Bandwidth sharing is *max-min fair* (progressive filling): concurrent
/// flows through a link split it evenly unless bottlenecked elsewhere.
///
/// # Example
///
/// ```rust
/// use triosim_des::VirtualTime;
/// use triosim_network::{FlowNetwork, NetCommand, NetworkModel, NodeId, Topology};
///
/// // Two flows sharing one 10 GB/s link: each gets 5 GB/s.
/// let mut topo = Topology::new(2);
/// topo.add_duplex(NodeId(0), NodeId(1), 10e9, 0.0);
/// let mut net = FlowNetwork::new(topo);
///
/// let (_f1, cmds1) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 10_000_000_000);
/// let NetCommand::Schedule { at: alone, .. } = cmds1[0] else { panic!() };
/// assert!((alone.as_seconds() - 1.0).abs() < 1e-9, "1 s alone");
///
/// let (_f2, cmds2) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 10_000_000_000);
/// // Both flows now finish at 2 s.
/// for cmd in cmds2 {
///     let NetCommand::Schedule { at, .. } = cmd else { panic!() };
///     assert!((at.as_seconds() - 2.0).abs() < 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct FlowNetwork {
    topo: Topology,
    config: FlowNetworkConfig,
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_flow: u64,
    bytes_delivered: u64,
    flows_completed: u64,
    reallocations: u64,
    reschedules: u64,
    link_stats: Vec<LinkStats>,
    last_progress: VirtualTime,
}

impl FlowNetwork {
    /// Creates the model over a topology with the clean (paper-default)
    /// configuration.
    pub fn new(topo: Topology) -> Self {
        Self::with_config(topo, FlowNetworkConfig::default())
    }

    /// Creates the model with explicit fidelity knobs.
    pub fn with_config(topo: Topology, config: FlowNetworkConfig) -> Self {
        let links = topo.link_count();
        FlowNetwork {
            topo,
            config,
            flows: BTreeMap::new(),
            next_flow: 0,
            bytes_delivered: 0,
            flows_completed: 0,
            reallocations: 0,
            reschedules: 0,
            link_stats: vec![LinkStats::default(); links],
            last_progress: VirtualTime::ZERO,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (used to inject Hop-style slowdowns between
    /// simulations; do not mutate while flows are in flight).
    ///
    /// # Panics
    ///
    /// Panics if flows are currently in flight.
    pub fn topology_mut(&mut self) -> &mut Topology {
        assert!(
            self.flows.is_empty(),
            "cannot mutate the topology while flows are in flight"
        );
        &mut self.topo
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Total flows completed so far.
    pub fn flows_completed(&self) -> u64 {
        self.flows_completed
    }

    /// Bandwidth-reallocation rounds performed so far (one per flow
    /// start or completion).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Delivery events re-armed because a reallocation changed an
    /// in-flight flow's rate — the model's reallocation churn.
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Source, destination, and size of an in-flight flow.
    pub fn flow(&self, id: FlowId) -> Option<(NodeId, NodeId, u64)> {
        self.flows.get(&id).map(|f| (f.src, f.dst, f.bytes))
    }

    /// The current fair-share rate of an in-flight flow, bytes/s.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Protocol overhead for a message under the current config.
    fn message_overhead_s(&self, bytes: u64) -> f64 {
        let mut o = self.config.per_message_overhead_s;
        if self.config.chunk_bytes > 0 {
            let chunks = bytes.div_ceil(self.config.chunk_bytes).max(1);
            o += chunks as f64 * self.config.chunk_overhead_s;
        }
        o
    }

    /// Advances every flow's drained-bytes accounting to `now`, crediting
    /// per-link byte and busy-time counters along the way.
    fn update_progress(&mut self, now: VirtualTime) {
        let mut busy: Vec<bool> = vec![false; self.link_stats.len()];
        for f in self.flows.values_mut() {
            let from = f.last_update.max(f.drain_start);
            if now > from && f.rate > 0.0 {
                let dt = (now - from).as_seconds();
                let drained = (f.rate * dt).min(f.remaining);
                f.remaining -= drained;
                for &l in &f.route {
                    self.link_stats[l.0].bytes += drained;
                    busy[l.0] = true;
                }
            }
            f.last_update = now;
        }
        if now > self.last_progress {
            let dt = (now - self.last_progress).as_seconds();
            for (stat, was_busy) in self.link_stats.iter_mut().zip(&busy) {
                if *was_busy {
                    stat.busy_s += dt;
                }
            }
            self.last_progress = now;
        }
    }

    /// Cumulative activity counters for one link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.link_stats[link.0]
    }

    /// The `k` busiest links by bytes carried, descending.
    pub fn hottest_links(&self, k: usize) -> Vec<(LinkId, LinkStats)> {
        let mut v: Vec<(LinkId, LinkStats)> = self
            .link_stats
            .iter()
            .enumerate()
            .map(|(i, &s)| (LinkId(i), s))
            .collect();
        v.sort_by(|a, b| b.1.bytes.partial_cmp(&a.1.bytes).expect("finite"));
        v.truncate(k);
        v
    }

    /// Recomputes max-min fair rates and returns a `Schedule` command for
    /// every active flow. `new_flow` marks a flow whose schedule is its
    /// initial arming rather than reallocation churn.
    fn reallocate(&mut self, now: VirtualTime, new_flow: Option<FlowId>) -> Vec<NetCommand> {
        // Progressive filling: all unfrozen flows grow at the same rate;
        // each iteration saturates at least one link and freezes its
        // flows.
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut frozen: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut unfrozen: Vec<FlowId> = ids
            .iter()
            .copied()
            .filter(|id| !self.flows[id].route.is_empty())
            .collect();
        let mut cap: BTreeMap<LinkId, f64> = BTreeMap::new();
        for id in &unfrozen {
            for &l in &self.flows[id].route {
                cap.entry(l).or_insert_with(|| self.topo.bandwidth(l));
            }
        }
        let mut level = 0.0f64;
        while !unfrozen.is_empty() {
            // Count unfrozen flows per link.
            let mut count: BTreeMap<LinkId, usize> = BTreeMap::new();
            for id in &unfrozen {
                for &l in &self.flows[id].route {
                    *count.entry(l).or_insert(0) += 1;
                }
            }
            // Uniform headroom until the tightest link saturates.
            let delta = count
                .iter()
                .map(|(l, &c)| cap[l] / c as f64)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(delta.is_finite() && delta >= 0.0);
            level += delta;
            // Drain capacity and find saturated links.
            let mut saturated: Vec<LinkId> = Vec::new();
            for (&l, &c) in &count {
                let e = cap.get_mut(&l).expect("capacity tracked");
                *e -= delta * c as f64;
                if *e <= 1e-6 * self.topo.bandwidth(l) {
                    *e = 0.0;
                    saturated.push(l);
                }
            }
            // Freeze every unfrozen flow passing a saturated link.
            let (now_frozen, rest): (Vec<FlowId>, Vec<FlowId>) = unfrozen
                .into_iter()
                .partition(|id| self.flows[id].route.iter().any(|l| saturated.contains(l)));
            debug_assert!(
                !now_frozen.is_empty(),
                "progressive filling must freeze at least one flow per round"
            );
            for id in now_frozen {
                frozen.insert(id, level);
            }
            unfrozen = rest;
        }

        let mut cmds = Vec::with_capacity(ids.len());
        for id in ids {
            let f = self.flows.get_mut(&id).expect("flow exists");
            f.rate = frozen.get(&id).copied().unwrap_or(0.0);
            let base = now.max(f.drain_start);
            let at = if f.remaining <= 0.0 {
                base
            } else if f.rate > 0.0 {
                base + TimeSpan::from_seconds(f.remaining / f.rate)
            } else {
                // Local (src == dst) flows have empty routes and zero
                // remaining; any other rate-0 case is a config bug.
                unreachable!("a routed flow always receives bandwidth")
            };
            cmds.push(NetCommand::Schedule { flow: id, at });
        }
        self.reallocations += 1;
        self.reschedules += cmds
            .iter()
            .filter(|c| match c {
                NetCommand::Schedule { flow, .. } => Some(*flow) != new_flow,
                NetCommand::Cancel { .. } => false,
            })
            .count() as u64;
        cmds
    }
}

impl NetworkModel for FlowNetwork {
    fn send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (FlowId, Vec<NetCommand>) {
        let route = self
            .topo
            .route(src, dst)
            .expect("send endpoints must be connected");
        let id = FlowId(self.next_flow);
        self.next_flow += 1;

        let latency = self.topo.route_latency(&route) + self.message_overhead_s(bytes);
        let remaining = if route.is_empty() {
            0.0 // local copy: modeled as instantaneous (same-device data)
        } else {
            bytes as f64 + self.config.bandwidth_ramp_bytes
        };
        self.update_progress(now);
        self.flows.insert(
            id,
            ActiveFlow {
                src,
                dst,
                bytes,
                route,
                remaining,
                rate: 0.0,
                drain_start: now + TimeSpan::from_seconds(latency),
                last_update: now,
            },
        );
        (id, self.reallocate(now, Some(id)))
    }

    fn deliver(&mut self, flow: FlowId, now: VirtualTime) -> Vec<NetCommand> {
        self.update_progress(now);
        let f = self
            .flows
            .remove(&flow)
            .expect("delivered flow must be in flight");
        debug_assert!(
            f.remaining <= 1.0,
            "flow {flow} delivered with {} bytes left",
            f.remaining
        );
        self.bytes_delivered += f.bytes;
        self.flows_completed += 1;
        self.reallocate(now, None)
    }

    fn in_flight(&self) -> usize {
        self.flows.len()
    }

    fn observe(&self) -> NetObservation {
        NetObservation {
            in_flight: self.flows.len(),
            bytes_delivered: self.bytes_delivered,
            flows_completed: self.flows_completed,
            reallocations: self.reallocations,
            reschedules: self.reschedules,
        }
    }

    fn observe_links(&self) -> Vec<LinkObservation> {
        (0..self.link_stats.len())
            .map(|i| {
                let link = LinkId(i);
                let (src, dst) = self.topo.endpoints(link);
                LinkObservation {
                    label: format!("n{}->n{}", src.0, dst.0),
                    bandwidth: self.topo.bandwidth(link),
                    bytes: self.link_stats[i].bytes,
                    busy_s: self.link_stats[i].busy_s,
                    active_flows: self
                        .flows
                        .values()
                        .filter(|f| f.route.contains(&link))
                        .count(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_time(cmds: &[NetCommand], flow: FlowId) -> VirtualTime {
        cmds.iter()
            .find_map(|c| match c {
                NetCommand::Schedule { flow: f, at } if *f == flow => Some(*at),
                _ => None,
            })
            .expect("flow scheduled")
    }

    fn one_link_net(bw: f64, latency: f64) -> FlowNetwork {
        let mut topo = Topology::new(2);
        topo.add_duplex(NodeId(0), NodeId(1), bw, latency);
        FlowNetwork::new(topo)
    }

    #[test]
    fn single_flow_is_latency_plus_bandwidth() {
        let mut net = one_link_net(1e9, 5e-6);
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let at = sched_time(&cmds, f);
        assert!((at.as_seconds() - (5e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn two_flows_halve_bandwidth() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        assert!((sched_time(&cmds, f1).as_seconds() - 2e-3).abs() < 1e-9);
        assert!((sched_time(&cmds, f2).as_seconds() - 2e-3).abs() < 1e-9);
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn completion_restores_bandwidth() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        // Flow 1: 1 MB; flow 2: 2 MB. Shared until f1 finishes at 2 ms
        // (0.5 GB/s each), then f2 drains its remaining 1 MB at 1 GB/s,
        // finishing at 3 ms.
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 2_000_000);
        let f1_done = sched_time(&cmds, f1);
        assert!((f1_done.as_seconds() - 2e-3).abs() < 1e-9);
        let cmds = net.deliver(f1, f1_done);
        let f2_done = sched_time(&cmds, f2);
        assert!(
            (f2_done.as_seconds() - 3e-3).abs() < 1e-9,
            "got {}",
            f2_done.as_seconds()
        );
        net.deliver(f2, f2_done);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.bytes_delivered(), 3_000_000);
        assert_eq!(net.flows_completed(), 2);
    }

    #[test]
    fn reverse_direction_does_not_share() {
        // Full duplex: 0->1 and 1->0 are independent links.
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (f2, cmds) = net.send(t0, NodeId(1), NodeId(0), 1_000_000);
        assert!((sched_time(&cmds, f1).as_seconds() - 1e-3).abs() < 1e-9);
        assert!((sched_time(&cmds, f2).as_seconds() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn max_min_respects_bottleneck() {
        // 0 -> 1 -> 2 chain, flow A crosses both links, flow B only the
        // second. Both share link 1->2 equally; A's rate on 0->1 is
        // limited to its bottleneck share.
        let topo = Topology::chain(3, 1e9, 0.0);
        let mut net = FlowNetwork::new(topo);
        let t0 = VirtualTime::ZERO;
        let (fa, _) = net.send(t0, NodeId(0), NodeId(2), 10_000_000);
        let (fb, _) = net.send(t0, NodeId(1), NodeId(2), 10_000_000);
        assert!((net.flow_rate(fa).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fb).unwrap() - 0.5e9).abs() < 1.0);
    }

    #[test]
    fn unbottlenecked_flow_gets_leftover() {
        // Flows A, B share link L1; flow C alone on link L2 gets full bw.
        let mut topo = Topology::new(4);
        topo.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        topo.add_duplex(NodeId(2), NodeId(3), 1e9, 0.0);
        let mut net = FlowNetwork::new(topo);
        let t0 = VirtualTime::ZERO;
        let (fa, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (fb, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let (fc, _) = net.send(t0, NodeId(2), NodeId(3), 1_000_000);
        assert!((net.flow_rate(fa).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fb).unwrap() - 0.5e9).abs() < 1.0);
        assert!((net.flow_rate(fc).unwrap() - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn local_transfer_is_instantaneous() {
        let mut net = one_link_net(1e9, 1e-6);
        let (f, cmds) = net.send(VirtualTime::from_seconds(1.0), NodeId(0), NodeId(0), 123);
        assert_eq!(sched_time(&cmds, f), VirtualTime::from_seconds(1.0));
    }

    #[test]
    fn reference_config_is_slower_than_clean() {
        let mut topo_a = Topology::new(2);
        topo_a.add_duplex(NodeId(0), NodeId(1), 1e9, 1e-6);
        let topo_b = topo_a.clone();
        let mut clean = FlowNetwork::new(topo_a);
        let mut reference = FlowNetwork::with_config(topo_b, FlowNetworkConfig::reference());
        let bytes = 64_000_000;
        let (fc, c1) = clean.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let (fr, c2) = reference.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let t_clean = sched_time(&c1, fc);
        let t_ref = sched_time(&c2, fr);
        assert!(t_ref > t_clean);
        // But not wildly slower: within ~10% for a 64 MB message.
        let ratio = t_ref.as_seconds() / t_clean.as_seconds();
        assert!(ratio < 1.10, "ratio {ratio}");
    }

    #[test]
    fn staggered_start_progress_accounting() {
        // f1 runs alone for 1 ms (drains 1 MB of its 2 MB), then f2
        // joins; both at 0.5 GB/s. f1 has 1 MB left -> 2 ms more.
        let mut net = one_link_net(1e9, 0.0);
        let (f1, _) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 2_000_000);
        let t1 = VirtualTime::from_seconds(1e-3);
        let (_f2, cmds) = net.send(t1, NodeId(0), NodeId(1), 2_000_000);
        let f1_done = sched_time(&cmds, f1);
        assert!(
            (f1_done.as_seconds() - 3e-3).abs() < 1e-9,
            "got {}",
            f1_done.as_seconds()
        );
    }

    #[test]
    fn link_stats_track_bytes_and_busy_time() {
        let mut net = one_link_net(1e9, 0.0);
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 2_000_000);
        let done = sched_time(&cmds, f);
        net.deliver(f, done);
        let route = net.topology().route(NodeId(0), NodeId(1)).unwrap();
        let stats = net.link_stats(route[0]);
        assert!(
            (stats.bytes - 2_000_000.0).abs() < 1.0,
            "bytes {}",
            stats.bytes
        );
        assert!((stats.busy_s - 2e-3).abs() < 1e-9, "busy {}", stats.busy_s);
        // The reverse link carried nothing.
        let back = net.topology().route(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(net.link_stats(back[0]).bytes, 0.0);
        let hottest = net.hottest_links(1);
        assert_eq!(hottest[0].0, route[0]);
    }

    #[test]
    fn observation_counts_churn_and_links() {
        let mut net = one_link_net(1e9, 0.0);
        let t0 = VirtualTime::ZERO;
        let (f1, _) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        // Second send re-arms f1: one reschedule of churn.
        let (f2, cmds) = net.send(t0, NodeId(0), NodeId(1), 1_000_000);
        let obs = net.observe();
        assert_eq!(obs.in_flight, 2);
        assert_eq!(obs.reallocations, 2, "one round per send");
        assert_eq!(obs.reschedules, 1, "f1 re-armed when f2 joined");
        let links = net.observe_links();
        assert_eq!(links.len(), 2, "duplex pair");
        assert_eq!(links[0].label, "n0->n1");
        assert_eq!(links[0].active_flows, 2);
        assert_eq!(links[1].active_flows, 0);

        let done = sched_time(&cmds, f1);
        net.deliver(f1, done);
        net.deliver(f2, done);
        let obs = net.observe();
        assert_eq!(obs.flows_completed, 2);
        assert_eq!(obs.bytes_delivered, 2_000_000);
        // Delivering f1 re-armed f2; delivering f2 re-armed nothing.
        assert_eq!(obs.reschedules, 2);
        assert_eq!(obs.reallocations, 4);
    }

    #[test]
    #[should_panic(expected = "while flows are in flight")]
    fn topology_mutation_guarded() {
        let mut net = one_link_net(1e9, 0.0);
        net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1);
        let _ = net.topology_mut();
    }
}
