//! The circuit-switching photonic network model (case study §7.1).
//!
//! Models Lightmatter Passage-style wafer-scale photonic interconnects:
//! before data can move between two chiplets, a *logical circuit* must be
//! established (configurable setup latency); once established, the
//! circuit delivers a fixed high bandwidth with distance-independent,
//! near-zero propagation latency. Each node has a limited number of
//! photonic ports; when a new circuit is needed on a fully occupied node,
//! the least-recently-used idle circuit is torn down — exactly the
//! behaviour described in the paper's "Photonic network model
//! implementation".

use std::collections::BTreeMap;

use triosim_des::{TimeSpan, VirtualTime};

use crate::model::{FlowId, NetCommand, NetObservation, NetworkModel};
use crate::topology::NodeId;

/// Parameters of the photonic interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotonicConfig {
    /// Photonic ports per chiplet (each live circuit occupies one port at
    /// each endpoint).
    pub ports_per_node: usize,
    /// Bandwidth of one established circuit, bytes/s.
    pub circuit_bandwidth: f64,
    /// Time to establish a new logical circuit, seconds.
    pub setup_latency_s: f64,
    /// Propagation latency once established (distance-independent on the
    /// wafer), seconds.
    pub propagation_latency_s: f64,
}

impl PhotonicConfig {
    /// The paper's case-study configuration: 484 GB/s across 8 links per
    /// GPU and a 20 ms link-establishment latency.
    pub fn passage() -> Self {
        PhotonicConfig {
            ports_per_node: 8,
            circuit_bandwidth: 484.0e9 / 8.0,
            setup_latency_s: 20.0e-3,
            propagation_latency_s: 0.05e-6,
        }
    }
}

impl Default for PhotonicConfig {
    fn default() -> Self {
        Self::passage()
    }
}

#[derive(Debug, Clone, Copy)]
struct Circuit {
    /// When the circuit finishes establishment.
    ready_at: VirtualTime,
    /// Transfers on a circuit serialize; this is when the last one ends.
    busy_until: VirtualTime,
    /// LRU key for eviction.
    last_used: VirtualTime,
}

#[derive(Debug, Clone, Copy)]
struct PhotonicFlow {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
}

/// Circuit-switching photonic network (any chiplet to any chiplet).
///
/// Unlike [`FlowNetwork`](crate::FlowNetwork), circuits do not share
/// bandwidth — transfers on the same circuit serialize, and distinct
/// circuits are independent — so `send` never needs to reschedule other
/// flows' deliveries.
///
/// # Example
///
/// ```rust
/// use triosim_des::VirtualTime;
/// use triosim_network::{NetCommand, NetworkModel, NodeId, PhotonicConfig, PhotonicNetwork};
///
/// let mut net = PhotonicNetwork::new(84, PhotonicConfig::passage());
/// let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(41), 1 << 20);
/// let NetCommand::Schedule { at, .. } = cmds[0] else { panic!() };
/// // First transfer pays the 20 ms circuit-establishment latency.
/// assert!(at.as_seconds() > 20e-3);
/// # let _ = f;
/// ```
#[derive(Debug)]
pub struct PhotonicNetwork {
    nodes: usize,
    config: PhotonicConfig,
    circuits: BTreeMap<(NodeId, NodeId), Circuit>,
    flows: BTreeMap<FlowId, PhotonicFlow>,
    next_flow: u64,
    circuits_established: u64,
    circuits_evicted: u64,
    bytes_delivered: u64,
    flows_completed: u64,
    /// Nodes reached over a plain electrical side channel instead of
    /// photonic circuits (the host's PCIe uplink on a wafer system).
    bypass: BTreeMap<NodeId, (f64, f64)>,
}

impl PhotonicNetwork {
    /// Creates a wafer of `nodes` chiplets.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the config has no ports.
    pub fn new(nodes: usize, config: PhotonicConfig) -> Self {
        assert!(nodes > 0, "need at least one chiplet");
        assert!(config.ports_per_node > 0, "need at least one port per node");
        PhotonicNetwork {
            nodes,
            config,
            circuits: BTreeMap::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            circuits_established: 0,
            circuits_evicted: 0,
            bytes_delivered: 0,
            flows_completed: 0,
            bypass: BTreeMap::new(),
        }
    }

    /// Routes every flow touching `node` over a dedicated electrical side
    /// channel (`bandwidth` bytes/s, `latency` seconds) instead of a
    /// photonic circuit. Wafer-scale systems keep the host's PCIe uplink
    /// electrical; only chiplet-to-chiplet traffic is photonic.
    pub fn set_electrical_bypass(&mut self, node: NodeId, bandwidth: f64, latency: f64) {
        assert!(
            bandwidth > 0.0 && latency >= 0.0,
            "invalid bypass parameters"
        );
        self.bypass.insert(node, (bandwidth, latency));
    }

    /// Total circuits ever established.
    pub fn circuits_established(&self) -> u64 {
        self.circuits_established
    }

    /// Total circuits torn down to free ports.
    pub fn circuits_evicted(&self) -> u64 {
        self.circuits_evicted
    }

    /// Total payload bytes delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Number of currently established circuits.
    pub fn live_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// Source, destination, and size of an in-flight flow.
    pub fn flow(&self, id: FlowId) -> Option<(NodeId, NodeId, u64)> {
        self.flows.get(&id).map(|f| (f.src, f.dst, f.bytes))
    }

    fn ports_in_use(&self, node: NodeId) -> usize {
        self.circuits
            .keys()
            .filter(|(a, b)| *a == node || *b == node)
            .count()
    }

    /// Frees one port on `node` by evicting its least-recently-used idle
    /// circuit. Returns the time the port becomes free (immediately for an
    /// idle victim; after `busy_until` when every circuit is busy).
    fn free_port(&mut self, node: NodeId, now: VirtualTime) -> VirtualTime {
        let mine: Vec<(NodeId, NodeId)> = self
            .circuits
            .keys()
            .filter(|(a, b)| *a == node || *b == node)
            .copied()
            .collect();
        // Prefer idle circuits, LRU first; fall back to the one that
        // frees up soonest.
        let victim = mine
            .iter()
            .filter(|k| self.circuits[k].busy_until <= now)
            .min_by_key(|k| (self.circuits[k].last_used, **k))
            .or_else(|| {
                mine.iter()
                    .min_by_key(|k| (self.circuits[k].busy_until, **k))
            })
            .copied()
            .expect("a full node always has circuits to evict");
        let free_at = self.circuits[&victim].busy_until.max(now);
        self.circuits.remove(&victim);
        self.circuits_evicted += 1;
        free_at
    }
}

impl NetworkModel for PhotonicNetwork {
    fn send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (FlowId, Vec<NetCommand>) {
        assert!(src.0 < self.nodes && dst.0 < self.nodes, "unknown chiplet");
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(id, PhotonicFlow { src, dst, bytes });

        if src == dst {
            return (id, vec![NetCommand::Schedule { flow: id, at: now }]);
        }

        // Electrical side channels (host uplinks) skip circuit switching.
        for endpoint in [src, dst] {
            if let Some(&(bw, lat)) = self.bypass.get(&endpoint) {
                let done = now + TimeSpan::from_seconds(lat + bytes as f64 / bw);
                return (id, vec![NetCommand::Schedule { flow: id, at: done }]);
            }
        }

        let key = (src, dst);
        if !self.circuits.contains_key(&key) {
            // Establish a new circuit, freeing ports if necessary.
            let mut establish_from = now;
            if self.ports_in_use(src) >= self.config.ports_per_node {
                establish_from = establish_from.max(self.free_port(src, now));
            }
            if self.ports_in_use(dst) >= self.config.ports_per_node {
                establish_from = establish_from.max(self.free_port(dst, now));
            }
            let ready_at = establish_from + TimeSpan::from_seconds(self.config.setup_latency_s);
            self.circuits.insert(
                key,
                Circuit {
                    ready_at,
                    busy_until: ready_at,
                    last_used: now,
                },
            );
            self.circuits_established += 1;
        }

        let circuit = self.circuits.get_mut(&key).expect("just ensured");
        let start = now.max(circuit.ready_at).max(circuit.busy_until);
        let transfer =
            self.config.propagation_latency_s + bytes as f64 / self.config.circuit_bandwidth;
        let done = start + TimeSpan::from_seconds(transfer);
        circuit.busy_until = done;
        circuit.last_used = done;

        (id, vec![NetCommand::Schedule { flow: id, at: done }])
    }

    fn deliver(&mut self, flow: FlowId, _now: VirtualTime) -> Vec<NetCommand> {
        let f = self
            .flows
            .remove(&flow)
            .expect("delivered flow must be in flight");
        self.bytes_delivered += f.bytes;
        self.flows_completed += 1;
        Vec::new()
    }

    fn in_flight(&self) -> usize {
        self.flows.len()
    }

    fn observe(&self) -> NetObservation {
        NetObservation {
            in_flight: self.flows.len(),
            bytes_delivered: self.bytes_delivered,
            flows_completed: self.flows_completed,
            // Circuit switching never reallocates shared bandwidth and
            // has no fault support, so the churn and fault counters are
            // structurally zero.
            ..NetObservation::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_of(cmds: &[NetCommand]) -> VirtualTime {
        match cmds[0] {
            NetCommand::Schedule { at, .. } => at,
            NetCommand::Cancel { .. } => panic!("expected schedule"),
        }
    }

    #[test]
    fn first_transfer_pays_setup() {
        let cfg = PhotonicConfig::passage();
        let mut net = PhotonicNetwork::new(4, cfg);
        let (_, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 60_500_000);
        let t = at_of(&cmds).as_seconds();
        let expected = 20e-3 + 0.05e-6 + 60_500_000.0 / cfg.circuit_bandwidth;
        assert!((t - expected).abs() < 1e-9, "got {t}, want {expected}");
        assert_eq!(net.circuits_established(), 1);
    }

    #[test]
    fn reused_circuit_skips_setup() {
        let cfg = PhotonicConfig::passage();
        let mut net = PhotonicNetwork::new(4, cfg);
        let (f1, c1) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        let t1 = at_of(&c1);
        net.deliver(f1, t1);
        let (_, c2) = net.send(t1, NodeId(0), NodeId(1), 1 << 20);
        let dt = (at_of(&c2) - t1).as_seconds();
        let expected = 0.05e-6 + (1u64 << 20) as f64 / cfg.circuit_bandwidth;
        assert!((dt - expected).abs() < 1e-9, "reuse cost {dt}");
        assert_eq!(net.circuits_established(), 1, "no new circuit");
    }

    #[test]
    fn same_circuit_serializes_transfers() {
        let cfg = PhotonicConfig::passage();
        let mut net = PhotonicNetwork::new(4, cfg);
        let (_, c1) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        let (_, c2) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        let per = (1u64 << 20) as f64 / cfg.circuit_bandwidth + 0.05e-6;
        let gap = (at_of(&c2) - at_of(&c1)).as_seconds();
        assert!((gap - per).abs() < 1e-9, "second waits for first");
    }

    #[test]
    fn distinct_circuits_run_in_parallel() {
        let cfg = PhotonicConfig::passage();
        let mut net = PhotonicNetwork::new(4, cfg);
        let (_, c1) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        let (_, c2) = net.send(VirtualTime::ZERO, NodeId(2), NodeId(3), 1 << 20);
        assert_eq!(at_of(&c1), at_of(&c2));
    }

    #[test]
    fn port_exhaustion_evicts_lru() {
        let cfg = PhotonicConfig {
            ports_per_node: 2,
            ..PhotonicConfig::passage()
        };
        let mut net = PhotonicNetwork::new(4, cfg);
        let t = |s: f64| VirtualTime::from_seconds(s);
        // Node 0 talks to 1 and 2 (both ports used), then to 3.
        let (f1, c1) = net.send(t(0.0), NodeId(0), NodeId(1), 1024);
        net.deliver(f1, at_of(&c1));
        let (f2, c2) = net.send(t(1.0), NodeId(0), NodeId(2), 1024);
        net.deliver(f2, at_of(&c2));
        assert_eq!(net.live_circuits(), 2);
        let (_, _c3) = net.send(t(2.0), NodeId(0), NodeId(3), 1024);
        assert_eq!(net.circuits_evicted(), 1);
        assert_eq!(net.live_circuits(), 2, "evicted one, added one");
        // The LRU victim was (0,1); talking to 1 again re-establishes.
        let before = net.circuits_established();
        net.send(t(3.0), NodeId(0), NodeId(2), 1024);
        assert_eq!(net.circuits_established(), before, "(0,2) survived");
    }

    #[test]
    fn local_transfer_immediate() {
        let mut net = PhotonicNetwork::new(2, PhotonicConfig::passage());
        let (_, cmds) = net.send(
            VirtualTime::from_seconds(5.0),
            NodeId(1),
            NodeId(1),
            1 << 30,
        );
        assert_eq!(at_of(&cmds), VirtualTime::from_seconds(5.0));
    }

    #[test]
    fn electrical_bypass_skips_circuits() {
        let mut net = PhotonicNetwork::new(4, PhotonicConfig::passage());
        net.set_electrical_bypass(NodeId(0), 20e9, 1e-6);
        let (_, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(2), 20_000_000);
        let t = at_of(&cmds).as_seconds();
        assert!((t - (1e-6 + 1e-3)).abs() < 1e-9, "no 20 ms setup, got {t}");
        assert_eq!(net.circuits_established(), 0);
    }

    #[test]
    fn delivery_accounting() {
        let mut net = PhotonicNetwork::new(2, PhotonicConfig::passage());
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 777);
        assert_eq!(net.in_flight(), 1);
        let out = net.deliver(f, at_of(&cmds));
        assert!(out.is_empty());
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.bytes_delivered(), 777);
    }
}
