//! The pluggable network-model interface.
//!
//! The paper emphasizes that a TrioSim network model "only requires
//! implementing the Send and Deliver functions". [`NetworkModel`] is that
//! contract. Because network models cannot own the simulator's event
//! queue (the simulator does), every operation returns a list of
//! [`NetCommand`]s — schedule or cancel delivery events — that the caller
//! applies to its queue. Deterministic and allocation-light.

use std::fmt;

use serde::{Deserialize, Serialize};
use triosim_des::{TimeSpan, VirtualTime};

use crate::topology::NodeId;

/// Identifier of one in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// An instruction from the network model to the simulation loop.
///
/// `Schedule` means: (re-)arm the delivery event of `flow` at `at`,
/// cancelling any previously armed delivery for the same flow. `Cancel`
/// means: disarm it without a replacement (the flow's finish time is
/// currently unknown, e.g. it is queued behind a busy photonic circuit).
///
/// Models are not required to re-emit `Schedule` for flows whose rate a
/// reallocation left unchanged: the previously armed delivery event is
/// still exact, so the absence of a command *is* the delta-rescheduling
/// contract. Callers must keep armed events live until a new `Schedule`
/// or `Cancel` replaces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetCommand {
    /// Arm (or re-arm) the delivery event for a flow.
    Schedule {
        /// The flow whose delivery fires.
        flow: FlowId,
        /// Absolute virtual time of delivery under current allocations.
        at: VirtualTime,
    },
    /// Disarm the delivery event for a flow.
    Cancel {
        /// The flow whose delivery is disarmed.
        flow: FlowId,
    },
}

/// Cumulative, whole-network observable counters.
///
/// `reallocations` counts bandwidth-reallocation rounds (every flow
/// start/completion triggers one in a fair-sharing model);
/// `reschedules` counts delivery events that were re-armed as a result —
/// the reallocation *churn* that dominates flow-model cost on congested
/// topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetObservation {
    /// Flows currently in flight.
    pub in_flight: usize,
    /// Payload bytes delivered so far.
    pub bytes_delivered: u64,
    /// Flows completed so far.
    pub flows_completed: u64,
    /// Bandwidth-reallocation rounds performed.
    pub reallocations: u64,
    /// Delivery events re-armed by reallocation (churn).
    pub reschedules: u64,
    /// Link faults applied (degradations, failures, repairs).
    pub link_faults: u64,
    /// In-flight flows rerouted around a failed link.
    pub reroutes: u64,
    /// Extra hops accumulated by those reroutes (new route length minus
    /// old, summed over all rerouted flows).
    pub added_hops: u64,
}

/// Cumulative packet-level counters, reported only by models that
/// simulate individual packets (the packet fidelity tier).
///
/// `queue_depth_hist[i]` counts switch-queue enqueues observed at a
/// waiting depth in `[2^(i-1), 2^i)` packets (bucket 0 is an empty
/// queue; the last bucket is open-ended). Together with `drops` and
/// `ecn_marks` this is the structured divergence evidence the
/// flow-vs-packet cross-validation harness reports on congested
/// topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketObservation {
    /// Data packets injected at sources, including retransmissions.
    pub packets_sent: u64,
    /// Packets re-injected after an RTO fired for a tail-drop.
    pub retransmits: u64,
    /// Packets tail-dropped at a full switch queue.
    pub drops: u64,
    /// Packets ECN-marked at enqueue (queue depth at or above the
    /// marking threshold).
    pub ecn_marks: u64,
    /// Deepest switch-queue waiting depth observed, in packets.
    pub max_queue_depth: u64,
    /// Log2-bucketed histogram of switch-queue depth at enqueue.
    pub queue_depth_hist: [u64; 8],
}

/// A fault applied to the duplex link between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// Scale the link's bandwidth (both directions) by `factor`.
    Degrade {
        /// Bandwidth multiplier, finite and positive.
        factor: f64,
    },
    /// Take the link down (both directions). In-flight flows crossing it
    /// are rerouted; new sends route around it.
    Fail,
    /// Bring the link back up (both directions). Already-rerouted flows
    /// keep their detours; new sends may use the link again.
    Repair,
}

/// A send or link failure left two endpoints with no connecting path.
///
/// This is the structured alternative to hanging (a flow that can never
/// drain) or panicking: the simulator surfaces it as a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedError {
    /// Source endpoint of the path that no longer exists.
    pub src: NodeId,
    /// Destination endpoint of the path that no longer exists.
    pub dst: NodeId,
}

impl fmt::Display for PartitionedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network partitioned: no path from {} to {}",
            self.src, self.dst
        )
    }
}

impl std::error::Error for PartitionedError {}

/// One link's cumulative observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkObservation {
    /// Stable human-readable link name (e.g. `n0->n1`).
    pub label: String,
    /// Capacity in bytes/s.
    pub bandwidth: f64,
    /// Payload bytes that have crossed the link.
    pub bytes: f64,
    /// Seconds during which at least one flow was draining through it.
    pub busy_s: f64,
    /// Flows currently routed through the link.
    pub active_flows: usize,
}

/// An exact, mergeable snapshot of a model's cumulative statistics.
///
/// Sharded execution runs iteration blocks on *forked* copies of a
/// network model and must fold their statistics back into the original
/// without floating-point drift. Every field is therefore an integer
/// (tick-typed for durations): integer sums are associative, so the
/// merged totals are byte-identical to the serial run's regardless of
/// merge order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Whole-network cumulative counters at snapshot time.
    pub observation: NetObservation,
    /// Per-link `(payload bytes crossed, busy time)` in the model's
    /// stable link order. Empty for models without link accounting.
    pub links: Vec<(u64, TimeSpan)>,
}

/// One link's complete checkpointable state: the live topology
/// parameters fault injection may have changed (bandwidth, up/down) plus
/// the cumulative per-link statistics.
///
/// Bandwidth is stored as raw IEEE-754 bits so restore reproduces the
/// exact value a chain of degradations left behind — a decimal
/// round-trip could perturb the last ulp and shift downstream flow
/// timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCheckpoint {
    /// Link bandwidth in bytes/s, as `f64::to_bits`.
    pub bandwidth_bits: u64,
    /// Whether the link is up.
    pub up: bool,
    /// Payload bytes that have crossed the link.
    pub bytes: u64,
    /// Cumulative busy time (integer ticks).
    pub busy: TimeSpan,
}

/// A complete, self-contained snapshot of a network model's state at a
/// quiescent instant (no flows in flight).
///
/// Deliberately route-cache-free: routes are a pure function of the
/// restored topology state, so the cache rebuilds on demand and its
/// contents never appear in (or constrain) the snapshot format.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetCheckpoint {
    /// Payload bytes delivered so far.
    pub bytes_delivered: u64,
    /// Flows completed so far.
    pub flows_completed: u64,
    /// Bandwidth-reallocation rounds performed.
    pub reallocations: u64,
    /// Delivery events re-armed by reallocation.
    pub reschedules: u64,
    /// Link faults applied.
    pub link_faults: u64,
    /// In-flight flows rerouted around a failed link.
    pub reroutes: u64,
    /// Extra hops accumulated by reroutes.
    pub added_hops: u64,
    /// Per-link state in the model's stable link order.
    pub links: Vec<LinkCheckpoint>,
}

/// Why a [`NetworkModel::restore_state`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRestoreError {
    /// The model does not implement checkpoint/restore.
    Unsupported,
    /// The snapshot's link list does not match this model's topology.
    LinkCountMismatch {
        /// Links in the live topology.
        expected: usize,
        /// Links in the snapshot.
        got: usize,
    },
    /// A snapshot link carries a non-finite or non-positive bandwidth.
    BadBandwidth {
        /// Index of the offending link.
        link: usize,
    },
    /// The model has in-flight flows; restore requires a quiescent model.
    NotQuiescent,
}

impl fmt::Display for NetRestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetRestoreError::Unsupported => {
                f.write_str("network model does not support checkpoint/restore")
            }
            NetRestoreError::LinkCountMismatch { expected, got } => write!(
                f,
                "snapshot has {got} links but the topology has {expected}"
            ),
            NetRestoreError::BadBandwidth { link } => {
                write!(f, "snapshot link {link} has a non-positive bandwidth")
            }
            NetRestoreError::NotQuiescent => {
                f.write_str("cannot restore into a network with in-flight flows")
            }
        }
    }
}

impl std::error::Error for NetRestoreError {}

/// A network performance model that the simulator can drive.
///
/// The protocol:
///
/// 1. The simulator calls [`send`](NetworkModel::send) when a transfer
///    starts, obtaining a [`FlowId`] and commands to apply.
/// 2. When a scheduled delivery event fires, the simulator calls
///    [`deliver`](NetworkModel::deliver); the flow is complete, and the
///    returned commands re-arm other flows whose rates changed.
pub trait NetworkModel: fmt::Debug {
    /// Starts a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Returns the new flow's id and the event commands to apply (always
    /// including a `Schedule` for the new flow, possibly preceded by
    /// re-schedules of existing flows).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `src`/`dst` are unknown or
    /// disconnected — a configuration bug, not a runtime condition.
    fn send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (FlowId, Vec<NetCommand>);

    /// Fallible variant of [`send`](NetworkModel::send): reports a
    /// missing path as a typed [`PartitionedError`] instead of panicking.
    /// The default delegates to `send` (and therefore inherits its panic
    /// behavior); models that support fault injection override this.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionedError`] when no path connects `src` to `dst`.
    fn try_send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<(FlowId, Vec<NetCommand>), PartitionedError> {
        Ok(self.send(now, src, dst, bytes))
    }

    /// Applies a fault to the duplex link between `a` and `b` at time
    /// `now`, returning event commands for flows whose delivery times
    /// moved. The default (for models without fault support) ignores the
    /// fault and returns no commands.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionedError`] when a link failure leaves an
    /// in-flight flow with no path between its endpoints.
    fn apply_link_fault(
        &mut self,
        now: VirtualTime,
        a: NodeId,
        b: NodeId,
        fault: LinkFault,
    ) -> Result<Vec<NetCommand>, PartitionedError> {
        let _ = (now, a, b, fault);
        Ok(Vec::new())
    }

    /// Completes `flow` at time `now` (its armed delivery event fired).
    ///
    /// Returns commands re-arming the remaining flows whose delivery
    /// times moved (flows with unchanged rates may be omitted — see
    /// [`NetCommand`]).
    fn deliver(&mut self, flow: FlowId, now: VirtualTime) -> Vec<NetCommand>;

    /// Number of flows currently in flight.
    fn in_flight(&self) -> usize;

    /// Whole-network observable counters. The default reports only the
    /// in-flight count; instrumented models override this with their
    /// full activity/churn accounting.
    fn observe(&self) -> NetObservation {
        NetObservation {
            in_flight: self.in_flight(),
            ..NetObservation::default()
        }
    }

    /// Per-link observable state, in a stable order. The default (for
    /// models without link-level accounting) reports no links.
    fn observe_links(&self) -> Vec<LinkObservation> {
        Vec::new()
    }

    /// Packet-level counters for models that simulate individual packets,
    /// or `None` (the default) for flow-level models. Callers skip packet
    /// report sections and metrics entirely on `None`, which keeps
    /// flow-tier output byte-identical to builds that predate the packet
    /// tier.
    fn observe_packets(&self) -> Option<PacketObservation> {
        None
    }

    /// True when the model is *iteration-invariant*: running the same
    /// traffic pattern shifted by a constant virtual-time offset produces
    /// identically shifted commands and identical statistics deltas.
    /// Required for iteration-axis sharding (each shard replays later
    /// iterations against a fresh fork). The default is conservative.
    fn iteration_invariant(&self) -> bool {
        false
    }

    /// A fresh copy of this model in its pristine (pre-traffic) state:
    /// same topology and configuration, zeroed statistics, no in-flight
    /// flows. `None` (the default) means the model cannot be forked and
    /// sharded execution must fall back to the serial path.
    fn fork_pristine(&self) -> Option<Box<dyn NetworkModel + Send>> {
        None
    }

    /// This model's cumulative statistics as an exactly mergeable
    /// snapshot, or `None` (the default) when the model does not support
    /// snapshot/absorb merging.
    fn stats_snapshot(&self) -> Option<NetStatsSnapshot> {
        None
    }

    /// Folds a fork's statistics snapshot into this model's cumulative
    /// counters (integer sums — exact in any order). The default is a
    /// no-op for models without snapshot support.
    fn absorb_stats(&mut self, snapshot: &NetStatsSnapshot) {
        let _ = snapshot;
    }

    /// A stable fingerprint of the model's *configuration* (topology
    /// shape, link parameters, timing constants) — folded into a
    /// checkpoint's spec hash so a snapshot is never restored against a
    /// differently configured network. The default (`0`) is fine for
    /// models that also leave [`checkpoint_state`](Self::checkpoint_state)
    /// unimplemented.
    fn spec_fingerprint(&self) -> u64 {
        0
    }

    /// The model's complete state as a restorable snapshot, or `None`
    /// when the model cannot be checkpointed **right now** (flows in
    /// flight — snapshots are only taken at quiescent instants) or does
    /// not support checkpointing at all (the default).
    fn checkpoint_state(&self) -> Option<NetCheckpoint> {
        None
    }

    /// Restores this (freshly constructed, traffic-free) model to the
    /// state `ck` describes: exact link bandwidths and up/down flags,
    /// cumulative counters, per-link statistics. Any derived caches are
    /// rebuilt lazily — the snapshot is route-cache-free by design.
    ///
    /// # Errors
    ///
    /// [`NetRestoreError::Unsupported`] (the default) for models without
    /// checkpoint support; [`NetRestoreError::NotQuiescent`] when flows
    /// are in flight; [`NetRestoreError::LinkCountMismatch`] when the
    /// snapshot does not match the live topology.
    fn restore_state(&mut self, ck: &NetCheckpoint) -> Result<(), NetRestoreError> {
        let _ = ck;
        Err(NetRestoreError::Unsupported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_compare() {
        let a = NetCommand::Schedule {
            flow: FlowId(1),
            at: VirtualTime::from_seconds(1.0),
        };
        let b = NetCommand::Cancel { flow: FlowId(1) };
        assert_ne!(a, b);
        assert_eq!(format!("{}", FlowId(3)), "flow3");
    }
}
