//! The packet-level network tier.
//!
//! [`FlowNetwork`](crate::FlowNetwork) abstracts a transfer as a fluid
//! flow draining at its fair share — exactly the protocol effects
//! (queueing, drops, congestion control) that make lightweight
//! simulators optimistic under congestion. `PacketNetwork` is the
//! opt-in higher-fidelity tier: it packetizes every send into MTU-sized
//! packets and simulates store-and-forward serialization plus
//! propagation on each hop, per-link FIFO tail-drop queues of
//! configurable depth, ECN marking with a DCTCP-style per-flow
//! congestion window, and RTO retransmission of dropped packets.
//!
//! # Busy-period replay
//!
//! The simulator owns the event queue, so the model cannot run a packet
//! clock of its own beside it; like every [`NetworkModel`] it must
//! answer `send` with a projected delivery time. The model therefore
//! keeps the arrival list of the current *busy period* (the maximal
//! window during which flows are in flight) and deterministically
//! re-simulates the whole period on each `send`, emitting re-`Schedule`
//! commands for flows whose projected completion moved. Causality makes
//! the projections exact: a packet injected at `now` cannot influence
//! any packet event before `now`, so completions an earlier replay
//! placed in the past are final by the time they could be contradicted.
//! When the last flow of a period delivers, the period's packet
//! statistics are committed and the arrival list is cleared.
//!
//! # Where the tiers must agree, and where they must not
//!
//! On an uncongested path whose congestion window covers the
//! bandwidth-delay product, the last packet leaves the source back to
//! back with its predecessors, so delivery lands at
//! `latency + bytes/bandwidth` — the flow model's analytic time — to
//! within one MTU serialization delay (the convergence bound
//! `tests/fidelity.rs` enforces). Under incast or oversubscription the
//! tiers *should* diverge: queues build, ECN shrinks windows, shallow
//! buffers drop and retransmit, and the packet tier reports the
//! slowdown the flow model cannot see.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;

use triosim_des::{TimeSpan, VirtualTime};

use crate::model::{
    FlowId, LinkObservation, NetCommand, NetObservation, NetworkModel, PacketObservation,
    PartitionedError,
};
use crate::topology::{LinkId, NodeId, Topology};

/// Parameters of the packet tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketConfig {
    /// Maximum transmission unit: payload bytes per packet.
    pub mtu_bytes: u64,
    /// Switch-queue capacity in packets; enqueues beyond it tail-drop.
    /// Source NICs are not switch queues: the sender paces itself with
    /// its congestion window, so the first hop never drops or marks.
    pub buffer_packets: usize,
    /// ECN marking threshold: packets enqueued at this waiting depth or
    /// deeper are marked (DCTCP's step-marking `K`).
    pub ecn_threshold: usize,
    /// DCTCP gain `g` for the EWMA of the marked fraction.
    pub dctcp_gain: f64,
    /// Initial congestion window in packets. Uncongested convergence to
    /// the flow model requires `initial_cwnd * mtu_bytes` to cover the
    /// path's bandwidth-delay product.
    pub initial_cwnd: f64,
    /// Retransmission timeout for tail-dropped packets, seconds.
    pub rto_s: f64,
}

impl PacketConfig {
    /// The default datacenter-style configuration: jumbo-frame MTU, a
    /// 64-packet switch buffer with DCTCP marking at 16, and a window
    /// large enough to cover NVLink-class bandwidth-delay products.
    pub fn datacenter() -> Self {
        PacketConfig {
            mtu_bytes: 8192,
            buffer_packets: 64,
            ecn_threshold: 16,
            dctcp_gain: 1.0 / 16.0,
            initial_cwnd: 256.0,
            rto_s: 200e-6,
        }
    }

    /// A shallow-buffered configuration (12-packet queues, marking at 4)
    /// that makes drops and ECN pressure easy to provoke in tests.
    pub fn shallow() -> Self {
        PacketConfig {
            buffer_packets: 12,
            ecn_threshold: 4,
            initial_cwnd: 64.0,
            ..Self::datacenter()
        }
    }
}

impl Default for PacketConfig {
    fn default() -> Self {
        Self::datacenter()
    }
}

/// One send of the current busy period.
#[derive(Debug, Clone)]
struct Arrival {
    at: VirtualTime,
    flow: FlowId,
    route: Arc<[LinkId]>,
    bytes: u64,
}

/// One packet in flight inside a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pkt {
    flow: u32,
    seq: u64,
    bytes: u64,
    hop: u32,
    marked: bool,
}

/// Replay events, ordered by `(time, insertion id)` — the id breaks ties
/// deterministically, so the variant order below never decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A flow's arrival: inject its initial window.
    Start { flow: u32 },
    /// A link finished serializing; serve the next queued packet.
    LinkFree { link: u32 },
    /// A packet finished propagation and reached the far end of a link.
    Arrive { pkt: Pkt },
    /// An acknowledgement returned to the source.
    Ack { flow: u32, marked: bool },
    /// A tail-dropped packet's RTO fired; re-inject at the source.
    Retx { flow: u32, seq: u64 },
}

/// Per-flow replay state.
#[derive(Debug, Clone)]
struct SimFlow {
    route: Arc<[LinkId]>,
    total: u64,
    last_bytes: u64,
    /// ACK return latency: the route's propagation latency (the reverse
    /// path is assumed symmetric and unqueued — ACKs are tiny).
    rev_latency: TimeSpan,
    next_seq: u64,
    outstanding: u64,
    delivered: u64,
    acked: u64,
    cwnd: f64,
    alpha: f64,
    window_end: u64,
    acks_in_window: u64,
    marked_in_window: u64,
    done: Option<VirtualTime>,
}

/// Per-link replay state.
#[derive(Debug, Clone)]
struct SimLink {
    queue: VecDeque<Pkt>,
    busy: bool,
    bandwidth: f64,
    latency: TimeSpan,
    bytes: u64,
    busy_time: TimeSpan,
}

/// The outcome of one busy-period replay.
#[derive(Debug)]
struct Replay {
    /// Completion time per arrival index.
    completion: Vec<VirtualTime>,
    stats: PacketObservation,
    links: Vec<(u64, TimeSpan)>,
}

/// Hard ceiling on events per replay — generously above any legitimate
/// busy period, so hitting it means the packet dynamics stopped making
/// progress (a model bug, not a runtime condition).
const REPLAY_EVENT_BUDGET: u64 = 200_000_000;

struct Replayer {
    cfg: PacketConfig,
    rto: TimeSpan,
    flows: Vec<SimFlow>,
    links: Vec<SimLink>,
    heap: BinaryHeap<Reverse<(VirtualTime, u64, Ev)>>,
    eid: u64,
    stats: PacketObservation,
}

impl Replayer {
    fn at(&mut self, t: VirtualTime, ev: Ev) {
        self.heap.push(Reverse((t, self.eid, ev)));
        self.eid += 1;
    }

    fn pkt_bytes(&self, flow: u32, seq: u64) -> u64 {
        let f = &self.flows[flow as usize];
        if seq + 1 == f.total {
            f.last_bytes
        } else {
            self.cfg.mtu_bytes
        }
    }

    /// Window-gated injection of fresh packets into the first hop.
    fn inject(&mut self, t: VirtualTime, flow: u32) {
        loop {
            let f = &self.flows[flow as usize];
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let window = (f.cwnd as u64).max(1);
            if f.next_seq >= f.total || f.outstanding >= window {
                return;
            }
            let seq = f.next_seq;
            let pkt = Pkt {
                flow,
                seq,
                bytes: self.pkt_bytes(flow, seq),
                hop: 0,
                marked: false,
            };
            let f = &mut self.flows[flow as usize];
            f.next_seq += 1;
            f.outstanding += 1;
            self.stats.packets_sent += 1;
            self.enqueue(t, pkt);
        }
    }

    fn enqueue(&mut self, t: VirtualTime, mut pkt: Pkt) {
        let link = self.flows[pkt.flow as usize].route[pkt.hop as usize];
        if pkt.hop > 0 {
            // A switch queue: finite buffer with step ECN. (Hop 0 is the
            // source NIC — the window already paces it, so it neither
            // drops nor marks.)
            let depth = self.links[link.0].queue.len() as u64;
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
            let bucket = if depth == 0 {
                0
            } else {
                (64 - depth.leading_zeros() as usize).min(7)
            };
            self.stats.queue_depth_hist[bucket] += 1;
            if depth >= self.cfg.buffer_packets as u64 {
                self.stats.drops += 1;
                self.at(
                    t + self.rto,
                    Ev::Retx {
                        flow: pkt.flow,
                        seq: pkt.seq,
                    },
                );
                return;
            }
            if depth >= self.cfg.ecn_threshold as u64 {
                pkt.marked = true;
                self.stats.ecn_marks += 1;
            }
        }
        self.links[link.0].queue.push_back(pkt);
        self.kick(t, link);
    }

    /// Starts serving the next queued packet if the link is idle:
    /// store-and-forward, so the packet serializes fully before its
    /// propagation delay begins.
    fn kick(&mut self, t: VirtualTime, link: LinkId) {
        let l = &mut self.links[link.0];
        if l.busy {
            return;
        }
        let Some(pkt) = l.queue.pop_front() else {
            return;
        };
        l.busy = true;
        let ser = TimeSpan::from_seconds(pkt.bytes as f64 / l.bandwidth);
        l.bytes += pkt.bytes;
        l.busy_time += ser;
        let latency = l.latency;
        self.at(
            t + ser,
            Ev::LinkFree {
                link: link.0 as u32,
            },
        );
        self.at(t + ser + latency, Ev::Arrive { pkt });
    }

    fn arrive(&mut self, t: VirtualTime, pkt: Pkt) {
        let idx = pkt.flow as usize;
        let next_hop = pkt.hop as usize + 1;
        if next_hop < self.flows[idx].route.len() {
            // ECN marks accumulated upstream travel with the packet.
            self.enqueue(
                t,
                Pkt {
                    hop: next_hop as u32,
                    ..pkt
                },
            );
            return;
        }
        let f = &mut self.flows[idx];
        f.delivered += 1;
        if f.delivered == f.total {
            f.done = Some(t);
        }
        let back = f.rev_latency;
        self.at(
            t + back,
            Ev::Ack {
                flow: pkt.flow,
                marked: pkt.marked,
            },
        );
    }

    fn ack(&mut self, t: VirtualTime, flow: u32, marked: bool) {
        let g = self.cfg.dctcp_gain;
        let f = &mut self.flows[flow as usize];
        f.outstanding = f.outstanding.saturating_sub(1);
        f.acked += 1;
        f.acks_in_window += 1;
        if marked {
            f.marked_in_window += 1;
        }
        if f.acked >= f.window_end {
            // One DCTCP window closed: update the marked-fraction EWMA,
            // then cut multiplicatively (by alpha/2) or grow additively.
            let fraction = f.marked_in_window as f64 / f.acks_in_window as f64;
            f.alpha = (1.0 - g) * f.alpha + g * fraction;
            if f.marked_in_window > 0 {
                f.cwnd = (f.cwnd * (1.0 - f.alpha / 2.0)).max(1.0);
            } else {
                f.cwnd += 1.0;
            }
            f.acks_in_window = 0;
            f.marked_in_window = 0;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let window = (f.cwnd as u64).max(1);
            f.window_end = f.acked + window;
        }
        self.inject(t, flow);
    }

    fn retx(&mut self, t: VirtualTime, flow: u32, seq: u64) {
        // A timeout is a stronger congestion signal than a mark: halve
        // the window, then re-inject the lost packet at the source.
        let f = &mut self.flows[flow as usize];
        f.cwnd = (f.cwnd / 2.0).max(1.0);
        self.stats.retransmits += 1;
        self.stats.packets_sent += 1;
        let pkt = Pkt {
            flow,
            seq,
            bytes: self.pkt_bytes(flow, seq),
            hop: 0,
            marked: false,
        };
        self.enqueue(t, pkt);
    }
}

/// The packet-level [`NetworkModel`] tier.
///
/// # Example
///
/// ```rust
/// use triosim_des::VirtualTime;
/// use triosim_network::{NetCommand, NetworkModel, NodeId, PacketNetwork, Topology};
///
/// let mut topo = Topology::new(2);
/// topo.add_duplex(NodeId(0), NodeId(1), 50e9, 1e-6); // 50 GB/s, 1 us
/// let mut net = PacketNetwork::new(topo);
/// let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 10_000_000);
/// let NetCommand::Schedule { at, .. } = cmds[0] else { panic!() };
/// // Uncongested: within one MTU serialization of latency + bytes/bw.
/// assert!((at.as_seconds() - (1e-6 + 10e6 / 50e9)).abs() < 8192.0 / 50e9 + 1e-9);
/// # let _ = f;
/// ```
#[derive(Debug)]
pub struct PacketNetwork {
    topo: Topology,
    config: PacketConfig,
    routes: BTreeMap<(NodeId, NodeId), Arc<[LinkId]>>,
    /// Sends of the current busy period, in arrival order.
    arrivals: Vec<Arrival>,
    /// Undelivered flows of the period, mapped to their arrival index.
    live: BTreeMap<FlowId, usize>,
    /// The delivery time each live flow is currently armed at.
    armed: BTreeMap<FlowId, VirtualTime>,
    next_flow: u64,
    bytes_delivered: u64,
    flows_completed: u64,
    /// Busy-period replays performed (the packet tier's analogue of the
    /// flow model's reallocation rounds).
    replays: u64,
    /// Delivery events re-armed because a later arrival moved them.
    reschedules: u64,
    /// Packet statistics of closed busy periods.
    committed: PacketObservation,
    committed_links: Vec<(u64, TimeSpan)>,
    /// Latest replay's projection for the open period (full-period
    /// totals; exact once the period closes).
    open: PacketObservation,
    open_links: Vec<(u64, TimeSpan)>,
}

impl PacketNetwork {
    /// Creates a packet network with the default
    /// [datacenter](PacketConfig::datacenter) configuration.
    pub fn new(topology: Topology) -> Self {
        Self::with_config(topology, PacketConfig::default())
    }

    /// Creates a packet network with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero MTU or buffer,
    /// non-positive RTO, a gain outside `(0, 1]`, or a window below one
    /// packet).
    pub fn with_config(topology: Topology, config: PacketConfig) -> Self {
        assert!(config.mtu_bytes > 0, "MTU must be at least one byte");
        assert!(config.buffer_packets >= 1, "buffer needs at least one slot");
        assert!(config.ecn_threshold >= 1, "ECN threshold must be positive");
        assert!(
            config.dctcp_gain > 0.0 && config.dctcp_gain <= 1.0,
            "DCTCP gain must be in (0, 1]"
        );
        assert!(config.initial_cwnd >= 1.0, "window below one packet");
        assert!(
            config.rto_s.is_finite() && config.rto_s > 0.0,
            "RTO must be positive"
        );
        let links = topology.link_count();
        PacketNetwork {
            topo: topology,
            config,
            routes: BTreeMap::new(),
            arrivals: Vec::new(),
            live: BTreeMap::new(),
            armed: BTreeMap::new(),
            next_flow: 0,
            bytes_delivered: 0,
            flows_completed: 0,
            replays: 0,
            reschedules: 0,
            committed: PacketObservation::default(),
            committed_links: vec![(0, TimeSpan::ZERO); links],
            open: PacketObservation::default(),
            open_links: vec![(0, TimeSpan::ZERO); links],
        }
    }

    /// The interconnect graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The packet-tier configuration.
    pub fn config(&self) -> PacketConfig {
        self.config
    }

    fn route_cached(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Arc<[LinkId]>, PartitionedError> {
        if let Some(r) = self.routes.get(&(src, dst)) {
            return Ok(r.clone());
        }
        let route: Arc<[LinkId]> = self
            .topo
            .route(src, dst)
            .map_err(|_| PartitionedError { src, dst })?
            .into();
        self.routes.insert((src, dst), route.clone());
        Ok(route)
    }

    /// Deterministically re-simulates the current busy period from its
    /// first arrival and returns per-flow completions plus the period's
    /// packet statistics.
    fn replay(&self) -> Replay {
        let cfg = self.config;
        let links: Vec<SimLink> = (0..self.topo.link_count())
            .map(|i| SimLink {
                queue: VecDeque::new(),
                busy: false,
                bandwidth: self.topo.bandwidth(LinkId(i)),
                latency: TimeSpan::from_seconds(self.topo.latency(LinkId(i))),
                bytes: 0,
                busy_time: TimeSpan::ZERO,
            })
            .collect();
        let flows: Vec<SimFlow> = self
            .arrivals
            .iter()
            .map(|a| {
                let total = a.bytes.div_ceil(cfg.mtu_bytes).max(1);
                SimFlow {
                    route: a.route.clone(),
                    total,
                    last_bytes: a.bytes - (total - 1) * cfg.mtu_bytes,
                    rev_latency: TimeSpan::from_seconds(self.topo.route_latency(&a.route)),
                    next_seq: 0,
                    outstanding: 0,
                    delivered: 0,
                    acked: 0,
                    cwnd: cfg.initial_cwnd,
                    alpha: 0.0,
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    window_end: (cfg.initial_cwnd as u64).max(1),
                    acks_in_window: 0,
                    marked_in_window: 0,
                    done: None,
                }
            })
            .collect();
        let mut r = Replayer {
            cfg,
            rto: TimeSpan::from_seconds(cfg.rto_s),
            flows,
            links,
            heap: BinaryHeap::new(),
            eid: 0,
            stats: PacketObservation::default(),
        };
        for (i, a) in self.arrivals.iter().enumerate() {
            r.at(a.at, Ev::Start { flow: i as u32 });
        }
        let mut spent = 0u64;
        while let Some(Reverse((t, _, ev))) = r.heap.pop() {
            spent += 1;
            assert!(
                spent <= REPLAY_EVENT_BUDGET,
                "packet replay exceeded its event budget — the dynamics stopped making progress"
            );
            match ev {
                Ev::Start { flow } => {
                    if r.flows[flow as usize].route.is_empty() {
                        // Same-node transfer: no packets, instantaneous.
                        r.flows[flow as usize].done = Some(t);
                    } else {
                        r.inject(t, flow);
                    }
                }
                Ev::LinkFree { link } => {
                    r.links[link as usize].busy = false;
                    r.kick(t, LinkId(link as usize));
                }
                Ev::Arrive { pkt } => r.arrive(t, pkt),
                Ev::Ack { flow, marked } => r.ack(t, flow, marked),
                Ev::Retx { flow, seq } => r.retx(t, flow, seq),
            }
        }
        Replay {
            completion: r
                .flows
                .iter()
                .map(|f| f.done.expect("a drained replay completes every flow"))
                .collect(),
            stats: r.stats,
            links: r.links.iter().map(|l| (l.bytes, l.busy_time)).collect(),
        }
    }

    /// Folds the open period's projection into the committed totals
    /// (called when the period closes, making the projection exact).
    fn commit_open(&mut self) {
        let o = self.open;
        self.committed.packets_sent += o.packets_sent;
        self.committed.retransmits += o.retransmits;
        self.committed.drops += o.drops;
        self.committed.ecn_marks += o.ecn_marks;
        self.committed.max_queue_depth = self.committed.max_queue_depth.max(o.max_queue_depth);
        for (c, v) in self
            .committed
            .queue_depth_hist
            .iter_mut()
            .zip(o.queue_depth_hist)
        {
            *c += v;
        }
        for (c, v) in self.committed_links.iter_mut().zip(&self.open_links) {
            c.0 += v.0;
            c.1 += v.1;
        }
        self.open = PacketObservation::default();
        for slot in &mut self.open_links {
            *slot = (0, TimeSpan::ZERO);
        }
    }
}

impl NetworkModel for PacketNetwork {
    fn send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (FlowId, Vec<NetCommand>) {
        match self.try_send(now, src, dst, bytes) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    fn try_send(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<(FlowId, Vec<NetCommand>), PartitionedError> {
        let route = self.route_cached(src, dst)?;
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.live.insert(id, self.arrivals.len());
        self.arrivals.push(Arrival {
            at: now,
            flow: id,
            route,
            bytes,
        });
        let replay = self.replay();
        self.replays += 1;
        self.open = replay.stats;
        self.open_links = replay.links;
        // Re-arm every live flow whose projected completion moved; the
        // new flow was never armed, so it always gets its `Schedule`
        // (last, preserving arrival order).
        let mut cmds = Vec::new();
        let updates: Vec<(FlowId, VirtualTime)> = self
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| self.live.contains_key(&a.flow))
            .map(|(i, a)| (a.flow, replay.completion[i]))
            .collect();
        for (flow, at) in updates {
            if self.armed.get(&flow) != Some(&at) {
                if flow != id {
                    self.reschedules += 1;
                }
                self.armed.insert(flow, at);
                cmds.push(NetCommand::Schedule { flow, at });
            }
        }
        Ok((id, cmds))
    }

    fn deliver(&mut self, flow: FlowId, _now: VirtualTime) -> Vec<NetCommand> {
        let idx = self
            .live
            .remove(&flow)
            .expect("delivered flow must be in flight");
        self.armed.remove(&flow);
        self.bytes_delivered += self.arrivals[idx].bytes;
        self.flows_completed += 1;
        if self.live.is_empty() {
            // The busy period closed: its projection is now exact.
            self.commit_open();
            self.arrivals.clear();
        }
        Vec::new()
    }

    fn in_flight(&self) -> usize {
        self.live.len()
    }

    fn observe(&self) -> NetObservation {
        NetObservation {
            in_flight: self.live.len(),
            bytes_delivered: self.bytes_delivered,
            flows_completed: self.flows_completed,
            reallocations: self.replays,
            reschedules: self.reschedules,
            // No fault support in the packet tier (yet): the fault
            // counters are structurally zero.
            ..NetObservation::default()
        }
    }

    fn observe_links(&self) -> Vec<LinkObservation> {
        (0..self.committed_links.len())
            .map(|i| {
                let link = LinkId(i);
                let (src, dst) = self.topo.endpoints(link);
                let bytes = self.committed_links[i].0 + self.open_links[i].0;
                let busy = self.committed_links[i].1 + self.open_links[i].1;
                LinkObservation {
                    label: format!("n{}->n{}", src.0, dst.0),
                    bandwidth: self.topo.bandwidth(link),
                    bytes: bytes as f64,
                    busy_s: busy.as_seconds(),
                    active_flows: self
                        .live
                        .values()
                        .filter(|&&idx| self.arrivals[idx].route.contains(&link))
                        .count(),
                }
            })
            .collect()
    }

    fn observe_packets(&self) -> Option<PacketObservation> {
        // Committed periods plus the open period's projection (the open
        // share is a whole-period projection, exact at quiescence — the
        // only time reports are assembled).
        let o = self.open;
        let mut total = self.committed;
        total.packets_sent += o.packets_sent;
        total.retransmits += o.retransmits;
        total.drops += o.drops;
        total.ecn_marks += o.ecn_marks;
        total.max_queue_depth = total.max_queue_depth.max(o.max_queue_depth);
        for (c, v) in total.queue_depth_hist.iter_mut().zip(o.queue_depth_hist) {
            *c += v;
        }
        Some(total)
    }

    fn iteration_invariant(&self) -> bool {
        // The packet dynamics are time-shift invariant in principle, but
        // the model keeps open-period projections and per-period
        // commitment state that fork/absorb merging does not cover, so
        // it conservatively opts out: a `--shards` request falls back to
        // the serial oracle with a warning naming this reason.
        false
    }

    fn spec_fingerprint(&self) -> u64 {
        // FNV-1a over the serialized topology and the packet-tier knobs
        // as raw bits — same recipe as the flow model: configuration
        // only, never live statistics.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        let topo_json =
            serde_json::to_string(&self.topo).expect("topologies serialize to plain JSON");
        fold(topo_json.as_bytes());
        fold(&self.config.mtu_bytes.to_le_bytes());
        fold(&(self.config.buffer_packets as u64).to_le_bytes());
        fold(&(self.config.ecn_threshold as u64).to_le_bytes());
        fold(&self.config.dctcp_gain.to_bits().to_le_bytes());
        fold(&self.config.initial_cwnd.to_bits().to_le_bytes());
        fold(&self.config.rto_s.to_bits().to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_of(cmds: &[NetCommand]) -> VirtualTime {
        match cmds.last().expect("at least one command") {
            NetCommand::Schedule { at, .. } => *at,
            NetCommand::Cancel { .. } => panic!("expected schedule"),
        }
    }

    fn single_link(bandwidth: f64, latency: f64) -> Topology {
        let mut t = Topology::new(2);
        t.add_duplex(NodeId(0), NodeId(1), bandwidth, latency);
        t
    }

    #[test]
    fn uncongested_single_link_matches_analytic_time() {
        let bw = 50e9;
        let lat = 1e-6;
        let mut net = PacketNetwork::new(single_link(bw, lat));
        let bytes = 10_000_000u64;
        let (_, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), bytes);
        let got = at_of(&cmds).as_seconds();
        let analytic = lat + bytes as f64 / bw;
        let bound = net.config().mtu_bytes as f64 / bw;
        assert!(
            (got - analytic).abs() <= bound + 1e-12,
            "packet {got} vs analytic {analytic} (bound {bound})"
        );
    }

    #[test]
    fn local_transfer_is_immediate() {
        let mut net = PacketNetwork::new(single_link(50e9, 1e-6));
        let t = VirtualTime::from_seconds(3.0);
        let (_, cmds) = net.send(t, NodeId(1), NodeId(1), 1 << 20);
        assert_eq!(at_of(&cmds), t);
    }

    #[test]
    fn delivery_accounting_and_period_close() {
        let mut net = PacketNetwork::new(single_link(50e9, 1e-6));
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 777_000);
        assert_eq!(net.in_flight(), 1);
        let before = net.observe_packets().expect("packet tier observes packets");
        assert!(before.packets_sent > 0);
        let out = net.deliver(f, at_of(&cmds));
        assert!(out.is_empty());
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.observe().bytes_delivered, 777_000);
        // Closing the period commits the projection unchanged.
        let after = net.observe_packets().expect("packet tier observes packets");
        assert_eq!(before, after);
    }

    #[test]
    fn new_traffic_rearms_flows_sharing_the_bottleneck() {
        // GPUs 1 and 2 both target GPU 3 through the host: the shared
        // host->3 link is a transit bottleneck, so flow B's arrival must
        // push flow A's projected completion later and re-arm it.
        let topo = Topology::pcie_host_tree(3, 16e9, 1e-6);
        let mut net = PacketNetwork::new(topo);
        let (fa, ca) = net.send(VirtualTime::ZERO, NodeId(1), NodeId(3), 8_000_000);
        let a_solo = at_of(&ca);
        let (_, cb) = net.send(VirtualTime::ZERO, NodeId(2), NodeId(3), 8_000_000);
        let rearm = cb
            .iter()
            .find_map(|c| match c {
                NetCommand::Schedule { flow, at } if *flow == fa => Some(*at),
                _ => None,
            })
            .expect("flow A must be re-armed");
        assert!(rearm > a_solo, "sharing delays A: {rearm:?} vs {a_solo:?}");
        assert_eq!(net.observe().reschedules, 1);
    }

    #[test]
    fn incast_on_shallow_buffers_drops_marks_and_retransmits() {
        let topo = Topology::pcie_host_tree(4, 16e9, 1e-6);
        let mut net = PacketNetwork::with_config(topo, PacketConfig::shallow());
        for src in 1..=3 {
            net.send(VirtualTime::ZERO, NodeId(src), NodeId(4), 8_000_000);
        }
        let p = net.observe_packets().expect("packet tier observes packets");
        assert!(p.ecn_marks > 0, "incast must mark: {p:?}");
        assert!(p.drops > 0, "shallow buffers must drop: {p:?}");
        assert!(p.retransmits > 0, "drops must retransmit: {p:?}");
        assert!(p.max_queue_depth >= PacketConfig::shallow().buffer_packets as u64);
        assert!(p.queue_depth_hist.iter().sum::<u64>() > 0);
    }

    #[test]
    fn deep_buffers_mark_without_dropping() {
        let topo = Topology::pcie_host_tree(3, 16e9, 1e-6);
        let cfg = PacketConfig {
            buffer_packets: 100_000,
            ecn_threshold: 4,
            ..PacketConfig::datacenter()
        };
        let mut net = PacketNetwork::with_config(topo, cfg);
        net.send(VirtualTime::ZERO, NodeId(1), NodeId(3), 8_000_000);
        net.send(VirtualTime::ZERO, NodeId(2), NodeId(3), 8_000_000);
        let p = net.observe_packets().expect("packet tier observes packets");
        assert!(p.ecn_marks > 0, "contention must mark: {p:?}");
        assert_eq!(p.drops, 0, "a deep buffer never drops: {p:?}");
    }

    #[test]
    fn replays_are_deterministic() {
        let run = || {
            let topo = Topology::pcie_host_tree(4, 16e9, 1e-6);
            let mut net = PacketNetwork::with_config(topo, PacketConfig::shallow());
            let mut times = Vec::new();
            for src in 1..=3 {
                let (_, cmds) = net.send(
                    VirtualTime::from_seconds(src as f64 * 1e-5),
                    NodeId(src),
                    NodeId(4),
                    4_000_000,
                );
                times.extend(cmds.iter().map(|c| match c {
                    NetCommand::Schedule { flow, at } => (flow.0, at.as_femtos()),
                    NetCommand::Cancel { flow } => (flow.0, 0),
                }));
            }
            (times, net.observe_packets())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observe_links_accounts_packet_bytes() {
        let mut net = PacketNetwork::new(single_link(50e9, 1e-6));
        let (f, cmds) = net.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        net.deliver(f, at_of(&cmds));
        let links = net.observe_links();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].label, "n0->n1");
        assert!((links[0].bytes - 1_000_000.0).abs() < 1.0);
        assert!(links[0].busy_s > 0.0);
        assert!((links[1].bytes).abs() < 1.0, "reverse direction unused");
    }

    #[test]
    fn partition_is_a_typed_error() {
        let mut net = PacketNetwork::new(Topology::new(2));
        let err = net
            .try_send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1024)
            .expect_err("no links, no path");
        assert_eq!(
            err,
            PartitionedError {
                src: NodeId(0),
                dst: NodeId(1)
            }
        );
    }

    #[test]
    fn fingerprint_tracks_config_not_traffic() {
        let a = PacketNetwork::new(single_link(50e9, 1e-6));
        let mut b = PacketNetwork::new(single_link(50e9, 1e-6));
        assert_eq!(a.spec_fingerprint(), b.spec_fingerprint());
        b.send(VirtualTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        assert_eq!(
            a.spec_fingerprint(),
            b.spec_fingerprint(),
            "traffic does not change the spec"
        );
        let c = PacketNetwork::with_config(single_link(50e9, 1e-6), PacketConfig::shallow());
        assert_ne!(a.spec_fingerprint(), c.spec_fingerprint());
        let d = PacketNetwork::new(single_link(25e9, 1e-6));
        assert_ne!(a.spec_fingerprint(), d.spec_fingerprint());
    }

    #[test]
    fn packet_tier_gates_off_sharding() {
        let net = PacketNetwork::new(single_link(50e9, 1e-6));
        assert!(!net.iteration_invariant());
        assert!(net.fork_pristine().is_none());
        assert!(net.checkpoint_state().is_none());
    }
}
