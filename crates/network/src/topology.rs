//! Interconnect topologies and shortest-path routing.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A node in the interconnect graph (a GPU, a switch, or the host).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed link in the interconnect graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Link {
    src: NodeId,
    dst: NodeId,
    bandwidth: f64,
    latency: f64,
    /// Operational state for fault injection. `None` (the serialized
    /// default for topologies written before this field existed) means
    /// *up*; `Some(false)` marks a failed link that routing must avoid.
    up: Option<bool>,
}

impl Link {
    fn is_up(&self) -> bool {
        self.up.unwrap_or(true)
    }
}

/// Error raised by topology construction or routing.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A node index is out of range.
    UnknownNode(NodeId),
    /// No path exists between two nodes.
    Unreachable {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A link's endpoints are the same node.
    SelfLink(NodeId),
    /// A link's bandwidth is not finite and positive.
    BadBandwidth {
        /// Source node of the offending link.
        src: NodeId,
        /// Destination node of the offending link.
        dst: NodeId,
        /// The rejected bandwidth value.
        bandwidth: f64,
    },
    /// A link's latency is not finite and non-negative.
    BadLatency {
        /// Source node of the offending link.
        src: NodeId,
        /// Destination node of the offending link.
        dst: NodeId,
        /// The rejected latency value.
        latency: f64,
    },
    /// A node cannot reach the rest of the topology.
    Disconnected {
        /// The unreachable node.
        node: NodeId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "node {n} does not exist"),
            TopologyError::Unreachable { src, dst } => {
                write!(f, "no path from {src} to {dst}")
            }
            TopologyError::SelfLink(n) => write!(f, "self-link on {n} is not allowed"),
            TopologyError::BadBandwidth {
                src,
                dst,
                bandwidth,
            } => write!(
                f,
                "link {src}->{dst}: bandwidth {bandwidth} must be finite and positive"
            ),
            TopologyError::BadLatency { src, dst, latency } => write!(
                f,
                "link {src}->{dst}: latency {latency} must be finite and non-negative"
            ),
            TopologyError::Disconnected { node } => {
                write!(f, "topology is not connected: {node} is unreachable")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A directed interconnect graph with per-link bandwidth and latency.
///
/// Links are *directed*; the `add_duplex` helper inserts both directions,
/// which models full-duplex interconnects (NVLink, PCIe) where the two
/// directions do not share bandwidth. Asymmetric networks — one of
/// TrioSim's differentiators over AstraSim/DistSim — are expressed by
/// simply adding links of different bandwidths.
///
/// # Example
///
/// ```rust
/// use triosim_network::{NodeId, Topology};
///
/// let topo = Topology::ring(4, 50e9, 1e-6);
/// let route = topo.route(NodeId(0), NodeId(2)).unwrap();
/// assert_eq!(route.len(), 2, "two hops around a 4-ring");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    links: Vec<Link>,
    /// adjacency[src] = list of (dst, link index) — deterministic order.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    /// Whether a node may appear in the *interior* of a route. Endpoint
    /// nodes (the host CPU on NVLink systems) carry their own traffic but
    /// never forward other nodes' packets.
    transit: Vec<bool>,
}

impl Topology {
    /// Creates a topology with `nodes` nodes and no links.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a topology needs at least one node");
        Topology {
            nodes,
            links: Vec::new(),
            adjacency: vec![Vec::new(); nodes],
            transit: vec![true; nodes],
        }
    }

    /// Marks whether `node` may forward traffic (appear mid-route).
    ///
    /// The host CPU on an NVLink platform is an endpoint — GPU peer-to-peer
    /// traffic never bounces through it — while the PCIe root complex of a
    /// host-tree platform is precisely the forwarding hub. Defaults to
    /// `true` for every node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_transit(&mut self, node: NodeId, allowed: bool) {
        assert!(node.0 < self.nodes, "node out of range");
        self.transit[node.0] = allowed;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Adds a directed link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, the bandwidth is not
    /// positive, or the latency is negative. Use
    /// [`try_add_link`](Topology::try_add_link) for a fallible variant.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, bandwidth: f64, latency: f64) -> LinkId {
        match self.try_add_link(src, dst, bandwidth, latency) {
            Ok(id) => id,
            Err(TopologyError::UnknownNode(_)) => panic!("endpoint out of range"),
            Err(TopologyError::SelfLink(_)) => panic!("self-links are not allowed"),
            Err(TopologyError::BadBandwidth { .. }) => panic!("bandwidth must be positive"),
            Err(TopologyError::BadLatency { .. }) => panic!("latency must be non-negative"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a directed link and returns its id, reporting invalid
    /// parameters as a typed error naming the offending link instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`], [`TopologyError::SelfLink`],
    /// [`TopologyError::BadBandwidth`], or [`TopologyError::BadLatency`].
    pub fn try_add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
        latency: f64,
    ) -> Result<LinkId, TopologyError> {
        if src.0 >= self.nodes {
            return Err(TopologyError::UnknownNode(src));
        }
        if dst.0 >= self.nodes {
            return Err(TopologyError::UnknownNode(dst));
        }
        if src == dst {
            return Err(TopologyError::SelfLink(src));
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(TopologyError::BadBandwidth {
                src,
                dst,
                bandwidth,
            });
        }
        if !(latency.is_finite() && latency >= 0.0) {
            return Err(TopologyError::BadLatency { src, dst, latency });
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            src,
            dst,
            bandwidth,
            latency,
            up: None,
        });
        self.adjacency[src.0].push((dst, id));
        Ok(id)
    }

    /// Adds a full-duplex connection (both directions, same parameters).
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, bandwidth: f64, latency: f64) {
        self.add_link(a, b, bandwidth, latency);
        self.add_link(b, a, bandwidth, latency);
    }

    /// Bandwidth of a link in bytes/s.
    pub fn bandwidth(&self, link: LinkId) -> f64 {
        self.links[link.0].bandwidth
    }

    /// Latency of a link in seconds.
    pub fn latency(&self, link: LinkId) -> f64 {
        self.links[link.0].latency
    }

    /// Endpoints of a link.
    pub fn endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        (self.links[link.0].src, self.links[link.0].dst)
    }

    /// Scales the bandwidth of one link (used by the Hop case study to
    /// inject heterogeneous slowdowns).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scale_bandwidth(&mut self, link: LinkId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.links[link.0].bandwidth *= factor;
    }

    /// Sets the bandwidth of one link to an absolute value in bytes/s.
    ///
    /// [`scale_bandwidth`](Topology::scale_bandwidth) composes
    /// multiplicatively and therefore cannot reproduce an exact prior
    /// state; checkpoint restore uses this setter to put every link back
    /// at the precise (bit-exact) bandwidth the snapshot recorded,
    /// including mid-run fault degradations.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    pub fn set_bandwidth(&mut self, link: LinkId, bandwidth: f64) {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        self.links[link.0].bandwidth = bandwidth;
    }

    /// All links leaving `node`, in insertion order (including links that
    /// are currently down).
    pub fn links_from(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[node.0]
    }

    /// Marks a link up or down. Routing ([`route`](Topology::route) /
    /// [`routes_from`](Topology::routes_from)) never crosses a down link;
    /// this is the fault-injection hook behind transient link failures.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link.0].up = Some(up);
    }

    /// Whether a link is currently up (links start up).
    pub fn is_link_up(&self, link: LinkId) -> bool {
        self.links[link.0].is_up()
    }

    /// Checks that every node can be reached from node 0 by following
    /// *up* links (ignoring transit restrictions — this is graph
    /// connectivity, not routability).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] naming the first
    /// unreachable node.
    pub fn validate_connected(&self) -> Result<(), TopologyError> {
        let mut visited = vec![false; self.nodes];
        visited[0] = true;
        let mut queue = VecDeque::from([NodeId(0)]);
        while let Some(node) = queue.pop_front() {
            for &(next, link) in &self.adjacency[node.0] {
                if self.links[link.0].is_up() && !visited[next.0] {
                    visited[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        match visited.iter().position(|&v| !v) {
            None => Ok(()),
            Some(n) => Err(TopologyError::Disconnected { node: NodeId(n) }),
        }
    }

    /// Shortest path (fewest hops; deterministic tie-break by insertion
    /// order) from `src` to `dst`, as a list of link ids.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if an endpoint is unknown or no path
    /// exists.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Result<Vec<LinkId>, TopologyError> {
        if src.0 >= self.nodes {
            return Err(TopologyError::UnknownNode(src));
        }
        if dst.0 >= self.nodes {
            return Err(TopologyError::UnknownNode(dst));
        }
        if src == dst {
            return Ok(Vec::new());
        }
        // BFS.
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; self.nodes];
        let mut visited = vec![false; self.nodes];
        visited[src.0] = true;
        let mut queue = VecDeque::from([src]);
        while let Some(node) = queue.pop_front() {
            // Non-transit nodes terminate paths: they may be endpoints
            // but never forward.
            if node != src && !self.transit[node.0] {
                continue;
            }
            for &(next, link) in &self.adjacency[node.0] {
                if !self.links[link.0].is_up() {
                    continue;
                }
                if !visited[next.0] {
                    visited[next.0] = true;
                    prev[next.0] = Some((node, link));
                    if next == dst {
                        let mut path = Vec::new();
                        let mut cur = dst;
                        while cur != src {
                            let (p, l) = prev[cur.0].expect("path recorded");
                            path.push(l);
                            cur = p;
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        Err(TopologyError::Unreachable { src, dst })
    }

    /// Shortest paths from `src` to *every* node, as one BFS pass.
    ///
    /// `result[dst]` is `Some(route)` for every reachable destination
    /// (`src` itself maps to the empty route) and `None` for unreachable
    /// nodes. Each individual route is identical — link for link — to
    /// what [`route`](Topology::route) returns for that pair, because
    /// both walk the same deterministic BFS predecessor tree. This is
    /// the bulk primitive behind the flow network's per-source route
    /// cache: one BFS amortizes over all destinations instead of paying
    /// a fresh traversal per `send`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if `src` is out of range.
    pub fn routes_from(&self, src: NodeId) -> Result<Vec<Option<Vec<LinkId>>>, TopologyError> {
        if src.0 >= self.nodes {
            return Err(TopologyError::UnknownNode(src));
        }
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; self.nodes];
        let mut visited = vec![false; self.nodes];
        visited[src.0] = true;
        let mut queue = VecDeque::from([src]);
        while let Some(node) = queue.pop_front() {
            if node != src && !self.transit[node.0] {
                continue;
            }
            for &(next, link) in &self.adjacency[node.0] {
                if !self.links[link.0].is_up() {
                    continue;
                }
                if !visited[next.0] {
                    visited[next.0] = true;
                    prev[next.0] = Some((node, link));
                    queue.push_back(next);
                }
            }
        }
        Ok((0..self.nodes)
            .map(|dst| {
                if !visited[dst] {
                    return None;
                }
                let mut path = Vec::new();
                let mut cur = NodeId(dst);
                while cur != src {
                    let (p, l) = prev[cur.0].expect("visited nodes have predecessors");
                    path.push(l);
                    cur = p;
                }
                path.reverse();
                Some(path)
            })
            .collect())
    }

    /// Total latency along a route.
    pub fn route_latency(&self, route: &[LinkId]) -> f64 {
        route.iter().map(|&l| self.latency(l)).sum()
    }

    // ----- builders for the paper's configurations -----

    /// A bidirectional ring of `n` nodes.
    pub fn ring(n: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        let mut t = Topology::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            t.add_duplex(NodeId(i), NodeId(j), bandwidth, latency);
        }
        t
    }

    /// A unidirectional chain `0 -> 1 -> ... -> n-1` (with reverse links),
    /// the shape of a pipeline-parallel stage assignment.
    pub fn chain(n: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(n >= 2, "a chain needs at least two nodes");
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_duplex(NodeId(i), NodeId(i + 1), bandwidth, latency);
        }
        t
    }

    /// NVSwitch-style any-to-any fabric: every pair of nodes is directly
    /// connected at full per-pair bandwidth.
    pub fn switch(n: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(n >= 2, "a switch fabric needs at least two nodes");
        let mut t = Topology::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                t.add_duplex(NodeId(i), NodeId(j), bandwidth, latency);
            }
        }
        t
    }

    /// A PCIe host tree: node 0 is the host/root-complex; GPUs 1..=n hang
    /// off it. GPU-to-GPU traffic crosses the host, sharing its links —
    /// the P1 platform shape.
    pub fn pcie_host_tree(gpus: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(gpus >= 1, "need at least one GPU");
        let mut t = Topology::new(gpus + 1);
        for i in 1..=gpus {
            t.add_duplex(NodeId(0), NodeId(i), bandwidth, latency);
        }
        t
    }

    /// A 2-D mesh of `w x h` nodes (wafer-scale case study), row-major
    /// node numbering.
    pub fn mesh2d(w: usize, h: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(w >= 1 && h >= 1 && w * h >= 2, "mesh too small");
        let mut t = Topology::new(w * h);
        let id = |x: usize, y: usize| NodeId(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.add_duplex(id(x, y), id(x + 1, y), bandwidth, latency);
                }
                if y + 1 < h {
                    t.add_duplex(id(x, y), id(x, y + 1), bandwidth, latency);
                }
            }
        }
        t
    }

    /// The DGX-2 style hypercube mesh of 8 GPUs: a 3-cube with doubled
    /// bandwidth on the ring-forming dimension, as described in §2.
    pub fn hypercube8(bandwidth: f64, latency: f64) -> Self {
        let mut t = Topology::new(8);
        for i in 0..8usize {
            for bit in 0..3 {
                let j = i ^ (1 << bit);
                if i < j {
                    // Dimension-0 links get double bandwidth, forming the
                    // strengthened loop that serves ring AllReduce.
                    let bw = if bit == 0 { 2.0 * bandwidth } else { bandwidth };
                    t.add_duplex(NodeId(i), NodeId(j), bw, latency);
                }
            }
        }
        t
    }

    /// A 2-D torus: a mesh with wraparound links in both dimensions
    /// (row-major numbering). Halves the worst-case hop count of the
    /// mesh — the standard scale-out NoC the paper's "mesh" wafer
    /// generalizes to.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is < 3 (wraparound would duplicate
    /// mesh links).
    pub fn torus2d(w: usize, h: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
        let mut t = Topology::mesh2d(w, h, bandwidth, latency);
        let id = |x: usize, y: usize| NodeId(y * w + x);
        for y in 0..h {
            t.add_duplex(id(w - 1, y), id(0, y), bandwidth, latency);
        }
        for x in 0..w {
            t.add_duplex(id(x, h - 1), id(x, 0), bandwidth, latency);
        }
        t
    }

    /// A two-level fat tree: `hosts` end nodes in groups of
    /// `hosts_per_leaf` under leaf switches, all leaves under one spine.
    /// Host-to-leaf links run at `host_bandwidth`; leaf-to-spine uplinks
    /// at `host_bandwidth * hosts_per_leaf / oversubscription` (set
    /// `oversubscription = 1.0` for a non-blocking fabric). Node ids:
    /// hosts `0..hosts`, then leaves, then the spine (switch nodes are
    /// transit-only by construction, hosts are not marked).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is not a positive multiple of `hosts_per_leaf`
    /// or `oversubscription < 1`.
    pub fn fat_tree(
        hosts: usize,
        hosts_per_leaf: usize,
        host_bandwidth: f64,
        latency: f64,
        oversubscription: f64,
    ) -> Self {
        assert!(
            hosts > 0 && hosts_per_leaf > 0 && hosts.is_multiple_of(hosts_per_leaf),
            "hosts must be a positive multiple of hosts_per_leaf"
        );
        assert!(oversubscription >= 1.0, "oversubscription must be >= 1");
        let leaves = hosts / hosts_per_leaf;
        let mut t = Topology::new(hosts + leaves + 1);
        let leaf = |i: usize| NodeId(hosts + i);
        let spine = NodeId(hosts + leaves);
        let uplink = host_bandwidth * hosts_per_leaf as f64 / oversubscription;
        for h in 0..hosts {
            t.add_duplex(NodeId(h), leaf(h / hosts_per_leaf), host_bandwidth, latency);
        }
        for l in 0..leaves {
            t.add_duplex(leaf(l), spine, uplink, latency);
        }
        t
    }

    /// A three-level oversubscribed datacenter fabric: `pods` pods of
    /// `leaves_per_pod` leaf switches with `hosts_per_leaf` hosts each,
    /// one aggregation switch per pod, all pods under one core switch.
    /// Each tier's uplink is oversubscribed by the same factor: leaf
    /// uplinks run at `host_bandwidth * hosts_per_leaf /
    /// oversubscription`, aggregation uplinks at `leaf_uplink *
    /// leaves_per_pod / oversubscription`. Node ids: hosts first
    /// (pod-major, then leaf, then host), then leaves (pod-major), then
    /// one aggregation switch per pod, then the core.
    ///
    /// This is the topology where packet-level queueing visibly
    /// diverges from the flow model: cross-pod collectives funnel into
    /// progressively thinner uplinks at every tier.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `oversubscription < 1`.
    pub fn oversubscribed_pods(
        pods: usize,
        leaves_per_pod: usize,
        hosts_per_leaf: usize,
        host_bandwidth: f64,
        latency: f64,
        oversubscription: f64,
    ) -> Self {
        assert!(
            pods > 0 && leaves_per_pod > 0 && hosts_per_leaf > 0,
            "every tier needs at least one node"
        );
        assert!(oversubscription >= 1.0, "oversubscription must be >= 1");
        let hosts = pods * leaves_per_pod * hosts_per_leaf;
        let leaves = pods * leaves_per_pod;
        let mut t = Topology::new(hosts + leaves + pods + 1);
        let leaf = |i: usize| NodeId(hosts + i);
        let agg = |p: usize| NodeId(hosts + leaves + p);
        let core = NodeId(hosts + leaves + pods);
        let leaf_uplink = host_bandwidth * hosts_per_leaf as f64 / oversubscription;
        let agg_uplink = leaf_uplink * leaves_per_pod as f64 / oversubscription;
        for h in 0..hosts {
            t.add_duplex(NodeId(h), leaf(h / hosts_per_leaf), host_bandwidth, latency);
        }
        for l in 0..leaves {
            t.add_duplex(leaf(l), agg(l / leaves_per_pod), leaf_uplink, latency);
        }
        for p in 0..pods {
            t.add_duplex(agg(p), core, agg_uplink, latency);
        }
        t
    }

    /// The Hop case study's ring-based graph: a bidirectional ring plus a
    /// chord from each node to its most distant node.
    pub fn hop_ring(n: usize, bandwidth: f64, latency: f64) -> Self {
        let mut t = Topology::ring(n, bandwidth, latency);
        for i in 0..n / 2 {
            let far = (i + n / 2) % n;
            t.add_duplex(NodeId(i), NodeId(far), bandwidth, latency);
        }
        t
    }

    /// The Hop case study's double-ring graph: two rings of `n/2` nodes
    /// interconnected node-to-node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not even or less than 6.
    pub fn double_ring(n: usize, bandwidth: f64, latency: f64) -> Self {
        assert!(
            n >= 6 && n.is_multiple_of(2),
            "double ring needs an even n >= 6"
        );
        let half = n / 2;
        let mut t = Topology::new(n);
        for i in 0..half {
            let j = (i + 1) % half;
            // Ring A: nodes 0..half. Ring B: nodes half..n.
            t.add_duplex(NodeId(i), NodeId(j), bandwidth, latency);
            t.add_duplex(NodeId(half + i), NodeId(half + j), bandwidth, latency);
            // Node-to-node interconnection.
            t.add_duplex(NodeId(i), NodeId(half + i), bandwidth, latency);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_take_the_short_way() {
        let t = Topology::ring(8, 1e9, 1e-6);
        assert_eq!(t.route(NodeId(0), NodeId(1)).unwrap().len(), 1);
        assert_eq!(t.route(NodeId(0), NodeId(4)).unwrap().len(), 4);
        assert_eq!(t.route(NodeId(0), NodeId(7)).unwrap().len(), 1);
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = Topology::ring(4, 1e9, 0.0);
        assert!(t.route(NodeId(2), NodeId(2)).unwrap().is_empty());
    }

    #[test]
    fn switch_is_single_hop_everywhere() {
        let t = Topology::switch(6, 1e9, 1e-6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert_eq!(t.route(NodeId(i), NodeId(j)).unwrap().len(), 1);
                }
            }
        }
    }

    #[test]
    fn pcie_tree_crosses_host() {
        let t = Topology::pcie_host_tree(2, 1e9, 1e-6);
        let route = t.route(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(route.len(), 2, "GPU-GPU goes through the host");
        let (a, b) = t.endpoints(route[0]);
        assert_eq!((a, b), (NodeId(1), NodeId(0)));
    }

    #[test]
    fn mesh_routes_are_manhattan() {
        let t = Topology::mesh2d(4, 3, 1e9, 0.0);
        // (0,0) -> (3,2): 3 + 2 = 5 hops.
        let route = t.route(NodeId(0), NodeId(2 * 4 + 3)).unwrap();
        assert_eq!(route.len(), 5);
    }

    #[test]
    fn hypercube8_diameter_is_three() {
        let t = Topology::hypercube8(1e9, 0.0);
        assert_eq!(t.route(NodeId(0), NodeId(7)).unwrap().len(), 3);
        assert_eq!(t.route(NodeId(0), NodeId(1)).unwrap().len(), 1);
        // Dimension-0 links have doubled bandwidth.
        let l01 = t.route(NodeId(0), NodeId(1)).unwrap()[0];
        let l02 = t.route(NodeId(0), NodeId(2)).unwrap()[0];
        assert_eq!(t.bandwidth(l01), 2.0 * t.bandwidth(l02));
    }

    #[test]
    fn hop_ring_has_chords() {
        let t = Topology::hop_ring(8, 1e9, 0.0);
        // 0 -> 4 is a direct chord.
        assert_eq!(t.route(NodeId(0), NodeId(4)).unwrap().len(), 1);
    }

    #[test]
    fn double_ring_connects_rings() {
        let t = Topology::double_ring(8, 1e9, 0.0);
        // Cross-ring neighbours are directly linked.
        assert_eq!(t.route(NodeId(0), NodeId(4)).unwrap().len(), 1);
        // Within ring A.
        assert_eq!(t.route(NodeId(0), NodeId(2)).unwrap().len(), 2);
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let t = Topology::torus2d(4, 4, 1e9, 0.0);
        // (0,0) -> (3,0): 1 hop via wraparound (3 on the mesh).
        assert_eq!(t.route(NodeId(0), NodeId(3)).unwrap().len(), 1);
        // (0,0) -> (0,3): 1 hop via vertical wraparound.
        assert_eq!(t.route(NodeId(0), NodeId(12)).unwrap().len(), 1);
        // Opposite corner: 2 hops on the torus (6 on the mesh).
        assert_eq!(t.route(NodeId(0), NodeId(15)).unwrap().len(), 2);
    }

    #[test]
    fn fat_tree_routes_and_oversubscribes() {
        let t = Topology::fat_tree(8, 4, 10e9, 1e-6, 2.0);
        // Same leaf: host -> leaf -> host, 2 hops.
        assert_eq!(t.route(NodeId(0), NodeId(1)).unwrap().len(), 2);
        // Cross leaf: host -> leaf -> spine -> leaf -> host, 4 hops.
        let cross = t.route(NodeId(0), NodeId(7)).unwrap();
        assert_eq!(cross.len(), 4);
        // Uplink bandwidth: 4 hosts x 10 / 2 oversubscription = 20 GB/s.
        let uplink = cross[1];
        assert!((t.bandwidth(uplink) - 20e9).abs() < 1.0);
    }

    #[test]
    fn oversubscribed_pods_thins_every_tier() {
        // 2 pods x 2 leaves x 2 hosts = 8 hosts; leaves at 8..12, aggs
        // at 12..14, core at 14.
        let t = Topology::oversubscribed_pods(2, 2, 2, 10e9, 1e-6, 2.0);
        assert_eq!(t.node_count(), 15);
        // Same leaf: host -> leaf -> host.
        assert_eq!(t.route(NodeId(0), NodeId(1)).unwrap().len(), 2);
        // Same pod, cross leaf: host -> leaf -> agg -> leaf -> host.
        assert_eq!(t.route(NodeId(0), NodeId(2)).unwrap().len(), 4);
        // Cross pod: up to the core and back down, 6 hops.
        let cross = t.route(NodeId(0), NodeId(7)).unwrap();
        assert_eq!(cross.len(), 6);
        // Leaf uplink: 2 hosts x 10 / 2 = 10 GB/s; agg uplink: 10 x 2
        // leaves / 2 = 10 GB/s — each tier funnels 2:1.
        assert!((t.bandwidth(cross[1]) - 10e9).abs() < 1.0);
        assert!((t.bandwidth(cross[2]) - 10e9).abs() < 1.0);
    }

    #[test]
    fn unreachable_is_an_error() {
        let t = Topology::new(3); // no links at all
        let err = t.route(NodeId(0), NodeId(2)).unwrap_err();
        assert!(matches!(err, TopologyError::Unreachable { .. }));
        assert!(err.to_string().contains("no path"));
    }

    #[test]
    fn unknown_node_is_an_error() {
        let t = Topology::ring(3, 1e9, 0.0);
        assert!(matches!(
            t.route(NodeId(0), NodeId(9)),
            Err(TopologyError::UnknownNode(NodeId(9)))
        ));
        assert!(matches!(
            t.routes_from(NodeId(9)),
            Err(TopologyError::UnknownNode(NodeId(9)))
        ));
    }

    #[test]
    fn routes_from_matches_per_pair_route() {
        // The bulk table must be link-for-link identical to route() for
        // every reachable pair — including through non-transit hosts.
        for topo in [
            Topology::ring(6, 1e9, 1e-6),
            Topology::pcie_host_tree(4, 16e9, 1e-6),
            Topology::fat_tree(8, 2, 1e9, 1e-6, 2.0),
        ] {
            for src in 0..topo.node_count() {
                let table = topo.routes_from(NodeId(src)).unwrap();
                assert_eq!(table.len(), topo.node_count());
                for (dst, entry) in table.iter().enumerate() {
                    match topo.route(NodeId(src), NodeId(dst)) {
                        Ok(route) => assert_eq!(entry.as_ref(), Some(&route)),
                        Err(TopologyError::Unreachable { .. }) => assert!(entry.is_none()),
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn scale_bandwidth_applies() {
        let mut t = Topology::ring(3, 1e9, 0.0);
        let l = t.route(NodeId(0), NodeId(1)).unwrap()[0];
        t.scale_bandwidth(l, 0.5);
        assert_eq!(t.bandwidth(l), 0.5e9);
    }

    #[test]
    fn route_latency_sums_links() {
        let t = Topology::ring(6, 1e9, 2e-6);
        let route = t.route(NodeId(0), NodeId(3)).unwrap();
        assert!((t.route_latency(&route) - 6e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new(2);
        t.add_link(NodeId(0), NodeId(0), 1e9, 0.0);
    }

    #[test]
    fn try_add_link_names_the_offence() {
        let mut t = Topology::new(2);
        assert!(matches!(
            t.try_add_link(NodeId(0), NodeId(5), 1e9, 0.0),
            Err(TopologyError::UnknownNode(NodeId(5)))
        ));
        assert!(matches!(
            t.try_add_link(NodeId(1), NodeId(1), 1e9, 0.0),
            Err(TopologyError::SelfLink(NodeId(1)))
        ));
        let err = t.try_add_link(NodeId(0), NodeId(1), -1.0, 0.0).unwrap_err();
        assert!(err.to_string().contains("n0->n1"), "got: {err}");
        assert!(matches!(
            t.try_add_link(NodeId(0), NodeId(1), 1e9, f64::NAN),
            Err(TopologyError::BadLatency { .. })
        ));
        assert!(t.try_add_link(NodeId(0), NodeId(1), 1e9, 0.0).is_ok());
    }

    #[test]
    fn down_links_are_routed_around() {
        let mut t = Topology::ring(4, 1e9, 0.0);
        // 0 -> 1 direct.
        let direct = t.route(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(direct.len(), 1);
        t.set_link_up(direct[0], false);
        assert!(!t.is_link_up(direct[0]));
        // Now the only way is the long way around.
        let detour = t.route(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(detour.len(), 3);
        let table = t.routes_from(NodeId(0)).unwrap();
        assert_eq!(table[1].as_ref().map(Vec::len), Some(3));
        // Repair restores the direct route.
        t.set_link_up(direct[0], true);
        assert_eq!(t.route(NodeId(0), NodeId(1)).unwrap().len(), 1);
    }

    #[test]
    fn connectivity_validation_names_the_node() {
        let t = Topology::ring(4, 1e9, 0.0);
        assert!(t.validate_connected().is_ok());
        let mut chain = Topology::chain(3, 1e9, 0.0);
        // Cut both directions of the 1<->2 hop: node 2 becomes an island.
        let l12 = chain.route(NodeId(1), NodeId(2)).unwrap()[0];
        let l21 = chain.route(NodeId(2), NodeId(1)).unwrap()[0];
        chain.set_link_up(l12, false);
        chain.set_link_up(l21, false);
        let err = chain.validate_connected().unwrap_err();
        assert_eq!(err, TopologyError::Disconnected { node: NodeId(2) });
        assert!(err.to_string().contains("n2"), "got: {err}");
        let isolated = Topology::new(2);
        assert!(isolated.validate_connected().is_err());
    }
}
