//! Flow-based network modeling for TrioSim-RS.
//!
//! The paper's lightweight network model (§4.5) discards protocol detail
//! and keeps only the factors that dominate transfer time: link latency,
//! link bandwidth, and bandwidth sharing between concurrent streams. A
//! packet transfer is a 4-step process — (1) shortest-path routing, (2)
//! bandwidth allocation, (3) scheduling a *potential* delivery event, and
//! (4) delivery with reallocation — and every flow start or completion
//! triggers rescheduling of all in-flight deliveries. This crate
//! implements exactly that, plus:
//!
//! * [`Topology`] builders for every interconnect the paper uses: ring,
//!   PCIe host tree, NVSwitch-style all-to-all, DGX-2 hypercube mesh, 2-D
//!   wafer mesh, double ring, and the Hop case study's augmented rings.
//! * [`FlowNetwork`] — the packet-switching model. With a
//!   [`FlowNetworkConfig`] adding per-message protocol overhead and a
//!   small-message bandwidth ramp, the *same* engine doubles as the
//!   high-fidelity reference network used as ground truth (the effects
//!   TrioSim's clean model abstracts away — see DESIGN.md §2).
//! * [`PhotonicNetwork`] — the circuit-switching Passage model from case
//!   study §7.1 (link setup latency, limited ports with LRU eviction,
//!   fixed per-circuit bandwidth).
//! * [`PacketNetwork`] — the opt-in packet-level tier: MTU packetization,
//!   FIFO tail-drop switch queues, store-and-forward per-hop delays, ECN
//!   with a DCTCP-style window, and RTO retransmission. Cross-validated
//!   against [`FlowNetwork`] by `tests/fidelity.rs`.
//!
//! All network models implement [`NetworkModel`], mirroring the paper's
//! claim that a model only needs `Send` and `Deliver` to plug in.
//!
//! # Example
//!
//! ```rust
//! use triosim_des::VirtualTime;
//! use triosim_network::{FlowNetwork, NetworkModel, NodeId, Topology};
//!
//! let topo = Topology::ring(4, 100e9, 1e-6); // 4 GPUs, 100 GB/s, 1 us
//! let mut net = FlowNetwork::new(topo);
//! let t0 = VirtualTime::ZERO;
//! let (flow, cmds) = net.send(t0, NodeId(0), NodeId(1), 100_000_000);
//! // One scheduled delivery for the new flow:
//! assert_eq!(cmds.len(), 1);
//! # let _ = flow;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Part of the hardened error path: production code in this crate must
// surface typed errors, not unwrap. Tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod flow;
mod model;
mod packet;
mod photonic;
mod topology;

pub use flow::{FlowNetwork, FlowNetworkConfig, LinkStats, ReallocationMode};
pub use model::{
    FlowId, LinkCheckpoint, LinkFault, LinkObservation, NetCheckpoint, NetCommand, NetObservation,
    NetRestoreError, NetStatsSnapshot, NetworkModel, PacketObservation, PartitionedError,
};
pub use packet::{PacketConfig, PacketNetwork};
pub use photonic::{PhotonicConfig, PhotonicNetwork};
pub use topology::{LinkId, NodeId, Topology, TopologyError};
