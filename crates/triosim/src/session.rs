//! The high-level simulation entry point.

use std::path::PathBuf;
use std::str::FromStr;

use triosim_des::{RunBudget, TimeSpan};
use triosim_faults::FaultPlan;
use triosim_network::{FlowNetwork, FlowNetworkConfig, NetworkModel, NodeId, PacketNetwork};
use triosim_obs::{ProgressMonitor, Recorder, SelfProfiler};
use triosim_perfmodel::LisModel;
use triosim_trace::{GpuModel, Trace};

use crate::checkpoint::{self, CheckpointConfig, CheckpointError};
use crate::compute::{ComputeModel, Fidelity};
use crate::error::SimError;
use crate::executor::{
    execute_budgeted, execute_budgeted_profiled, execute_faulted, execute_iterations,
    execute_observed, execute_restored, execute_with_checkpoints, Observability,
};
use crate::extrapolate::extrapolate_with_style;
use crate::parallelism::{CollectiveStyle, Parallelism};
use crate::platform::Platform;
use crate::report::SimReport;
use crate::taskgraph::TaskGraph;

/// Configures and runs one TrioSim simulation.
///
/// Defaults: distributed data parallelism, per-GPU batch equal to the
/// trace's batch (so DP defaults to weak scaling, exactly the paper's
/// P1/P2 validation setup), TrioSim fidelity with automatically
/// calibrated Li's Models, and the platform's packet-switching flow
/// network.
///
/// # Example
///
/// ```rust
/// use triosim::{Fidelity, Parallelism, Platform, SimBuilder};
/// use triosim_modelzoo::ModelId;
/// use triosim_trace::{GpuModel, Tracer};
///
/// let trace = Tracer::new(GpuModel::A40).trace(&ModelId::Vgg11.build(16));
/// let platform = Platform::p1();
///
/// // TrioSim prediction and reference ground truth for the same setup.
/// let predicted = SimBuilder::new(&trace, &platform)
///     .parallelism(Parallelism::DataParallel { overlap: true })
///     .run();
/// let truth = SimBuilder::new(&trace, &platform)
///     .parallelism(Parallelism::DataParallel { overlap: true })
///     .fidelity(Fidelity::Reference)
///     .run();
/// let err = (predicted.total_time_s() - truth.total_time_s()).abs() / truth.total_time_s();
/// assert!(err < 0.25, "prediction error {err:.3}");
/// ```
#[derive(Debug)]
pub struct SimBuilder<'a> {
    trace: &'a Trace,
    platform: &'a Platform,
    parallelism: Parallelism,
    global_batch: Option<u64>,
    fidelity: Fidelity,
    compute: Option<ComputeModel>,
    network: Option<Box<dyn NetworkModel>>,
    collective_style: CollectiveStyle,
    iterations: usize,
    shards: usize,
    observability: Observability,
    faults: Option<FaultPlan>,
    fault_seed: Option<u64>,
    budget: Option<RunBudget>,
    checkpoint: Option<(PathBuf, usize)>,
    restore: Option<PathBuf>,
}

/// Why a `--shards` request takes the serial path instead, in priority
/// order. `None` means the sharded executor engages (though it may still
/// fall back serially if the network model cannot be forked pristinely).
pub(crate) fn shard_fallback_reason(
    shards: usize,
    iterations: usize,
    plan_empty: bool,
    obs_active: bool,
    profiling: bool,
    checkpointing: bool,
) -> Option<&'static str> {
    if shards <= 1 {
        return None;
    }
    if profiling {
        Some("self-profiling is active")
    } else if checkpointing {
        Some("checkpoint/restore runs serially")
    } else if !plan_empty {
        Some("a fault plan is present")
    } else if obs_active {
        Some("an observability recorder or progress monitor is attached")
    } else if iterations <= 1 {
        Some("the run has a single iteration")
    } else {
        None
    }
}

impl<'a> SimBuilder<'a> {
    /// Starts configuring a simulation of `trace` on `platform`.
    pub fn new(trace: &'a Trace, platform: &'a Platform) -> Self {
        SimBuilder {
            trace,
            platform,
            parallelism: Parallelism::DataParallel { overlap: true },
            global_batch: None,
            fidelity: Fidelity::TrioSim,
            compute: None,
            network: None,
            collective_style: CollectiveStyle::default(),
            iterations: 1,
            shards: 1,
            observability: Observability::off(),
            faults: None,
            fault_seed: None,
            budget: None,
            checkpoint: None,
            restore: None,
        }
    }

    /// Simulates `iterations` back-to-back training iterations on
    /// persistent network state (photonic circuits amortize their setup
    /// across iterations).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Executes multi-iteration runs with up to `n` worker threads
    /// sharded along the iteration axis (DESIGN.md §12). The report is
    /// byte-identical to the single-threaded run at any shard count —
    /// sharding only changes wall-clock time, never output.
    ///
    /// The parallel path engages when the run has more than one
    /// iteration, no fault plan, no observability recorder or progress
    /// monitor, and an iteration-invariant network model that supports
    /// pristine forking (the default [`FlowNetwork`] does). Every other
    /// configuration — and `n == 1` — runs serially, which is always
    /// correct.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        self.shards = n;
        self
    }

    /// Sets the parallelism strategy.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Sets the global mini-batch (see [`extrapolate`](crate::extrapolate)
    /// for its meaning under each parallelism).
    pub fn global_batch(mut self, batch: u64) -> Self {
        self.global_batch = Some(batch);
        self
    }

    /// Chooses TrioSim prediction or reference ground truth.
    pub fn fidelity(mut self, f: Fidelity) -> Self {
        self.fidelity = f;
        self
    }

    /// Overrides the operator-time policy (e.g. a pre-calibrated or
    /// cross-GPU [`ComputeModel`]).
    pub fn compute_model(mut self, m: ComputeModel) -> Self {
        self.compute = Some(m);
        self
    }

    /// Chooses the ring-AllReduce variant for data parallelism (the
    /// wafer-scale case study uses [`CollectiveStyle::Unsegmented`]).
    pub fn collective_style(mut self, style: CollectiveStyle) -> Self {
        self.collective_style = style;
        self
    }

    /// Overrides the network model (e.g. a
    /// [`PhotonicNetwork`](triosim_network::PhotonicNetwork)).
    pub fn network(mut self, n: Box<dyn NetworkModel>) -> Self {
        self.network = Some(n);
        self
    }

    /// Attaches an observability recorder (e.g. a
    /// [`RunRecorder`](triosim_obs::RunRecorder) fanning out to JSONL,
    /// Chrome-trace, and Prometheus sinks). The run emits spans and
    /// metrics into it and calls `finish` when done.
    pub fn recorder(mut self, r: Box<dyn Recorder>) -> Self {
        self.observability.recorder = Some(r);
        self
    }

    /// Attaches a live progress monitor (wall-clock throttled, stderr).
    pub fn progress(mut self, p: ProgressMonitor) -> Self {
        self.observability.progress = Some(p);
        self
    }

    /// Sets the virtual-time period between observability samples.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn sample_period(mut self, period: TimeSpan) -> Self {
        self.observability = std::mem::take(&mut self.observability).with_sample_period(period);
        self
    }

    /// Attaches a fault-injection plan. An empty plan is equivalent to no
    /// plan at all — the run takes the plain, bit-identical code path.
    /// The plan is validated against the platform by
    /// [`try_run`](Self::try_run) before execution.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the fault plan's jitter seed (the CLI's `--fault-seed`).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Attaches a runaway guard: the run terminates with
    /// [`SimError::BudgetExceeded`] if it blows any axis of `budget`.
    /// An unlimited budget is equivalent to no budget at all — the run
    /// takes the plain, bit-identical code path. A wall-clock deadline
    /// is armed when the budget is constructed, so build it right before
    /// calling [`try_run`](Self::try_run).
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = (!budget.is_unlimited()).then_some(budget);
        self
    }

    /// Writes a crash-safe engine snapshot to `path` after every `every`
    /// completed iterations (DESIGN.md §13). Snapshots are taken at
    /// quiescent iteration boundaries, written atomically (temp file +
    /// fsync + rename), and stamped with a scenario spec hash; a later
    /// run restores with [`restore`](Self::restore) and produces
    /// canonical bytes identical to an uninterrupted run.
    ///
    /// Checkpointed runs execute serially; observability and
    /// self-profiling are disabled with a warning.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least 1");
        self.checkpoint = Some((path.into(), every));
        self
    }

    /// Resumes from a snapshot written by [`checkpoint`](Self::checkpoint).
    /// The snapshot's spec hash must match this builder's scenario
    /// (trace, platform, parallelism, network, fault plan, deterministic
    /// budget axes) — iteration count, shard count, and wall-clock
    /// timeout may differ. Composes with `checkpoint` to keep
    /// checkpointing the resumed run.
    pub fn restore(mut self, path: impl Into<PathBuf>) -> Self {
        self.restore = Some(path.into());
        self
    }

    fn resolved_batch(&self) -> u64 {
        self.global_batch.unwrap_or(match self.parallelism {
            Parallelism::DataParallel { .. } => {
                self.trace.batch() * self.platform.gpu_count() as u64
            }
            Parallelism::Hybrid { dp_groups, .. } => self.trace.batch() * dp_groups as u64,
            _ => self.trace.batch(),
        })
    }

    fn resolved_compute(&self) -> ComputeModel {
        if let Some(m) = &self.compute {
            return m.clone();
        }
        let source_gpu = GpuModel::from_str(self.trace.gpu())
            .expect("trace GPU must be a known model (A40/A100/H100)");
        ComputeModel::resolve_with(
            self.fidelity,
            source_gpu,
            self.platform,
            self.parallelism,
            &mut LisModel::calibrated,
        )
    }

    fn resolved_network(&mut self) -> Box<dyn NetworkModel> {
        if let Some(n) = self.network.take() {
            return n;
        }
        let topo = self.platform.topology().clone();
        match self.fidelity {
            Fidelity::TrioSim => Box::new(FlowNetwork::new(topo)),
            Fidelity::Reference => Box::new(FlowNetwork::with_config(
                topo,
                FlowNetworkConfig::reference(),
            )),
            Fidelity::Packet => Box::new(PacketNetwork::new(topo)),
        }
    }

    /// Builds the extrapolated task graph without executing it.
    pub fn build_graph(&self) -> TaskGraph {
        let compute = self.resolved_compute();
        self.build_graph_with(&compute)
    }

    /// [`build_graph`](Self::build_graph) with an already-resolved
    /// compute model (lets the profiled path time calibration and
    /// extrapolation separately).
    fn build_graph_with(&self, compute: &ComputeModel) -> TaskGraph {
        extrapolate_with_style(
            self.trace,
            self.platform,
            self.parallelism,
            self.resolved_batch(),
            compute,
            self.collective_style,
        )
    }

    /// Checks a non-empty plan against the platform: entity ranges and
    /// value domains via [`FaultPlan::validate`], plus that every link
    /// fault names a link the topology actually has.
    fn validate_plan(&self, plan: &FaultPlan) -> Result<(), SimError> {
        let topo = self.platform.topology();
        plan.validate(self.platform.gpu_count(), topo.node_count())
            .map_err(|e| SimError::InvalidPlan(e.to_string()))?;
        let has_link = |a: usize, b: usize| {
            topo.links_from(NodeId(a)).iter().any(|(n, _)| n.0 == b)
                || topo.links_from(NodeId(b)).iter().any(|(n, _)| n.0 == a)
        };
        for (i, d) in plan.link_degradations.iter().enumerate() {
            if !has_link(d.src, d.dst) {
                return Err(SimError::InvalidPlan(format!(
                    "invalid fault plan: link_degradations[{i}]: no link between n{} and n{}",
                    d.src, d.dst
                )));
            }
        }
        for (i, l) in plan.link_failures.iter().enumerate() {
            if !has_link(l.src, l.dst) {
                return Err(SimError::InvalidPlan(format!(
                    "invalid fault plan: link_failures[{i}]: no link between n{} and n{}",
                    l.src, l.dst
                )));
            }
        }
        Ok(())
    }

    /// Extrapolates and executes the simulation, surfacing fault-induced
    /// or budget-induced early termination and invalid fault plans as
    /// typed errors.
    ///
    /// Without a fault plan (or with an empty one) and without a budget
    /// this cannot fail and produces a report bit-identical to
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlan`] when the fault plan references GPUs,
    /// nodes, or links the platform does not have (or carries
    /// out-of-domain values); [`SimError::Partitioned`] /
    /// [`SimError::GpuLost`] when an injected fault makes the remaining
    /// work impossible; [`SimError::BudgetExceeded`] when the run blows
    /// an axis of its [`budget`](Self::budget).
    pub fn try_run(self) -> Result<SimReport, SimError> {
        self.try_run_inner(None)
    }

    /// [`try_run`](Self::try_run) with host self-profiling: wall-clock
    /// spans for Li's-Model calibration (`calibration`), graph
    /// extrapolation (`graph_build`), network construction
    /// (`network_build`), and the engine loop with its network share
    /// (`engine_loop`/`network`) accumulate into `prof`.
    ///
    /// Profiling is strictly diagnostic: the returned report — including
    /// its canonical bytes — is byte-identical to an unprofiled run.
    ///
    /// # Errors
    ///
    /// Same as [`try_run`](Self::try_run).
    pub fn try_run_profiled(self, prof: &mut SelfProfiler) -> Result<SimReport, SimError> {
        self.try_run_inner(Some(prof))
    }

    fn try_run_inner(mut self, mut prof: Option<&mut SelfProfiler>) -> Result<SimReport, SimError> {
        let mut plan = self.faults.take().unwrap_or_default();
        if let Some(seed) = self.fault_seed {
            plan = plan.with_seed(seed);
        }
        if !plan.is_empty() {
            self.validate_plan(&plan)?;
        }
        let graph = match prof.as_deref_mut() {
            None => self.build_graph(),
            Some(p) => {
                let compute = p.time("calibration", || self.resolved_compute());
                p.time("graph_build", || self.build_graph_with(&compute))
            }
        };
        let mut network = match prof.as_deref_mut() {
            None => self.resolved_network(),
            Some(p) => p.time("network_build", || self.resolved_network()),
        };
        let obs = std::mem::take(&mut self.observability);
        let checkpointing = self.checkpoint.is_some() || self.restore.is_some();
        if let Some(reason) = shard_fallback_reason(
            self.shards,
            self.iterations,
            plan.is_empty(),
            obs.is_active(),
            prof.is_some(),
            checkpointing,
        ) {
            eprintln!(
                "warning: --shards {} ignored ({reason}); running serially — output bytes are \
                 unchanged",
                self.shards
            );
        }
        if checkpointing {
            if prof.is_some() {
                eprintln!("warning: self-profiling is disabled under checkpoint/restore");
            }
            if obs.is_active() {
                eprintln!(
                    "warning: observability recorders and progress are disabled under \
                     checkpoint/restore"
                );
            }
            let budget = self.budget.take().unwrap_or_else(RunBudget::unlimited);
            let hash = checkpoint::spec_hash(&graph, network.as_ref(), &plan, &budget);
            let ck = self
                .checkpoint
                .take()
                .map(|(path, every)| CheckpointConfig {
                    path,
                    every,
                    spec_hash: hash,
                });
            if let Some(path) = self.restore.take() {
                let snap = checkpoint::read_snapshot(&path).map_err(SimError::Checkpoint)?;
                let found = snap.parsed_spec_hash().map_err(SimError::Checkpoint)?;
                if found != hash {
                    return Err(SimError::Checkpoint(CheckpointError::SpecMismatch {
                        expected: hash,
                        found,
                    }));
                }
                let completed = snap.completed as usize;
                if completed > self.iterations {
                    return Err(SimError::Checkpoint(CheckpointError::Corrupt(format!(
                        "snapshot completed {completed} iterations but the run requests only {}",
                        self.iterations
                    ))));
                }
                network
                    .restore_state(&snap.state.net)
                    .map_err(|e| SimError::Checkpoint(CheckpointError::Corrupt(e.to_string())))?;
                return execute_restored(
                    &graph,
                    network.as_mut(),
                    self.iterations,
                    &plan,
                    budget,
                    completed,
                    &snap.state,
                    ck,
                );
            }
            let ck = ck.expect("checkpointing implies a checkpoint path");
            return execute_with_checkpoints(
                &graph,
                network.as_mut(),
                self.iterations,
                &plan,
                budget,
                ck,
            );
        }
        if let Some(p) = prof {
            // One entry point covers every configuration; unlimited
            // budgets and empty plans are dropped inside the executor,
            // so the simulated behavior (and the report's canonical
            // bytes) exactly matches the unprofiled dispatch below.
            return execute_budgeted_profiled(
                &graph,
                network.as_mut(),
                self.iterations,
                obs,
                &plan,
                self.budget.take().unwrap_or_else(RunBudget::unlimited),
                Some(p),
            );
        }
        if self.shards > 1 && self.iterations > 1 && plan.is_empty() && !obs.is_active() {
            // The sharded path subsumes the budgeted one: deterministic
            // axes are enforced live on the probe iteration and replayed
            // in canonical event order over the parallel blocks, so
            // trips carry the exact serial kind and limit.
            return crate::shardexec::execute_sharded(
                &graph,
                network.as_mut(),
                self.iterations,
                self.shards,
                self.budget.take().unwrap_or_else(RunBudget::unlimited),
            );
        }
        if let Some(budget) = self.budget.take() {
            return execute_budgeted(
                &graph,
                network.as_mut(),
                self.iterations,
                obs,
                &plan,
                budget,
            );
        }
        if plan.is_empty() {
            if obs.is_active() {
                Ok(execute_observed(
                    &graph,
                    network.as_mut(),
                    self.iterations,
                    obs,
                ))
            } else {
                Ok(execute_iterations(
                    &graph,
                    network.as_mut(),
                    self.iterations,
                ))
            }
        } else {
            execute_faulted(&graph, network.as_mut(), self.iterations, obs, &plan)
        }
    }

    /// Extrapolates and executes the simulation.
    ///
    /// # Panics
    ///
    /// Panics on any condition [`try_run`](Self::try_run) reports as an
    /// error (invalid fault plans, fault-induced partitions or GPU loss).
    /// Fault-free configurations never panic here.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triosim_modelzoo::ModelId;
    use triosim_trace::Tracer;

    fn trace() -> Trace {
        Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(16))
    }

    #[test]
    fn default_run_completes() {
        let t = trace();
        let p = Platform::p2(2);
        let r = SimBuilder::new(&t, &p).run();
        assert!(r.total_time_s() > 0.0);
        assert!(r.tasks_executed() > 100);
    }

    #[test]
    fn default_dp_batch_is_weak_scaling() {
        let t = trace();
        let p = Platform::p2(4);
        let b = SimBuilder::new(&t, &p);
        assert_eq!(b.resolved_batch(), 16 * 4);
    }

    #[test]
    fn reference_differs_from_prediction_but_not_wildly() {
        let t = trace();
        let p = Platform::p2(2);
        let pred = SimBuilder::new(&t, &p).run();
        let truth = SimBuilder::new(&t, &p).fidelity(Fidelity::Reference).run();
        let err = (pred.total_time_s() - truth.total_time_s()).abs() / truth.total_time_s();
        assert!(err < 0.20, "error {err}");
        assert!(err > 0.0, "models are distinct");
    }

    #[test]
    fn more_gpus_scale_weakly() {
        let t = trace();
        let p2 = Platform::p2(2);
        let p4 = Platform::p2(4);
        let r2 = SimBuilder::new(&t, &p2).run();
        let r4 = SimBuilder::new(&t, &p4).run();
        // Weak scaling: total time grows only mildly with GPU count.
        assert!(r4.total_time_s() < 1.5 * r2.total_time_s());
    }

    #[test]
    fn pipeline_runs() {
        let t = trace();
        let p = Platform::p2(2);
        let r = SimBuilder::new(&t, &p)
            .parallelism(Parallelism::Pipeline { chunks: 2 })
            .run();
        assert!(r.total_time_s() > 0.0);
        assert!(r.comm_time_s() > 0.0, "activations crossed the wire");
    }

    #[test]
    fn event_budget_terminates_with_typed_error() {
        let t = trace();
        let p = Platform::p2(2);
        let err = SimBuilder::new(&t, &p)
            .budget(RunBudget::unlimited().with_max_events(10))
            .try_run()
            .expect_err("10 events cannot finish a training iteration");
        assert_eq!(
            err.to_string(),
            "budget exceeded: more than 10 events delivered"
        );
    }

    #[test]
    fn sim_time_budget_terminates_with_typed_error() {
        let t = trace();
        let p = Platform::p2(2);
        let err = SimBuilder::new(&t, &p)
            .budget(RunBudget::unlimited().with_max_sim_time_us(1))
            .try_run()
            .expect_err("1us cannot finish a training iteration");
        assert_eq!(
            err.to_string(),
            "budget exceeded: simulated time passed 1us"
        );
    }

    #[test]
    fn generous_budget_is_bit_identical_to_no_budget() {
        let t = trace();
        let p = Platform::p2(2);
        let plain = SimBuilder::new(&t, &p).run();
        let budgeted = SimBuilder::new(&t, &p)
            .budget(RunBudget::unlimited().with_max_events(u64::MAX))
            .try_run()
            .expect("generous budget never trips");
        assert_eq!(plain.to_canonical_json(), budgeted.to_canonical_json());
        // Unlimited budgets are dropped entirely.
        let unlimited = SimBuilder::new(&t, &p).budget(RunBudget::unlimited());
        assert!(unlimited.budget.is_none());
    }

    #[test]
    fn budget_composes_with_fault_plans() {
        use triosim_faults::GpuDropout;
        let t = trace();
        let p = Platform::p2(2);
        let plan = FaultPlan {
            gpu_dropouts: vec![GpuDropout { gpu: 1, at_s: 1e9 }],
            ..FaultPlan::default()
        };
        let err = SimBuilder::new(&t, &p)
            .faults(plan)
            .budget(RunBudget::unlimited().with_max_events(10))
            .try_run()
            .expect_err("budget trips long before the scheduled fault");
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let t = trace();
        let p = Platform::p2(2);
        let serial = SimBuilder::new(&t, &p).iterations(5).run();
        for shards in [2, 3, 8] {
            let sharded = SimBuilder::new(&t, &p).iterations(5).shards(shards).run();
            assert_eq!(
                serial.to_canonical_json(),
                sharded.to_canonical_json(),
                "shards={shards} diverged from the serial oracle"
            );
        }
    }

    #[test]
    fn sharded_budget_trip_matches_serial_kind_and_limit() {
        let t = trace();
        let p = Platform::p2(2);
        let run = |shards: usize, limit: u64| {
            SimBuilder::new(&t, &p)
                .iterations(4)
                .shards(shards)
                .budget(RunBudget::unlimited().with_max_events(limit))
                .try_run()
        };
        // A limit the probe iteration itself trips.
        let serial = run(1, 10).expect_err("10 events cannot finish");
        for shards in [2, 4] {
            let sharded = run(shards, 10).expect_err("10 events cannot finish");
            assert_eq!(serial.to_string(), sharded.to_string());
        }
        // A family of limits sweeping from "trips in the probe" through
        // "trips in a parallel block via deterministic replay" to "never
        // trips": serial and sharded must agree exactly at every point.
        for limit in [10, 1_000, 10_000, 100_000, u64::MAX - 1] {
            let serial = run(1, limit).map(|r| r.to_canonical_json());
            for shards in [2, 4] {
                let sharded = run(shards, limit).map(|r| r.to_canonical_json());
                match (&serial, &sharded) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "limit={limit} shards={shards}"),
                    (Err(a), Err(b)) => {
                        assert_eq!(
                            a.to_string(),
                            b.to_string(),
                            "limit={limit} shards={shards}"
                        );
                    }
                    _ => panic!("limit={limit} shards={shards}: serial and sharded disagree"),
                }
            }
        }
    }

    #[test]
    fn sharded_run_composes_with_budget_byte_identically() {
        let t = trace();
        let p = Platform::p2(2);
        let plain = SimBuilder::new(&t, &p).iterations(4).run();
        let sharded = SimBuilder::new(&t, &p)
            .iterations(4)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_events(u64::MAX))
            .try_run()
            .expect("generous budget never trips");
        assert_eq!(plain.to_canonical_json(), sharded.to_canonical_json());
    }

    #[test]
    fn shards_with_faults_fall_back_to_the_serial_path() {
        use triosim_faults::GpuSlowdown;
        let t = trace();
        let p = Platform::p2(2);
        let plan = FaultPlan {
            gpu_slowdowns: vec![GpuSlowdown {
                gpu: 1,
                factor: 1.5,
            }],
            ..FaultPlan::default()
        };
        let serial = SimBuilder::new(&t, &p)
            .iterations(3)
            .faults(plan.clone())
            .run();
        let sharded = SimBuilder::new(&t, &p)
            .iterations(3)
            .shards(4)
            .faults(plan)
            .run();
        assert_eq!(serial.to_canonical_json(), sharded.to_canonical_json());
    }

    #[test]
    fn fallback_reasons_are_named_in_priority_order() {
        // (shards, iterations, plan_empty, obs, prof, ckpt) → reason
        let r = |sh, it, pe, ob, pr, ck| shard_fallback_reason(sh, it, pe, ob, pr, ck);
        assert_eq!(
            r(1, 1, false, true, true, true),
            None,
            "1 shard never warns"
        );
        assert_eq!(r(4, 8, true, false, false, false), None, "shardable run");
        assert_eq!(
            r(4, 8, true, false, true, false),
            Some("self-profiling is active")
        );
        assert_eq!(
            r(4, 8, true, false, false, true),
            Some("checkpoint/restore runs serially")
        );
        assert_eq!(
            r(4, 8, false, false, false, false),
            Some("a fault plan is present")
        );
        assert_eq!(
            r(4, 8, true, true, false, false),
            Some("an observability recorder or progress monitor is attached")
        );
        assert_eq!(
            r(4, 1, true, false, false, false),
            Some("the run has a single iteration")
        );
    }

    #[test]
    fn checkpoint_cadence_must_be_positive() {
        let t = trace();
        let p = Platform::p2(2);
        let result = std::panic::catch_unwind(|| {
            let _ = SimBuilder::new(&t, &p).checkpoint("/tmp/x", 0);
        });
        assert!(result.is_err(), "zero cadence must panic");
    }

    #[test]
    fn tensor_parallel_runs() {
        let t = trace();
        let p = Platform::p2(2);
        let r = SimBuilder::new(&t, &p)
            .parallelism(Parallelism::TensorParallel)
            .run();
        assert!(r.total_time_s() > 0.0);
        assert!(r.comm_ratio() > 0.0);
    }
}
