//! Daisen-style timeline visualization.
//!
//! The original TrioSim inherits Daisen (a GPU-execution visualization
//! framework) through the Akita ecosystem. This module renders a
//! [`SimReport`]'s timeline as a single self-contained HTML file — an SVG
//! Gantt chart with one lane per GPU plus a network lane, hover tooltips,
//! and a phase-colored legend — viewable in any browser with no
//! dependencies.

use std::fmt::Write as _;

use crate::report::{SimReport, TimelineRecord, TimelineTrack};

/// Category a timeline record is colored by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Forward,
    Backward,
    Optimizer,
    Transfer,
    Other,
}

impl Lane {
    fn of(r: &TimelineRecord) -> Lane {
        if r.track == TimelineTrack::Network {
            return Lane::Transfer;
        }
        if r.label.contains(".bwd") {
            Lane::Backward
        } else if r.label.contains(".sgd") {
            Lane::Optimizer
        } else if r.label.contains('@') || r.label.contains(".fwd") {
            Lane::Forward
        } else {
            Lane::Other
        }
    }

    fn color(self) -> &'static str {
        match self {
            Lane::Forward => "#4c9ac0",
            Lane::Backward => "#c0704c",
            Lane::Optimizer => "#8bc04c",
            Lane::Transfer => "#9b6fc0",
            Lane::Other => "#9aa0a6",
        }
    }

    fn name(self) -> &'static str {
        match self {
            Lane::Forward => "forward",
            Lane::Backward => "backward",
            Lane::Optimizer => "optimizer",
            Lane::Transfer => "transfer",
            Lane::Other => "other",
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&#39;")
}

/// Renders the report's timeline as a standalone HTML document.
///
/// One horizontal lane per GPU plus a network lane; spans are colored by
/// phase (forward / backward / optimizer / transfer) with the task label
/// and timing in a hover tooltip.
///
/// # Example
///
/// ```rust
/// use triosim::{render_html_timeline, Parallelism, Platform, SimBuilder};
/// use triosim_modelzoo::ModelId;
/// use triosim_trace::{GpuModel, Tracer};
///
/// let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(8));
/// let report = SimBuilder::new(&trace, &Platform::p2(2))
///     .parallelism(Parallelism::Pipeline { chunks: 2 })
///     .run();
/// let html = render_html_timeline(&report, "ResNet-18 GPipe x2");
/// assert!(html.contains("<svg"));
/// assert!(html.contains("GPU 0"));
/// ```
pub fn render_html_timeline(report: &SimReport, title: &str) -> String {
    let total = report.total_time_s().max(1e-12);
    let gpus = report.per_gpu_compute().len();
    const WIDTH: f64 = 1200.0;
    const LANE_H: f64 = 28.0;
    const LANE_GAP: f64 = 8.0;
    const LEFT: f64 = 70.0;
    let lanes = gpus + 1; // + network
    let height = lanes as f64 * (LANE_H + LANE_GAP) + 60.0;

    let mut svg = String::new();
    // Lane backgrounds and labels.
    for lane in 0..lanes {
        let y = 30.0 + lane as f64 * (LANE_H + LANE_GAP);
        let label = if lane < gpus {
            format!("GPU {lane}")
        } else {
            "network".to_string()
        };
        let _ = write!(
            svg,
            r##"<rect x="{LEFT}" y="{y}" width="{WIDTH}" height="{LANE_H}" fill="#f2f3f5"/><text x="4" y="{ty}" font-size="12" fill="#333">{label}</text>"##,
            ty = y + LANE_H / 2.0 + 4.0,
        );
    }
    // Spans.
    for r in report.timeline() {
        let lane = match r.track {
            TimelineTrack::Gpu(g) => g,
            TimelineTrack::Network => gpus,
        };
        let x = LEFT + WIDTH * r.start.as_seconds() / total;
        let w = (WIDTH * (r.end - r.start).as_seconds() / total).max(0.5);
        let y = 30.0 + lane as f64 * (LANE_H + LANE_GAP) + 2.0;
        let kind = Lane::of(r);
        let tip = format!(
            "{} [{:.3}..{:.3} ms]",
            escape(&r.label),
            r.start.as_seconds() * 1e3,
            r.end.as_seconds() * 1e3
        );
        let _ = write!(
            svg,
            r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{color}" opacity="0.9"><title>{tip}</title></rect>"##,
            h = LANE_H - 4.0,
            color = kind.color(),
        );
    }
    // Time axis ticks (5 divisions).
    for i in 0..=5 {
        let x = LEFT + WIDTH * i as f64 / 5.0;
        let t_ms = total * 1e3 * i as f64 / 5.0;
        let _ = write!(
            svg,
            r##"<line x1="{x}" y1="25" x2="{x}" y2="{yb}" stroke="#ccc" stroke-dasharray="2,3"/><text x="{x}" y="18" font-size="11" text-anchor="middle" fill="#555">{t_ms:.1} ms</text>"##,
            yb = height - 30.0,
        );
    }
    // Legend.
    let mut legend = String::new();
    for (i, kind) in [
        Lane::Forward,
        Lane::Backward,
        Lane::Optimizer,
        Lane::Transfer,
    ]
    .into_iter()
    .enumerate()
    {
        let x = LEFT + i as f64 * 130.0;
        let y = height - 18.0;
        let _ = write!(
            legend,
            r##"<rect x="{x}" y="{ry}" width="12" height="12" fill="{c}"/><text x="{tx}" y="{y}" font-size="12" fill="#333">{n}</text>"##,
            ry = y - 11.0,
            c = kind.color(),
            tx = x + 16.0,
            n = kind.name(),
        );
    }

    format!(
        r##"<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title></head>
<body style="font-family:sans-serif;margin:16px">
<h2 style="margin:0 0 4px 0">{title}</h2>
<p style="margin:0 0 12px 0;color:#555">total {total_ms:.2} ms &middot; compute (max GPU) {comp_ms:.2} ms &middot; communication {comm_ms:.2} ms ({ratio:.0}%) &middot; {tasks} tasks &middot; hover spans for detail</p>
<svg width="{svg_w}" height="{height}" xmlns="http://www.w3.org/2000/svg">{svg}{legend}</svg>
</body></html>
"##,
        title = escape(title),
        total_ms = total * 1e3,
        comp_ms = report.compute_time_s() * 1e3,
        comm_ms = report.comm_time_s() * 1e3,
        ratio = 100.0 * report.comm_ratio(),
        tasks = report.tasks_executed(),
        svg_w = LEFT + WIDTH + 10.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Parallelism, Platform, SimBuilder};
    use triosim_modelzoo::ModelId;
    use triosim_trace::{GpuModel, Tracer};

    fn sample_report() -> SimReport {
        let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(4));
        SimBuilder::new(&trace, &Platform::p2(2))
            .parallelism(Parallelism::DataParallel { overlap: true })
            .run()
    }

    #[test]
    fn html_contains_all_lanes_and_legend() {
        let html = render_html_timeline(&sample_report(), "test run");
        assert!(html.contains("GPU 0") && html.contains("GPU 1"));
        assert!(html.contains(">network<"));
        for name in ["forward", "backward", "optimizer", "transfer"] {
            assert!(html.contains(name), "legend misses {name}");
        }
        assert!(html.starts_with("<!DOCTYPE html>"));
    }

    #[test]
    fn spans_scale_to_the_total() {
        let report = sample_report();
        let html = render_html_timeline(&report, "t");
        // One tooltip-bearing span per timeline record (the head's
        // <title> tag is not a span).
        let count = html.matches(r#"opacity="0.9""#).count();
        assert_eq!(count, report.timeline().len());
    }

    #[test]
    fn labels_are_escaped() {
        let html = render_html_timeline(&sample_report(), "a<b>&c");
        assert!(html.contains("a&lt;b&gt;&amp;c"));
        assert!(!html.contains("<b>&c"));
    }

    #[test]
    fn quotes_are_escaped_in_attribute_context() {
        // A hostile label must not be able to break out of the title=""
        // attribute the span labels are interpolated into.
        let html = render_html_timeline(&sample_report(), r#"x" onmouseover="alert('p0wn')"#);
        assert!(!html.contains(r#"x" onmouseover"#), "quote escaped");
        assert!(html.contains("&quot;"));
        assert!(html.contains("&#39;"));
    }

    #[test]
    fn phase_classification() {
        let trace = Tracer::new(GpuModel::A100).trace(&ModelId::Vgg11.build(4));
        let report = SimBuilder::new(&trace, &Platform::p2(2))
            .parallelism(Parallelism::DataParallel { overlap: false })
            .run();
        let html = render_html_timeline(&report, "phases");
        // All four phase colors appear (fwd, bwd, opt, transfer).
        for color in ["#4c9ac0", "#c0704c", "#8bc04c", "#9b6fc0"] {
            assert!(html.contains(color), "missing {color}");
        }
    }
}
