//! The Hop heterogeneity-aware decentralized-training case study (§7.2).
//!
//! Hop (Luo et al., ASPLOS 2019) replaces global AllReduce with
//! neighbour-to-neighbour update exchange over a communication graph, and
//! manages heterogeneity with queue-based synchronization:
//!
//! * **update queues / backup workers** — a worker may begin its next
//!   iteration after receiving updates from all but `backup_workers` of
//!   its neighbours, so one slow neighbour no longer stalls everyone;
//! * **token queues / bounded staleness** — no worker may run more than
//!   `bounded_staleness` iterations ahead of any neighbour, bounding
//!   divergence.
//!
//! The paper uses this case study to show TrioSim simulating non-standard
//! synchronization and asymmetric (randomly slowed) networks. We
//! reproduce it as a dedicated event-driven simulator: the k-of-n
//! readiness condition does not fit the static task DAG the standard
//! extrapolator emits.

use std::collections::BTreeMap;

use triosim_des::{EventQueue, TimeSpan};

/// The neighbour graph workers gossip over.
///
/// # Example
///
/// ```rust
/// use triosim::HopGraph;
///
/// let g = HopGraph::ring_based(8);
/// // Ring neighbours plus the most distant node.
/// assert!(g.neighbors(0).contains(&1));
/// assert!(g.neighbors(0).contains(&7));
/// assert!(g.neighbors(0).contains(&4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopGraph {
    neighbors: Vec<Vec<usize>>,
}

impl HopGraph {
    /// The paper's ring-based graph: a bidirectional ring with an extra
    /// connection from each node to its most distant node.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is odd.
    pub fn ring_based(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_multiple_of(2),
            "ring-based graph needs an even n >= 4"
        );
        let mut neighbors = vec![Vec::new(); n];
        for (i, nbrs) in neighbors.iter_mut().enumerate() {
            nbrs.push((i + 1) % n);
            nbrs.push((i + n - 1) % n);
            let far = (i + n / 2) % n;
            if !nbrs.contains(&far) {
                nbrs.push(far);
            }
            nbrs.sort_unstable();
        }
        HopGraph { neighbors }
    }

    /// The paper's double-ring graph: two rings of `n/2` nodes
    /// interconnected node-to-node.
    ///
    /// # Panics
    ///
    /// Panics if `n < 6` or `n` is odd.
    pub fn double_ring(n: usize) -> Self {
        assert!(
            n >= 6 && n.is_multiple_of(2),
            "double ring needs an even n >= 6"
        );
        let half = n / 2;
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..half {
            let next = (i + 1) % half;
            let prev = (i + half - 1) % half;
            neighbors[i].extend([next, prev, half + i]);
            neighbors[half + i].extend([half + next, half + prev, i]);
        }
        for nbrs in &mut neighbors {
            nbrs.sort_unstable();
            nbrs.dedup();
        }
        HopGraph { neighbors }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbours of worker `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }
}

/// Parameters of a Hop training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopConfig {
    /// Updates a worker may miss per iteration (0 = fully synchronous
    /// gossip; 1 = the paper's one-backup-worker configuration).
    pub backup_workers: usize,
    /// Maximum iterations a worker may run ahead of any neighbour.
    pub bounded_staleness: usize,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Compute time of one iteration (forward + backward), seconds.
    pub compute_time_s: f64,
    /// Size of one model update, bytes.
    pub update_bytes: u64,
    /// Baseline per-link bandwidth, bytes/s.
    pub link_bandwidth: f64,
    /// Per-link latency, seconds.
    pub link_latency_s: f64,
    /// Hop's iteration-skipping feature: a straggler that has fallen this
    /// many iterations behind its fastest neighbour skips the compute of
    /// its next iteration (it merges received updates instead of
    /// producing one), catching up at the cost of a silent update.
    /// `None` disables skipping.
    pub skip_lag: Option<usize>,
}

/// Result of a Hop run.
#[derive(Debug, Clone, PartialEq)]
pub struct HopReport {
    /// Time at which the last worker finished its final iteration.
    pub total_time_s: f64,
    /// Finish time of each worker.
    pub per_worker_finish_s: Vec<f64>,
    /// Total updates skipped thanks to backup workers.
    pub updates_skipped: u64,
    /// Iterations stragglers skipped via the skip-lag mechanism.
    pub iterations_skipped: u64,
}

#[derive(Debug)]
enum HopEvent {
    ComputeDone { worker: usize, iter: usize },
    UpdateArrived { to: usize, iter: usize },
}

/// Event-driven simulator of the Hop protocol.
#[derive(Debug)]
pub struct HopSimulator {
    graph: HopGraph,
    config: HopConfig,
}

impl HopSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero iterations or non-positive compute
    /// time/bandwidth.
    pub fn new(graph: HopGraph, config: HopConfig) -> Self {
        assert!(config.iterations > 0, "need at least one iteration");
        assert!(config.compute_time_s > 0.0, "compute time must be positive");
        assert!(config.link_bandwidth > 0.0, "bandwidth must be positive");
        HopSimulator { graph, config }
    }

    /// Runs the protocol with heterogeneous links and homogeneous
    /// compute. See [`run_with`](Self::run_with) for the general form.
    pub fn run(&self, slowdown: &dyn Fn(usize, usize) -> f64) -> HopReport {
        self.run_with(slowdown, &|_| 1.0)
    }

    /// Runs the protocol under a compiled fault session: per-worker
    /// compute slowdowns dilate iteration compute, and the plan's link
    /// degradations slow the matching neighbour links. This is the Hop
    /// view of a [`FaultPlan`](triosim_faults::FaultPlan) — the same
    /// straggler plan drives both the DAG executor and this case study,
    /// so "one slow GPU" experiments line up across the two.
    pub fn run_with_faults(&self, session: &triosim_faults::FaultSession) -> HopReport {
        self.run_with(&|from, to| session.link_slowdown(from, to), &|w| {
            session.compute_factor(w)
        })
    }

    /// Runs the protocol. `slowdown(from, to)` returns the heterogeneity
    /// factor (>= 1) applied to the transfer time on that directed link;
    /// `compute_factor(worker)` scales each worker's iteration compute
    /// time (>= 1 models a slow board, thermal throttling, or a shared
    /// tenant). Use `|_, _| 1.0` / `|_| 1.0` for a homogeneous cluster.
    pub fn run_with(
        &self,
        slowdown: &dyn Fn(usize, usize) -> f64,
        compute_factor: &dyn Fn(usize) -> f64,
    ) -> HopReport {
        let n = self.graph.workers();
        let cfg = &self.config;
        let mut queue: EventQueue<HopEvent> = EventQueue::new();

        // Per-worker state.
        let mut started = vec![0usize; n]; // iterations started so far
        let mut compute_done = vec![0usize; n]; // iterations whose compute finished
                                                // received[w] counts updates tagged with each iteration.
        let mut received: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n];
        let mut finish = vec![0.0f64; n];
        let mut updates_skipped = 0u64;
        let mut iterations_skipped = 0u64;

        let transfer_span = |from: usize, to: usize| {
            let f = slowdown(from, to);
            assert!(f >= 1.0, "slowdown factors must be >= 1");
            TimeSpan::from_seconds(
                cfg.link_latency_s + cfg.update_bytes as f64 * f / cfg.link_bandwidth,
            )
        };

        // A worker may start iteration `it` (0-based) when:
        //  * its previous compute finished,
        //  * it received >= deg - backup updates from iteration it-1,
        //  * no neighbour is more than `staleness` iterations behind
        //    (token queue): started[v] + staleness >= it.
        let can_start = |w: usize,
                         it: usize,
                         compute_done: &[usize],
                         received: &[BTreeMap<usize, usize>],
                         started: &[usize]| {
            if it >= cfg.iterations || compute_done[w] < it {
                return false;
            }
            if it > 0 {
                let deg = self.graph.neighbors(w).len();
                let need = deg.saturating_sub(cfg.backup_workers);
                let got = received[w].get(&(it - 1)).copied().unwrap_or(0);
                if got < need {
                    return false;
                }
            }
            self.graph
                .neighbors(w)
                .iter()
                .all(|&v| started[v] + cfg.bounded_staleness >= it)
        };

        // A straggler skips its compute when it lags its fastest
        // neighbour by at least `skip_lag` iterations.
        let should_skip = |w: usize, started: &[usize]| -> bool {
            let Some(lag) = cfg.skip_lag else {
                return false;
            };
            let fastest = self
                .graph
                .neighbors(w)
                .iter()
                .map(|&v| started[v])
                .max()
                .unwrap_or(0);
            fastest >= started[w] + lag.max(1)
        };

        let mut start_iter =
            |w: usize, queue: &mut EventQueue<HopEvent>, started: &mut [usize], skip: bool| {
                let it = started[w];
                started[w] = it + 1;
                let span = if skip {
                    iterations_skipped += 1;
                    TimeSpan::ZERO
                } else {
                    TimeSpan::from_seconds(cfg.compute_time_s * compute_factor(w).max(1.0))
                };
                queue.schedule_in(
                    span,
                    HopEvent::ComputeDone {
                        worker: w,
                        iter: it,
                    },
                );
            };

        for w in 0..n {
            start_iter(w, &mut queue, &mut started, false);
        }

        while let Some((now, event)) = queue.pop() {
            match event {
                HopEvent::ComputeDone { worker, iter } => {
                    compute_done[worker] = iter + 1;
                    finish[worker] = now.as_seconds();
                    // Ship the update to every neighbour.
                    for &v in self.graph.neighbors(worker) {
                        queue.schedule(
                            now + transfer_span(worker, v),
                            HopEvent::UpdateArrived { to: v, iter },
                        );
                    }
                }
                HopEvent::UpdateArrived { to, iter } => {
                    *received[to].entry(iter).or_insert(0) += 1;
                }
            }

            // Re-check start conditions for every worker (cheap at this
            // scale, and keeps the condition logic in one place).
            for w in 0..n {
                let it = started[w];
                if it > compute_done[w] {
                    continue; // still computing
                }
                if can_start(w, it, &compute_done, &received, &started) {
                    if it > 0 {
                        let deg = self.graph.neighbors(w).len();
                        let got = received[w].get(&(it - 1)).copied().unwrap_or(0);
                        updates_skipped += (deg - got.min(deg)) as u64;
                    }
                    let skip = should_skip(w, &started);
                    start_iter(w, &mut queue, &mut started, skip);
                }
            }
        }

        assert!(
            compute_done.iter().all(|&c| c == cfg.iterations),
            "Hop run did not converge: {compute_done:?}"
        );
        let total = finish.iter().copied().fold(0.0, f64::max);
        HopReport {
            total_time_s: total,
            per_worker_finish_s: finish,
            updates_skipped,
            iterations_skipped,
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &HopGraph {
        &self.graph
    }

    /// The configuration.
    pub fn config(&self) -> &HopConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(backup: usize) -> HopConfig {
        HopConfig {
            backup_workers: backup,
            bounded_staleness: 2,
            iterations: 10,
            compute_time_s: 0.1,
            update_bytes: 100_000_000,
            link_bandwidth: 10e9,
            link_latency_s: 1e-6,
            skip_lag: None,
        }
    }

    #[test]
    fn homogeneous_cluster_finishes_in_lockstep() {
        let sim = HopSimulator::new(HopGraph::ring_based(8), config(0));
        let r = sim.run(&|_, _| 1.0);
        let min = r
            .per_worker_finish_s
            .iter()
            .copied()
            .fold(f64::MAX, f64::min);
        assert!((r.total_time_s - min).abs() < 1e-9, "all workers tie");
        // 10 iterations of 0.1 s compute plus comm waits.
        assert!(r.total_time_s >= 1.0);
        assert_eq!(r.updates_skipped, 0);
    }

    #[test]
    fn backup_worker_speeds_up_heterogeneous_cluster() {
        let slow = |from: usize, _to: usize| if from == 3 { 10.0 } else { 1.0 };
        let base = HopSimulator::new(HopGraph::ring_based(8), config(0)).run(&slow);
        let backup = HopSimulator::new(HopGraph::ring_based(8), config(1)).run(&slow);
        assert!(
            backup.total_time_s < base.total_time_s,
            "backup {} vs base {}",
            backup.total_time_s,
            base.total_time_s
        );
        assert!(backup.updates_skipped > 0);
    }

    #[test]
    fn double_ring_graph_shape() {
        let g = HopGraph::double_ring(8);
        assert_eq!(g.workers(), 8);
        // Ring A node 0: neighbours 1, 3 (ring of 4), and 4 (cross link).
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
    }

    #[test]
    fn staleness_bounds_divergence() {
        // With staleness 0, every worker must stay in lockstep with its
        // neighbours even with a backup worker allowed.
        let mut cfg = config(1);
        cfg.bounded_staleness = 0;
        let slow = |from: usize, _to: usize| if from == 0 { 8.0 } else { 1.0 };
        let strict = HopSimulator::new(HopGraph::ring_based(8), cfg).run(&slow);
        let mut relaxed_cfg = config(1);
        relaxed_cfg.bounded_staleness = 3;
        let relaxed = HopSimulator::new(HopGraph::ring_based(8), relaxed_cfg).run(&slow);
        assert!(relaxed.total_time_s <= strict.total_time_s + 1e-9);
    }

    #[test]
    fn deterministic() {
        let sim = HopSimulator::new(HopGraph::ring_based(8), config(1));
        let f = |from: usize, to: usize| 1.0 + ((from * 7 + to) % 5) as f64;
        assert_eq!(sim.run(&f), sim.run(&f));
    }

    #[test]
    fn skipping_lets_a_slow_worker_catch_up() {
        // Worker 5 computes 4x slower. With skipping it sheds iterations
        // and the cluster finishes earlier.
        let compute = |w: usize| if w == 5 { 4.0 } else { 1.0 };
        let mut with_skip = config(1);
        with_skip.skip_lag = Some(2);
        let base =
            HopSimulator::new(HopGraph::ring_based(8), config(1)).run_with(&|_, _| 1.0, &compute);
        let skipping =
            HopSimulator::new(HopGraph::ring_based(8), with_skip).run_with(&|_, _| 1.0, &compute);
        assert_eq!(base.iterations_skipped, 0);
        assert!(skipping.iterations_skipped > 0);
        assert!(
            skipping.total_time_s < base.total_time_s,
            "skip {} vs base {}",
            skipping.total_time_s,
            base.total_time_s
        );
    }

    #[test]
    fn homogeneous_cluster_never_skips() {
        let mut cfg = config(1);
        cfg.skip_lag = Some(2);
        let r = HopSimulator::new(HopGraph::ring_based(8), cfg).run(&|_, _| 1.0);
        assert_eq!(r.iterations_skipped, 0);
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn odd_ring_rejected() {
        let _ = HopGraph::ring_based(7);
    }
}
