//! Operator-time policies (§4.4 of the paper).
//!
//! TrioSim offers two ways to time a computation operator: the
//! trace-provided measured time (exact, but only valid when the simulated
//! GPU and shapes match the trace) and Li's Model (flexible: new batch
//! sizes, split tensors, new GPUs). [`ComputeModel`] encodes that policy,
//! plus the *reference* policy this reproduction uses as its hardware
//! stand-in ground truth.

use std::hash::{Hash, Hasher};

use triosim_modelzoo::Operator;
use triosim_perfmodel::LisModel;
use triosim_trace::{GpuModel, OracleGpu};

use crate::parallelism::Parallelism;
use crate::platform::Platform;

/// Which side of a validation experiment a simulation plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// TrioSim proper: clean flow network, Li's-Model compute policy.
    #[default]
    TrioSim,
    /// The high-fidelity reference ("real hardware" stand-in): oracle
    /// operator times with multi-GPU context jitter, protocol-aware
    /// network.
    Reference,
    /// TrioSim compute with the packet-level network tier: MTU
    /// packetization, switch queues, ECN/DCTCP congestion control, and
    /// retransmission. Use where protocol effects matter (incast,
    /// oversubscribed fabrics); `tests/fidelity.rs` cross-validates it
    /// against the flow tier.
    Packet,
}

/// The operator-time policy of one simulation.
#[derive(Debug, Clone)]
pub enum ComputeModel {
    /// TrioSim's policy: trace-provided time when the operator is
    /// unchanged; Li's-Model ratio rescaling when shapes changed; a
    /// second calibrated model when predicting a different GPU than the
    /// trace was collected on.
    Lis {
        /// Model calibrated for the GPU the trace was collected on.
        source: LisModel,
        /// Model for the simulated GPU, when different from the source.
        target: Option<LisModel>,
    },
    /// Ground-truth policy: every operator re-timed by the oracle at its
    /// simulated shape, plus the multi-GPU effects TrioSim abstracts
    /// away: a systematic per-board speed factor (silicon binning and
    /// thermal variation make nominally identical GPUs run a few percent
    /// apart), small per-operator interference noise, and an optional
    /// per-operator host dispatch overhead (the single-process GIL
    /// serialization that makes `DataParallel` slower than DDP).
    Reference {
        /// The oracle for the simulated GPU.
        oracle: OracleGpu,
        /// Per-board systematic speed variation amplitude (e.g. 0.02).
        board_skew: f64,
        /// Per-operator interference noise amplitude (e.g. 0.005).
        context_jitter: f64,
        /// Fixed host-dispatch overhead added to every operator, seconds.
        dispatch_overhead_s: f64,
    },
}

impl ComputeModel {
    /// TrioSim policy for a same-GPU simulation.
    pub fn lis(source: LisModel) -> Self {
        ComputeModel::Lis {
            source,
            target: None,
        }
    }

    /// TrioSim policy for a cross-GPU prediction (trace collected on
    /// `source`'s GPU, simulating `target`'s GPU).
    pub fn lis_cross(source: LisModel, target: LisModel) -> Self {
        ComputeModel::Lis {
            source,
            target: Some(target),
        }
    }

    /// Reference (ground truth) policy with the default ±2% board skew
    /// and ±0.5% interference noise.
    pub fn reference(oracle: OracleGpu) -> Self {
        ComputeModel::Reference {
            oracle,
            board_skew: 0.02,
            context_jitter: 0.005,
            dispatch_overhead_s: 0.0,
        }
    }

    /// Reference policy with a per-operator host dispatch overhead.
    ///
    /// Real systems pay CPU-side costs TrioSim does not model: the Python
    /// GIL serializes `DataParallel` kernel launches across replicas, and
    /// the torch pipelining runtime adds scheduling work per micro-batch
    /// operator (the effect behind the paper's Figure 10 anomalies at
    /// small micro-batches). Ground-truth simulations of those modes pass
    /// the corresponding overhead here.
    pub fn reference_with_dispatch(oracle: OracleGpu, dispatch_overhead_s: f64) -> Self {
        assert!(dispatch_overhead_s >= 0.0, "overhead must be non-negative");
        ComputeModel::Reference {
            oracle,
            board_skew: 0.02,
            context_jitter: 0.005,
            dispatch_overhead_s,
        }
    }

    /// Resolves the default operator-time policy for a simulation of a
    /// trace collected on `source_gpu`, run on `platform` under
    /// `parallelism` at `fidelity`.
    ///
    /// `calibrate` supplies Li's Models per GPU; callers that run many
    /// scenarios (the sweep engine) pass a memoizing closure so each GPU
    /// model is calibrated once and shared, while single runs pass
    /// [`LisModel::calibrated`] directly.
    pub fn resolve_with(
        fidelity: Fidelity,
        source_gpu: GpuModel,
        platform: &Platform,
        parallelism: Parallelism,
        calibrate: &mut dyn FnMut(GpuModel) -> LisModel,
    ) -> Self {
        match fidelity {
            // The packet tier changes only the network; compute stays
            // on TrioSim's Li's-Model policy.
            Fidelity::TrioSim | Fidelity::Packet => {
                let source = calibrate(source_gpu);
                if source_gpu == platform.gpu() {
                    ComputeModel::lis(source)
                } else {
                    ComputeModel::lis_cross(source, calibrate(platform.gpu()))
                }
            }
            Fidelity::Reference => {
                let oracle = OracleGpu::new(platform.gpu());
                match parallelism {
                    // Single-process DataParallel pays GIL-serialized
                    // kernel dispatch on real hardware; DDP does not.
                    Parallelism::DataParallel { overlap: false } if platform.gpu_count() > 1 => {
                        ComputeModel::reference_with_dispatch(
                            oracle,
                            25.0e-6 * platform.gpu_count() as f64,
                        )
                    }
                    // The torch pipelining runtime adds CPU scheduling
                    // work per operator; with small micro-batches this is
                    // what makes real 4-chunk runs *slower* than 2-chunk
                    // ones (the paper's orange-triangle cases).
                    Parallelism::Pipeline { .. } | Parallelism::Hybrid { .. } => {
                        ComputeModel::reference_with_dispatch(oracle, 40.0e-6)
                    }
                    // The tensor_parallel library wraps every sharded
                    // module in Python glue that re-dispatches per layer.
                    Parallelism::TensorParallel => {
                        ComputeModel::reference_with_dispatch(oracle, 30.0e-6)
                    }
                    _ => ComputeModel::reference(oracle),
                }
            }
        }
    }

    /// Times one operator on GPU `gpu_index`.
    ///
    /// `measured_s` and `from` describe the operator as it appears in the
    /// single-GPU trace; `to` is the (possibly rescaled or split)
    /// operator actually executing in the simulated configuration.
    pub fn op_time_s(
        &self,
        measured_s: f64,
        from: &Operator,
        to: &Operator,
        gpu_index: usize,
    ) -> f64 {
        match self {
            ComputeModel::Lis {
                source,
                target: None,
            } => {
                if shapes_match(from, to) {
                    measured_s
                } else {
                    source.rescale_measured(measured_s, from, to)
                }
            }
            ComputeModel::Lis {
                source,
                target: Some(target),
            } => source.rescale_cross_gpu(measured_s, from, target, to),
            ComputeModel::Reference {
                oracle,
                board_skew,
                context_jitter,
                dispatch_overhead_s,
            } => {
                let base = oracle.op_time_s(to);
                let skew = board_factor(gpu_index, *board_skew);
                base * (1.0 + skew + context_noise(gpu_index, to, *context_jitter))
                    + dispatch_overhead_s
            }
        }
    }
}

impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        match spec {
            "triosim" | "prediction" => Ok(Fidelity::TrioSim),
            "reference" | "truth" => Ok(Fidelity::Reference),
            "packet" => Ok(Fidelity::Packet),
            _ => Err(format!(
                "unknown fidelity `{spec}` (try triosim, reference, or packet)"
            )),
        }
    }
}

/// Whether the simulated operator is byte-for-byte the traced one (then
/// the trace-provided time applies directly).
fn shapes_match(from: &Operator, to: &Operator) -> bool {
    from.flops == to.flops
        && from.bytes_in == to.bytes_in
        && from.bytes_out == to.bytes_out
        && from.weight_bytes == to.weight_bytes
}

/// Systematic per-board speed factor in [-amp, +amp], constant across
/// all operators on one GPU.
fn board_factor(gpu_index: usize, amp: f64) -> f64 {
    if amp == 0.0 {
        return 0.0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    gpu_index.hash(&mut h);
    0xB0A2Du64.hash(&mut h);
    let unit = (h.finish() % 10_000) as f64 / 10_000.0;
    (unit * 2.0 - 1.0) * amp
}

/// Deterministic multi-GPU context noise in [-amp, +amp].
fn context_noise(gpu_index: usize, op: &Operator, amp: f64) -> f64 {
    if amp == 0.0 {
        return 0.0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    gpu_index.hash(&mut h);
    op.name.hash(&mut h);
    op.flops.to_bits().hash(&mut h);
    let unit = (h.finish() % 10_000) as f64 / 10_000.0;
    (unit * 2.0 - 1.0) * amp
}

#[cfg(test)]
mod tests {
    use super::*;
    use triosim_trace::GpuModel;

    #[test]
    fn unchanged_op_passes_measured_time_through() {
        let model = ComputeModel::lis(LisModel::calibrated(GpuModel::A100));
        let op = Operator::linear("fc", 128, 1024, 1024);
        assert_eq!(model.op_time_s(0.123, &op, &op.clone(), 0), 0.123);
    }

    #[test]
    fn rescaled_op_scales_roughly_with_batch() {
        let model = ComputeModel::lis(LisModel::calibrated(GpuModel::A100));
        let op = Operator::linear("fc", 4096, 4096, 4096);
        let half = op.with_batch_scaled(4096, 2048);
        let t = model.op_time_s(0.1, &op, &half, 0);
        assert!((0.4..0.6).contains(&(t / 0.1)), "ratio {}", t / 0.1);
    }

    #[test]
    fn cross_gpu_always_rescales() {
        let model = ComputeModel::lis_cross(
            LisModel::calibrated(GpuModel::A40),
            LisModel::calibrated(GpuModel::H100),
        );
        let op = Operator::linear("fc", 8192, 4096, 4096);
        let t = model.op_time_s(0.1, &op, &op.clone(), 0);
        assert!(t < 0.1, "H100 faster than A40 even with identical shapes");
    }

    #[test]
    fn reference_jitter_varies_by_gpu_but_is_deterministic() {
        let model = ComputeModel::reference(OracleGpu::new(GpuModel::A100));
        let op = Operator::linear("fc", 512, 512, 512);
        let t0 = model.op_time_s(0.0, &op, &op.clone(), 0);
        let t1 = model.op_time_s(0.0, &op, &op.clone(), 1);
        assert_ne!(t0, t1, "different GPUs see different context noise");
        assert_eq!(t0, model.op_time_s(0.0, &op, &op.clone(), 0));
        let ratio = t0 / t1;
        assert!((0.97..1.03).contains(&ratio), "noise bounded: {ratio}");
    }

    #[test]
    fn fidelity_default_is_triosim() {
        assert_eq!(Fidelity::default(), Fidelity::TrioSim);
    }
}
