//! Per-layer aggregation of a trace.
//!
//! The trace is a flat operator list; the extrapolator works at layer
//! granularity (pipeline stages are sets of layers, tensor parallelism
//! splits layers, DDP buckets gradients per layer). This module derives
//! the per-layer view *from the trace alone* — TrioSim's whole premise is
//! that the single-GPU trace is the only workload input.

use triosim_modelzoo::OpClass;
use triosim_trace::{Phase, Trace};

/// Aggregated facts about one model layer, derived from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSummary {
    /// Layer index in forward order.
    pub index: usize,
    /// Indices into `trace.entries()` of this layer's forward operators,
    /// in program order.
    pub fwd: Vec<usize>,
    /// Indices of backward operators, in program (reverse-layer) order.
    pub bwd: Vec<usize>,
    /// Indices of optimizer operators.
    pub opt: Vec<usize>,
    /// Parameter bytes (== gradient AllReduce volume for this layer).
    pub param_bytes: u64,
    /// Bytes of the activation this layer hands to its successor (the
    /// pipeline-parallel send volume).
    pub output_bytes: u64,
    /// Forward FLOPs (used to balance pipeline stages).
    pub fwd_flops: f64,
    /// Whether tensor parallelism can split this layer (it contains
    /// GEMM-like or embedding weights, the layers PyTorch's tensor
    /// parallelism shards).
    pub tp_splittable: bool,
}

/// Builds the per-layer view of a trace.
///
/// # Example
///
/// ```rust
/// use triosim::summarize_layers;
/// use triosim_modelzoo::ModelId;
/// use triosim_trace::{GpuModel, Tracer};
///
/// let model = ModelId::ResNet18.build(8);
/// let trace = Tracer::new(GpuModel::A100).trace(&model);
/// let layers = summarize_layers(&trace);
/// assert_eq!(layers.len(), model.layer_count());
/// let total: u64 = layers.iter().map(|l| l.param_bytes).sum();
/// assert_eq!(total, model.param_bytes());
/// ```
pub fn summarize_layers(trace: &Trace) -> Vec<LayerSummary> {
    let count = trace.layer_count();
    let mut layers: Vec<LayerSummary> = (0..count)
        .map(|index| LayerSummary {
            index,
            fwd: Vec::new(),
            bwd: Vec::new(),
            opt: Vec::new(),
            param_bytes: 0,
            output_bytes: 0,
            fwd_flops: 0.0,
            tp_splittable: false,
        })
        .collect();

    for (i, e) in trace.entries().iter().enumerate() {
        let l = &mut layers[e.layer];
        match e.phase {
            Phase::Forward => {
                l.fwd.push(i);
                l.param_bytes += e.op.weight_bytes;
                l.fwd_flops += e.op.flops;
                l.output_bytes = e.op.bytes_out;
                if e.op.weight_bytes > 0
                    && matches!(
                        e.op.class,
                        OpClass::Conv2d | OpClass::Linear | OpClass::Embedding
                    )
                {
                    l.tp_splittable = true;
                }
            }
            Phase::Backward => l.bwd.push(i),
            Phase::Optimizer => l.opt.push(i),
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use triosim_modelzoo::ModelId;
    use triosim_trace::{GpuModel, Tracer};

    fn layers_for(id: ModelId, batch: u64) -> Vec<LayerSummary> {
        let trace = Tracer::new(GpuModel::A100).trace(&id.build(batch));
        summarize_layers(&trace)
    }

    #[test]
    fn every_layer_has_forward_and_backward_ops() {
        for l in layers_for(ModelId::ResNet18, 4) {
            assert!(!l.fwd.is_empty(), "layer {} has no fwd", l.index);
            assert!(!l.bwd.is_empty(), "layer {} has no bwd", l.index);
        }
    }

    #[test]
    fn optimizer_only_on_parameterized_layers() {
        for l in layers_for(ModelId::Vgg11, 4) {
            assert_eq!(l.opt.is_empty(), l.param_bytes == 0, "layer {}", l.index);
        }
    }

    #[test]
    fn conv_and_fc_layers_are_splittable_pool_is_not() {
        let model = ModelId::Vgg11.build(4);
        let trace = Tracer::new(GpuModel::A100).trace(&model);
        let layers = summarize_layers(&trace);
        for (summary, layer) in layers.iter().zip(model.layers()) {
            assert_eq!(
                summary.tp_splittable,
                layer.tp_splittable(),
                "layer {} ({})",
                summary.index,
                layer.name
            );
        }
    }

    #[test]
    fn output_bytes_match_model_graph() {
        let model = ModelId::ResNet18.build(4);
        let trace = Tracer::new(GpuModel::A100).trace(&model);
        let layers = summarize_layers(&trace);
        for (summary, layer) in layers.iter().zip(model.layers()) {
            assert_eq!(summary.output_bytes, layer.output_bytes(), "{}", layer.name);
        }
    }

    #[test]
    fn fwd_flops_sum_to_model_total() {
        let model = ModelId::ResNet50.build(4);
        let trace = Tracer::new(GpuModel::A100).trace(&model);
        let layers = summarize_layers(&trace);
        let total: f64 = layers.iter().map(|l| l.fwd_flops).sum();
        assert!((total / model.total_flops() - 1.0).abs() < 1e-12);
    }
}
