//! The discrete-event executor: replays a task graph against a network
//! model, fast-forwarding virtual time from event to event.
//!
//! Resources follow the PyTorch execution model the paper assumes: each
//! GPU has one *serial* compute stream (operators on a GPU never overlap
//! each other), while transfers run on the network model and overlap
//! freely with computation — this is what lets DDP hide AllReduce behind
//! backward propagation.

use std::collections::{HashMap, VecDeque};

use triosim_des::{EventId, EventQueue, VirtualTime};
use triosim_network::{FlowId, NetCommand, NetworkModel};

use crate::report::{union_length, SimReport, TimelineRecord, TimelineTrack};
use crate::taskgraph::{TaskGraph, TaskId, TaskKind};

#[derive(Debug)]
enum Event {
    ComputeDone { gpu: usize, task: TaskId },
    FlowDelivered { flow: FlowId },
}

/// Executes `graph` against `network`, returning the run report.
///
/// Deterministic: identical inputs give identical reports.
///
/// # Panics
///
/// Panics if the graph deadlocks (a dependency cycle), which the
/// [`TaskGraph`] construction rules make impossible, or if a transfer's
/// endpoints are not connected in the network's topology.
pub fn execute(graph: &TaskGraph, network: &mut dyn NetworkModel) -> SimReport {
    execute_iterations(graph, network, 1)
}

/// Executes `graph` back-to-back `iterations` times on the same network
/// state, returning the aggregate report.
///
/// Network state persists across iterations — this is what lets the
/// photonic model amortize its circuit-establishment latency over a
/// training run instead of paying it every iteration.
///
/// # Panics
///
/// Same conditions as [`execute`], plus `iterations == 0`.
pub fn execute_iterations(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
) -> SimReport {
    assert!(iterations > 0, "need at least one iteration");
    Executor::new(graph, network).run(iterations)
}

struct GpuStream {
    ready: VecDeque<TaskId>,
    busy: bool,
    busy_time: f64,
}

struct Executor<'a> {
    graph: &'a TaskGraph,
    network: &'a mut dyn NetworkModel,
    queue: EventQueue<Event>,
    indegree: Vec<usize>,
    dependents: Vec<Vec<TaskId>>,
    gpus: Vec<GpuStream>,
    flow_task: HashMap<FlowId, TaskId>,
    flow_event: HashMap<FlowId, EventId>,
    flow_start: HashMap<FlowId, VirtualTime>,
    comm_intervals: Vec<(VirtualTime, VirtualTime)>,
    compute_start: Vec<Option<VirtualTime>>,
    timeline: Vec<TimelineRecord>,
    completed: usize,
    bytes_transferred: u64,
}

impl<'a> Executor<'a> {
    fn new(graph: &'a TaskGraph, network: &'a mut dyn NetworkModel) -> Self {
        let n = graph.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, task) in graph.tasks().iter().enumerate() {
            indegree[i] = task.deps.len();
            for d in &task.deps {
                dependents[d.0].push(TaskId(i));
            }
        }
        Executor {
            graph,
            network,
            queue: EventQueue::new(),
            indegree,
            dependents,
            gpus: (0..graph.gpus())
                .map(|_| GpuStream {
                    ready: VecDeque::new(),
                    busy: false,
                    busy_time: 0.0,
                })
                .collect(),
            flow_task: HashMap::new(),
            flow_event: HashMap::new(),
            flow_start: HashMap::new(),
            comm_intervals: Vec::new(),
            compute_start: vec![None; n],
            timeline: Vec::new(),
            completed: 0,
            bytes_transferred: 0,
        }
    }

    fn run(mut self, iterations: usize) -> SimReport {
        let base_indegree = self.indegree.clone();
        for iter in 0..iterations {
            if iter > 0 {
                self.indegree.clone_from(&base_indegree);
                self.completed = 0;
                self.compute_start.fill(None);
            }
            self.run_once();
            assert_eq!(
                self.completed,
                self.graph.len(),
                "execution deadlocked: {} of {} tasks completed (iteration {})",
                self.completed,
                self.graph.len(),
                iter
            );
        }

        let total = self.queue.now() - VirtualTime::ZERO;
        let per_gpu_compute = self
            .gpus
            .iter()
            .map(|g| triosim_des::TimeSpan::from_seconds(g.busy_time))
            .collect();
        let comm_busy = union_length(self.comm_intervals);
        let mut timeline = self.timeline;
        timeline.sort_by_key(|r| (r.start, r.end));
        SimReport::new(
            total,
            per_gpu_compute,
            comm_busy,
            self.bytes_transferred,
            self.graph.len() * iterations,
            timeline,
        )
    }

    /// Seeds the graph's roots at the current virtual time and drains the
    /// event queue.
    fn run_once(&mut self) {
        // Seed: every task with no dependencies starts immediately.
        let roots: Vec<TaskId> = (0..self.graph.len())
            .filter(|&i| self.indegree[i] == 0)
            .map(TaskId)
            .collect();
        for t in roots {
            self.activate(t);
        }

        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::ComputeDone { gpu, task } => {
                    self.gpus[gpu].busy = false;
                    let start = self.compute_start[task.0].expect("compute was started");
                    self.gpus[gpu].busy_time += (now - start).as_seconds();
                    self.timeline.push(TimelineRecord {
                        label: self.graph.tasks()[task.0].label.clone(),
                        track: TimelineTrack::Gpu(gpu),
                        start,
                        end: now,
                        layer: self.graph.tasks()[task.0].layer,
                    });
                    self.complete(task);
                    self.try_start_gpu(gpu);
                }
                Event::FlowDelivered { flow } => {
                    self.flow_event.remove(&flow);
                    let task = self
                        .flow_task
                        .remove(&flow)
                        .expect("delivered flow belongs to a task");
                    let start = self.flow_start.remove(&flow).expect("flow start recorded");
                    self.comm_intervals.push((start, now));
                    self.timeline.push(TimelineRecord {
                        label: self.graph.tasks()[task.0].label.clone(),
                        track: TimelineTrack::Network,
                        start,
                        end: now,
                        layer: self.graph.tasks()[task.0].layer,
                    });
                    if let TaskKind::Transfer { bytes, .. } = self.graph.tasks()[task.0].kind {
                        self.bytes_transferred += bytes;
                    }
                    let cmds = self.network.deliver(flow, now);
                    self.apply(cmds);
                    self.complete(task);
                }
            }
        }
    }

    /// Marks `task` complete and activates newly unblocked tasks.
    fn complete(&mut self, task: TaskId) {
        // Worklist to avoid recursion through long barrier chains.
        let mut work = vec![task];
        while let Some(t) = work.pop() {
            self.completed += 1;
            for i in 0..self.dependents[t.0].len() {
                let dep = self.dependents[t.0][i];
                self.indegree[dep.0] -= 1;
                if self.indegree[dep.0] == 0 {
                    if let Some(done_now) = self.activate_inline(dep) {
                        work.push(done_now);
                    }
                }
            }
        }
    }

    fn activate(&mut self, task: TaskId) {
        if let Some(done_now) = self.activate_inline(task) {
            self.complete(done_now);
        }
    }

    /// Starts a task. Barriers complete instantly: the caller receives
    /// them back to cascade completion without recursion.
    fn activate_inline(&mut self, task: TaskId) -> Option<TaskId> {
        match &self.graph.tasks()[task.0].kind {
            TaskKind::Barrier => Some(task),
            TaskKind::Compute { gpu, .. } => {
                self.gpus[*gpu].ready.push_back(task);
                self.try_start_gpu(*gpu);
                None
            }
            TaskKind::Transfer { src, dst, bytes } => {
                let now = self.queue.now();
                let (flow, cmds) = self.network.send(now, *src, *dst, *bytes);
                self.flow_task.insert(flow, task);
                self.flow_start.insert(flow, now);
                self.apply(cmds);
                None
            }
        }
    }

    fn try_start_gpu(&mut self, gpu: usize) {
        if self.gpus[gpu].busy {
            return;
        }
        let Some(task) = self.gpus[gpu].ready.pop_front() else {
            return;
        };
        let TaskKind::Compute { duration, .. } = self.graph.tasks()[task.0].kind else {
            unreachable!("GPU queues hold compute tasks only");
        };
        self.gpus[gpu].busy = true;
        let now = self.queue.now();
        self.compute_start[task.0] = Some(now);
        self.queue
            .schedule(now + duration, Event::ComputeDone { gpu, task });
    }

    fn apply(&mut self, cmds: Vec<NetCommand>) {
        for cmd in cmds {
            match cmd {
                NetCommand::Schedule { flow, at } => {
                    if let Some(old) = self.flow_event.remove(&flow) {
                        self.queue.cancel(old);
                    }
                    let id = self.queue.schedule(at, Event::FlowDelivered { flow });
                    self.flow_event.insert(flow, id);
                }
                NetCommand::Cancel { flow } => {
                    if let Some(old) = self.flow_event.remove(&flow) {
                        self.queue.cancel(old);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::TaskGraph;
    use triosim_des::TimeSpan;
    use triosim_network::{FlowNetwork, NodeId, Topology};

    fn net2() -> FlowNetwork {
        let mut t = Topology::new(2);
        t.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        FlowNetwork::new(t)
    }

    #[test]
    fn serial_compute_chain_sums_durations() {
        let mut g = TaskGraph::new(1);
        let a = g.compute("a", 0, TimeSpan::from_millis(2.0), vec![]);
        let b = g.compute("b", 0, TimeSpan::from_millis(3.0), vec![a]);
        g.compute("c", 0, TimeSpan::from_millis(5.0), vec![b]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.010).abs() < 1e-12);
        assert!((r.compute_time_s() - 0.010).abs() < 1e-12);
        assert_eq!(r.comm_time_s(), 0.0);
    }

    #[test]
    fn independent_tasks_on_one_gpu_serialize() {
        let mut g = TaskGraph::new(1);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        g.compute("b", 0, TimeSpan::from_millis(1.0), vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-12, "one stream");
    }

    #[test]
    fn independent_tasks_on_two_gpus_parallelize() {
        let mut g = TaskGraph::new(2);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        g.compute("b", 1, TimeSpan::from_millis(1.0), vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn transfer_overlaps_compute() {
        let mut g = TaskGraph::new(1);
        // 10 ms compute and a 10 MB transfer (10 ms at 1 GB/s) overlap.
        g.compute("work", 0, TimeSpan::from_millis(10.0), vec![]);
        g.transfer("move", NodeId(0), NodeId(1), 10_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.010).abs() < 1e-9, "{}", r.total_time_s());
        assert!((r.comm_time_s() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn dependencies_order_execution() {
        let mut g = TaskGraph::new(1);
        let t = g.transfer("move", NodeId(0), NodeId(1), 5_000_000, vec![]);
        g.compute("after", 0, TimeSpan::from_millis(1.0), vec![t]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.006).abs() < 1e-9);
    }

    #[test]
    fn barriers_are_free() {
        let mut g = TaskGraph::new(1);
        let a = g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        let b = g.barrier("sync", vec![a]);
        let b2 = g.barrier("sync2", vec![b]);
        g.compute("c", 0, TimeSpan::from_millis(1.0), vec![b2]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-12);
        assert_eq!(r.tasks_executed(), 4);
    }

    #[test]
    fn empty_graph_finishes_at_zero() {
        let g = TaskGraph::new(1);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert_eq!(r.total_time_s(), 0.0);
    }

    #[test]
    fn timeline_records_tasks() {
        let mut g = TaskGraph::new(1);
        g.compute("op1", 0, TimeSpan::from_millis(1.0), vec![]);
        g.transfer("mv", NodeId(0), NodeId(1), 1_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert_eq!(r.timeline().len(), 2);
        let tracks: Vec<_> = r.timeline().iter().map(|t| t.track).collect();
        assert!(tracks.contains(&TimelineTrack::Gpu(0)));
        assert!(tracks.contains(&TimelineTrack::Network));
    }

    #[test]
    fn iterations_chain_in_time() {
        let mut g = TaskGraph::new(1);
        g.compute("a", 0, TimeSpan::from_millis(2.0), vec![]);
        let mut net = net2();
        let r = execute_iterations(&g, &mut net, 5);
        assert!((r.total_time_s() - 0.010).abs() < 1e-12, "5 x 2 ms");
        assert_eq!(r.tasks_executed(), 5);
        assert_eq!(r.timeline().len(), 5);
    }

    #[test]
    fn network_state_persists_across_iterations() {
        use triosim_network::{PhotonicConfig, PhotonicNetwork};
        let mut g = TaskGraph::new(1);
        g.transfer("mv", NodeId(0), NodeId(1), 1 << 20, vec![]);
        let mut net = PhotonicNetwork::new(2, PhotonicConfig::passage());
        let r1 = execute(&g, &mut PhotonicNetwork::new(2, PhotonicConfig::passage()));
        let r10 = execute_iterations(&g, &mut net, 10);
        // One iteration pays the 20 ms setup; ten iterations pay it once.
        assert!(r1.total_time_s() > 20e-3);
        assert!(
            r10.total_time_s() < 10.0 * r1.total_time_s() / 2.0,
            "amortized: {} vs 10 x {}",
            r10.total_time_s(),
            r1.total_time_s()
        );
        assert_eq!(net.circuits_established(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let g = TaskGraph::new(1);
        execute_iterations(&g, &mut net2(), 0);
    }

    #[test]
    fn concurrent_transfers_share_and_finish_together() {
        let mut g = TaskGraph::new(1);
        g.transfer("m1", NodeId(0), NodeId(1), 1_000_000, vec![]);
        g.transfer("m2", NodeId(0), NodeId(1), 1_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-9, "fair sharing");
        assert_eq!(r.bytes_transferred(), 2_000_000);
    }
}
