//! The discrete-event executor: replays a task graph against a network
//! model, fast-forwarding virtual time from event to event.
//!
//! Resources follow the PyTorch execution model the paper assumes: each
//! GPU has one *serial* compute stream (operators on a GPU never overlap
//! each other), while transfers run on the network model and overlap
//! freely with computation — this is what lets DDP hide AllReduce behind
//! backward propagation.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use triosim_des::{EventId, EventQueue, RunBudget, Ticker, TimeSpan, VirtualTime};
use triosim_faults::{FaultKind, FaultPlan, FaultSession};
use triosim_network::{FlowId, LinkFault, NetCommand, NetworkModel, NodeId};
use triosim_obs::{
    AttrValue, AttributionAccumulator, BottleneckReport, DepTable, HotLink, IterationObservation,
    ProgressMonitor, Recorder, SelfProfiler, TaskClass,
};

use crate::checkpoint::{
    self, CheckpointConfig, CheckpointError, ExecutorState, FaultState, OutageState, SimSnapshot,
};
use crate::error::SimError;
use crate::report::{
    merge_intervals, timeline_fnv, union_length, FaultStats, SimReport, TimelineRecord,
    TimelineTrack, FNV_OFFSET,
};
use crate::taskgraph::{TaskGraph, TaskId, TaskKind};

#[derive(Debug)]
enum Event {
    ComputeDone {
        gpu: usize,
        task: TaskId,
    },
    FlowDelivered {
        flow: FlowId,
    },
    /// Observability sampling tick — never affects simulation results.
    MonitorTick,
    /// Injection point of one timed fault from the session timeline.
    Fault {
        idx: usize,
    },
}

/// Observability options for one execution run.
///
/// The default is fully off: no recorder, no progress reporting, and the
/// executor takes the exact same code path as [`execute_iterations`].
/// With a recorder attached, the executor emits per-operator and
/// per-collective spans, per-event-kind dispatch counters, and sampled
/// gauges (queue depth, in-flight flows, per-link utilization) driven by
/// a virtual-time [`Ticker`] at `sample_period`. Monitor ticks are
/// carefully kept out of the simulation's critical path: they never
/// extend the reported total time and are cancelled the moment no real
/// event remains.
#[derive(Debug)]
pub struct Observability {
    /// Receives spans and metrics. `None` (or a disabled recorder)
    /// skips all instrumentation.
    pub recorder: Option<Box<dyn Recorder>>,
    /// Live wall-clock progress reporting (stderr by default).
    pub progress: Option<ProgressMonitor>,
    /// Virtual-time period between monitor samples.
    pub sample_period: TimeSpan,
}

impl Default for Observability {
    fn default() -> Self {
        Observability {
            recorder: None,
            progress: None,
            sample_period: TimeSpan::from_millis(1.0),
        }
    }
}

impl Observability {
    /// No observability: identical behavior to the plain executor.
    pub fn off() -> Self {
        Self::default()
    }

    /// Attaches a recorder.
    pub fn with_recorder(mut self, recorder: Box<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a progress monitor.
    pub fn with_progress(mut self, progress: ProgressMonitor) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Overrides the virtual-time sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_sample_period(mut self, period: TimeSpan) -> Self {
        assert!(period > TimeSpan::ZERO, "sample period must be positive");
        self.sample_period = period;
        self
    }

    /// True when any observability output is requested.
    pub fn is_active(&self) -> bool {
        self.progress.is_some() || self.recorder.as_ref().is_some_and(|r| r.enabled())
    }
}

/// Executes `graph` against `network`, returning the run report.
///
/// Deterministic: identical inputs give identical reports.
///
/// # Panics
///
/// Panics if the graph deadlocks (a dependency cycle), which the
/// [`TaskGraph`] construction rules make impossible, or if a transfer's
/// endpoints are not connected in the network's topology.
pub fn execute(graph: &TaskGraph, network: &mut dyn NetworkModel) -> SimReport {
    execute_iterations(graph, network, 1)
}

/// Executes `graph` back-to-back `iterations` times on the same network
/// state, returning the aggregate report.
///
/// Network state persists across iterations — this is what lets the
/// photonic model amortize its circuit-establishment latency over a
/// training run instead of paying it every iteration.
///
/// # Panics
///
/// Same conditions as [`execute`], plus `iterations == 0`.
pub fn execute_iterations(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
) -> SimReport {
    assert!(iterations > 0, "need at least one iteration");
    Executor::new(graph, network)
        .run(iterations)
        .unwrap_or_else(|e| panic!("fault-free execution cannot fail: {e}"))
}

/// [`execute_iterations`] with observability: spans, metrics, and live
/// progress flow into `obs` while the simulation runs.
///
/// Simulation results are identical to the unobserved run — monitor
/// ticks advance no state and never extend the reported total — and all
/// recorder output is a deterministic function of the graph, the network
/// model, and `obs.sample_period`.
///
/// # Panics
///
/// Same conditions as [`execute_iterations`].
pub fn execute_observed(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    obs: Observability,
) -> SimReport {
    assert!(iterations > 0, "need at least one iteration");
    Executor::new(graph, network)
        .with_observability(obs)
        .run(iterations)
        .unwrap_or_else(|e| panic!("fault-free execution cannot fail: {e}"))
}

/// [`execute_observed`] with fault injection: the timed faults, compute
/// slowdowns, and jitter described by `plan` are applied while the graph
/// executes.
///
/// An empty plan takes the exact fault-free code path and produces a
/// bit-identical report to [`execute_observed`]. A non-empty plan is
/// deterministic in `plan` (including its seed): two runs with the same
/// plan produce identical reports.
///
/// The plan is consumed as-is; use
/// [`FaultPlan::validate`] (or [`SimBuilder::try_run`](crate::SimBuilder::try_run),
/// which validates for you) to reject plans referencing GPUs or nodes the
/// platform does not have.
///
/// # Errors
///
/// Returns [`SimError::Partitioned`] when a link failure disconnects a
/// transfer's endpoints, and [`SimError::GpuLost`] when a GPU drop-out
/// fires (its pinned tasks can never run).
///
/// # Panics
///
/// Same conditions as [`execute_iterations`].
pub fn execute_faulted(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    obs: Observability,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    execute_budgeted(
        graph,
        network,
        iterations,
        obs,
        plan,
        RunBudget::unlimited(),
    )
}

/// [`execute_faulted`] with a runaway guard: the run terminates with
/// [`SimError::BudgetExceeded`] if it blows any axis of `budget`.
///
/// An unlimited budget takes the exact [`execute_faulted`] code path (and
/// with an empty plan, the plain fault-free path) — reports stay
/// bit-identical. The budget spans the whole multi-iteration run; its
/// event axis counts only real compute/flow events, never monitor ticks
/// or fault injections, so deterministic-axis trips are independent of
/// observability settings.
///
/// # Errors
///
/// [`SimError::BudgetExceeded`] on a tripped budget, plus everything
/// [`execute_faulted`] reports.
///
/// # Panics
///
/// Same conditions as [`execute_iterations`].
pub fn execute_budgeted(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    obs: Observability,
    plan: &FaultPlan,
    budget: RunBudget,
) -> Result<SimReport, SimError> {
    assert!(iterations > 0, "need at least one iteration");
    let mut ex = Executor::new(graph, network)
        .with_observability(obs)
        .with_budget(budget);
    let session = FaultSession::new(plan, graph.gpus());
    if !session.is_empty() {
        ex = ex.with_faults(session);
    }
    ex.run(iterations)
}

/// [`execute_budgeted`] with host self-profiling: when `prof` is
/// enabled, wall-clock time spent in the engine loop (and, within it,
/// the network model's send/deliver/reallocation work) accumulates
/// under an `engine_loop` span.
///
/// Profiling never touches virtual-time state: the report — including
/// its canonical bytes — is byte-identical with profiling on or off.
///
/// # Errors
///
/// Same as [`execute_budgeted`].
///
/// # Panics
///
/// Same conditions as [`execute_iterations`].
pub fn execute_budgeted_profiled<'a>(
    graph: &'a TaskGraph,
    network: &'a mut dyn NetworkModel,
    iterations: usize,
    obs: Observability,
    plan: &FaultPlan,
    budget: RunBudget,
    prof: Option<&'a mut SelfProfiler>,
) -> Result<SimReport, SimError> {
    assert!(iterations > 0, "need at least one iteration");
    let mut ex = Executor::new(graph, network)
        .with_observability(obs)
        .with_budget(budget);
    let session = FaultSession::new(plan, graph.gpus());
    if !session.is_empty() {
        ex = ex.with_faults(session);
    }
    if let Some(p) = prof {
        ex = ex.with_selfprof(p);
    }
    ex.run(iterations)
}

/// [`execute_budgeted`] with periodic boundary snapshots: every
/// `ck.every`-th iteration boundary writes a crash-safe snapshot to
/// `ck.path`. Checkpointing reads only quiescent state, so the report —
/// including its canonical bytes — is byte-identical to the same run
/// without checkpointing. Observability is not supported on this path
/// (the builder gates it off with a warning).
///
/// # Errors
///
/// [`SimError::Checkpoint`] when a snapshot cannot be written, plus
/// everything [`execute_budgeted`] reports.
///
/// # Panics
///
/// Same conditions as [`execute_iterations`].
pub(crate) fn execute_with_checkpoints(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    plan: &FaultPlan,
    budget: RunBudget,
    ck: CheckpointConfig,
) -> Result<SimReport, SimError> {
    assert!(iterations > 0, "need at least one iteration");
    let mut ex = Executor::new(graph, network)
        .with_budget(budget)
        .with_checkpoint(ck);
    let session = FaultSession::new(plan, graph.gpus());
    if !session.is_empty() {
        ex = ex.with_faults(session);
    }
    ex.run(iterations)
}

/// Resumes a run from a boundary snapshot: executes iterations
/// `completed..iterations` on top of the restored state, producing a
/// report byte-identical to an uninterrupted `iterations`-iteration run.
/// The caller has already validated the spec hash and applied the
/// network half of the snapshot via `NetworkModel::restore_state`. When
/// `ck` is set, checkpointing continues on the resumed run.
///
/// # Errors
///
/// [`SimError::Checkpoint`] on structurally invalid snapshot state, plus
/// everything [`execute_budgeted`] reports.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_restored(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    plan: &FaultPlan,
    budget: RunBudget,
    completed: usize,
    state: &ExecutorState,
    ck: Option<CheckpointConfig>,
) -> Result<SimReport, SimError> {
    assert!(
        completed <= iterations,
        "restore cannot exceed the requested iteration count"
    );
    let mut ex = Executor::new(graph, network).with_budget(budget);
    let session = FaultSession::new(plan, graph.gpus());
    if !session.is_empty() {
        ex = ex.with_faults(session);
    }
    if let Some(ck) = ck {
        ex = ex.with_checkpoint(ck);
    }
    let ex = ex.with_restored_state(completed, state)?;
    ex.run(iterations - completed)
}

/// Builds a [`BottleneckReport`] from an attribution accumulator and the
/// network's link observations — shared between the serial epilogue and
/// the sharded merge (which reconstructs the identical report from
/// absorbed per-block state).
pub(crate) fn bottleneck_report(
    network: &dyn NetworkModel,
    attr: &AttributionAccumulator,
    total: TimeSpan,
    lost_compute: Option<&[f64]>,
) -> BottleneckReport {
    let total_s = total.as_seconds();
    let links = network
        .observe_links()
        .into_iter()
        .map(|l| HotLink {
            label: l.label,
            busy_s: l.busy_s,
            bytes: l.bytes,
            utilization: if total_s > 0.0 {
                (l.busy_s / total_s).clamp(0.0, 1.0)
            } else {
                0.0
            },
        })
        .collect();
    attr.finish(links, lost_compute)
}

/// Everything one sharded iteration block produces, in exactly the shape
/// the merge needs: integer-tick running totals (summable without
/// drift), raw interval lists (concatenated then canonically sorted),
/// and per-event virtual times for deterministic budget replay.
pub(crate) struct BlockOutcome {
    /// End time of each completed iteration, in order.
    pub iter_ends: Vec<VirtualTime>,
    /// Per-GPU cumulative busy time (integer ticks).
    pub gpu_busy: Vec<TimeSpan>,
    /// Raw `(start, end)` transfer intervals.
    pub comm_intervals: Vec<(VirtualTime, VirtualTime)>,
    /// Timeline records of the block's iterations.
    pub timeline: Vec<TimelineRecord>,
    /// Payload bytes transferred.
    pub bytes_transferred: u64,
    /// Event-queue counters.
    pub queue_stats: triosim_des::QueueStats,
    /// Attribution state (absorbed into the probe's accumulator).
    pub attr: AttributionAccumulator,
    /// Virtual time of every real event, when tracking was requested.
    pub event_times: Vec<VirtualTime>,
    /// Real events delivered (equals `event_times.len()` when tracked).
    pub budget_events: u64,
    /// Set when the block stopped early (its live wall-clock guard).
    pub error: Option<SimError>,
}

/// Runs iterations `iter_offset..iter_offset + iterations` of `graph` as
/// one sharded block: the clock starts at `origin`, no observability or
/// faults are attached (the sharded path is gated on both being absent),
/// and `budget` is the block's *live* guard (callers pass
/// [`RunBudget::wall_only`]; deterministic axes are replayed at merge
/// time from `event_times`, which is recorded when `track_events` is
/// set).
pub(crate) fn execute_block(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    origin: VirtualTime,
    iter_offset: usize,
    iterations: usize,
    budget: RunBudget,
    track_events: bool,
) -> BlockOutcome {
    assert!(iterations > 0, "need at least one iteration");
    let mut ex = Executor::new(graph, network)
        .with_origin(origin)
        .with_iter_offset(iter_offset)
        .with_budget(budget);
    if track_events {
        ex = ex.with_event_tracking();
    }
    let error = ex.run_iterations(iterations).err();
    BlockOutcome {
        iter_ends: ex.iter_ends,
        gpu_busy: ex.gpus.iter().map(|g| g.busy_time).collect(),
        comm_intervals: ex.comm_intervals,
        timeline: ex.timeline,
        bytes_transferred: ex.bytes_transferred,
        queue_stats: *ex.queue.stats(),
        attr: ex.attr,
        event_times: ex.event_times,
        budget_events: ex.budget_events,
        error,
    }
}

/// Maps a topology node to a GPU index under the repo-wide platform
/// convention (`Platform::gpu_node(i) == NodeId(1 + i)`, `NodeId(0)` is
/// the host, nodes past `1 + gpus` are NICs/spines).
fn node_gpu(node: NodeId, gpus: usize) -> Option<usize> {
    (node.0 >= 1 && node.0 <= gpus).then(|| node.0 - 1)
}

struct GpuStream {
    ready: VecDeque<TaskId>,
    busy: bool,
    /// Cumulative busy time in integer ticks: exact, so per-block totals
    /// from sharded runs sum to byte-identical per-GPU compute figures.
    busy_time: TimeSpan,
}

/// Live state of one fault-injected run. Present only when the session
/// actually injects something: a fault-free run carries `None` and takes
/// byte-identical code paths to the plain executor.
struct FaultRuntime {
    session: FaultSession,
    /// Next timeline entry to arm.
    cursor: usize,
    /// The armed injection event. Like monitor ticks, fault events do not
    /// count as real work: they are cancelled the moment no real event
    /// remains, so a fault scheduled past the end of the workload can
    /// never extend the reported total time.
    fault_event: Option<EventId>,
    /// Faults that actually fired.
    injected: u64,
    /// Fired faults by kind: [degrade, fail, repair, gpu_drop].
    injected_by_kind: [u64; 4],
    /// Per-GPU seconds of compute added by slowdown/jitter dilation.
    lost_compute: Vec<f64>,
    /// Fail time of currently-down duplex links, for outage spans.
    outage_since: HashMap<(usize, usize), VirtualTime>,
}

impl FaultRuntime {
    fn new(session: FaultSession, gpus: usize) -> Self {
        FaultRuntime {
            session,
            cursor: 0,
            fault_event: None,
            injected: 0,
            injected_by_kind: [0; 4],
            lost_compute: vec![0.0; gpus],
            outage_since: HashMap::new(),
        }
    }
}

struct Executor<'a> {
    graph: &'a TaskGraph,
    network: &'a mut dyn NetworkModel,
    queue: EventQueue<Event>,
    indegree: Vec<usize>,
    dependents: Vec<Vec<TaskId>>,
    gpus: Vec<GpuStream>,
    flow_task: HashMap<FlowId, TaskId>,
    flow_event: HashMap<FlowId, EventId>,
    flow_start: HashMap<FlowId, VirtualTime>,
    comm_intervals: Vec<(VirtualTime, VirtualTime)>,
    compute_start: Vec<Option<VirtualTime>>,
    timeline: Vec<TimelineRecord>,
    /// True for checkpoint-aware runs (snapshotting enabled, or resumed
    /// from a snapshot): the timeline digest below is maintained
    /// incrementally and handed to the report, so the hash work is done
    /// exactly once no matter how many snapshots are written.
    tl_active: bool,
    /// Running timeline digest: `(count, FNV state)` over all records
    /// digested so far (including any pre-restore prefix, whose records
    /// are *not* in `timeline`), plus the index of the first
    /// not-yet-digested record in `timeline`. Advanced at each snapshot
    /// and finalized over the tail when the report is built.
    tl_digest: (u64, u64),
    tl_mark: usize,
    completed: usize,
    bytes_transferred: u64,
    // ------- observability (all inert unless `ticking`/`observing`) -------
    obs: Observability,
    /// True when a live, enabled recorder is attached.
    observing: bool,
    /// True when monitor ticks should be scheduled at all.
    ticking: bool,
    ticker: Option<Ticker>,
    tick_event: Option<EventId>,
    /// Pending non-tick events; ticks stop when this reaches zero.
    pending_real: usize,
    /// Per-kind dispatch counts: [compute, flow, tick, fault].
    dispatches: [u64; 4],
    // ------- fault injection (both `None` on fault-free runs) -------
    faults: Option<FaultRuntime>,
    /// Set when the run must stop early with a structured error — an
    /// injected fault made the remaining work impossible, or the run
    /// budget tripped. Unwinds the run instead of a hang or panic.
    stop_error: Option<SimError>,
    // ------- runaway guard (`None` on unbudgeted runs) -------
    /// Per-run budget; `None` keeps the exact pre-budget code path.
    budget: Option<RunBudget>,
    /// Real (compute/flow) events delivered across all iterations;
    /// the budget's event axis counts these, never ticks or faults, so
    /// tripping is independent of observability settings.
    budget_events: u64,
    /// Iteration currently executing (jitter coordinate).
    current_iter: usize,
    // ------- sharded-execution support (inert on ordinary runs) -------
    /// Global index of this run's first iteration; a sharded block of
    /// iterations `k..k+m` runs with `iter_offset = k` so per-iteration
    /// coordinates (jitter, logs) match the serial run's.
    iter_offset: usize,
    /// Virtual time at which each completed iteration ended.
    iter_ends: Vec<VirtualTime>,
    /// When set, the virtual time of every real (compute/flow) event is
    /// recorded so a sharded merge can *replay* deterministic budget
    /// enforcement in canonical order.
    track_events: bool,
    event_times: Vec<VirtualTime>,
    prev_link_busy: Vec<f64>,
    prev_sample_at: VirtualTime,
    collective_of_first: HashMap<TaskId, usize>,
    collective_of_last: HashMap<TaskId, usize>,
    collective_begin: Vec<Option<VirtualTime>>,
    // ------- bottleneck attribution (always on: pure virtual-time state) -------
    attr: AttributionAccumulator,
    /// Per-task start/finish times of the current iteration (all kinds,
    /// unlike `compute_start`).
    attr_start: Vec<Option<VirtualTime>>,
    attr_end: Vec<Option<VirtualTime>>,
    /// The compute task that freed this task's GPU stream, per task.
    attr_gpu_pred: Vec<Option<u32>>,
    /// Most recently finished compute task per GPU, this iteration.
    last_done: Vec<Option<u32>>,
    /// Virtual time the current iteration's roots were seeded.
    iter_begin: VirtualTime,
    // ------- checkpointing (`None` on ordinary runs) -------
    /// When set, a snapshot is written at every `every`-th iteration
    /// boundary — the quiescent instants where the queue is drained.
    ckpt: Option<CheckpointConfig>,
    // ------- host self-profiling (`None` keeps the unprofiled hot loop) -------
    selfprof: Option<&'a mut SelfProfiler>,
    /// Cached `selfprof.is_some_and(enabled)`, tested in the hot loop.
    profiling: bool,
    /// Wall-clock seconds spent inside the network model.
    net_wall_s: f64,
    net_wall_calls: u64,
}

impl<'a> Executor<'a> {
    fn new(graph: &'a TaskGraph, network: &'a mut dyn NetworkModel) -> Self {
        let n = graph.len();
        let gpus = graph.gpus();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, task) in graph.tasks().iter().enumerate() {
            indegree[i] = task.deps.len();
            for d in &task.deps {
                dependents[d.0].push(TaskId(i));
            }
        }
        let labels = graph.tasks().iter().map(|t| t.label.clone()).collect();
        let classes = graph
            .tasks()
            .iter()
            .map(|t| match t.kind {
                TaskKind::Compute { gpu, .. } => TaskClass::Compute { gpu },
                TaskKind::Transfer { src, dst, .. } => TaskClass::Comm {
                    src_gpu: node_gpu(src, gpus),
                    dst_gpu: node_gpu(dst, gpus),
                },
                TaskKind::Barrier => TaskClass::Sync,
            })
            .collect();
        let deps = DepTable::new(
            graph
                .tasks()
                .iter()
                .map(|t| t.deps.iter().map(|d| d.0 as u32)),
        );
        Executor {
            graph,
            network,
            queue: EventQueue::new(),
            indegree,
            dependents,
            gpus: (0..graph.gpus())
                .map(|_| GpuStream {
                    ready: VecDeque::new(),
                    busy: false,
                    busy_time: TimeSpan::ZERO,
                })
                .collect(),
            flow_task: HashMap::new(),
            flow_event: HashMap::new(),
            flow_start: HashMap::new(),
            comm_intervals: Vec::new(),
            compute_start: vec![None; n],
            timeline: Vec::new(),
            tl_active: false,
            tl_digest: (0, FNV_OFFSET),
            tl_mark: 0,
            completed: 0,
            bytes_transferred: 0,
            obs: Observability::off(),
            observing: false,
            ticking: false,
            ticker: None,
            tick_event: None,
            pending_real: 0,
            dispatches: [0; 4],
            faults: None,
            stop_error: None,
            budget: None,
            budget_events: 0,
            current_iter: 0,
            iter_offset: 0,
            iter_ends: Vec::new(),
            track_events: false,
            event_times: Vec::new(),
            prev_link_busy: Vec::new(),
            prev_sample_at: VirtualTime::ZERO,
            collective_of_first: HashMap::new(),
            collective_of_last: HashMap::new(),
            collective_begin: Vec::new(),
            attr: AttributionAccumulator::new(gpus, labels, classes, deps),
            attr_start: vec![None; n],
            attr_end: vec![None; n],
            attr_gpu_pred: vec![None; n],
            last_done: vec![None; gpus],
            iter_begin: VirtualTime::ZERO,
            ckpt: None,
            selfprof: None,
            profiling: false,
            net_wall_s: 0.0,
            net_wall_calls: 0,
        }
    }

    /// Attaches a host self-profiler. Wall clock only; virtual-time
    /// state and the report stay byte-identical.
    fn with_selfprof(mut self, prof: &'a mut SelfProfiler) -> Self {
        self.profiling = prof.is_enabled();
        self.selfprof = Some(prof);
        self
    }

    fn with_observability(mut self, obs: Observability) -> Self {
        self.observing = obs.recorder.as_ref().is_some_and(|r| r.enabled());
        self.ticking = self.observing || obs.progress.is_some();
        if self.ticking {
            self.ticker = Some(Ticker::new(obs.sample_period));
        }
        if self.observing {
            for (ci, meta) in self.graph.collectives().iter().enumerate() {
                self.collective_of_first.insert(meta.first, ci);
                self.collective_of_last.insert(meta.last, ci);
            }
            self.collective_begin = vec![None; self.graph.collectives().len()];
        }
        self.obs = obs;
        self
    }

    /// Attaches a non-empty fault session. The fault timeline spans the
    /// whole multi-iteration run (times are absolute, not per-iteration).
    fn with_faults(mut self, session: FaultSession) -> Self {
        let gpus = self.gpus.len();
        self.faults = Some(FaultRuntime::new(session, gpus));
        self
    }

    /// Attaches a run budget. Unlimited budgets are dropped so the hot
    /// loop keeps its single `Option` discriminant test per event. The
    /// budget spans the whole multi-iteration run.
    fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = (!budget.is_unlimited()).then_some(budget);
        self
    }

    /// Starts the clock (and the sampling origin) at `origin` instead of
    /// zero: a sharded iteration block replays iterations `k..` exactly
    /// where the serial run would have placed them.
    fn with_origin(mut self, origin: VirtualTime) -> Self {
        self.queue = EventQueue::starting_at(origin);
        self.prev_sample_at = origin;
        self.iter_begin = origin;
        self
    }

    /// Sets the global index of this run's first iteration (sharded
    /// blocks only; coordinates per-iteration state like jitter).
    fn with_iter_offset(mut self, offset: usize) -> Self {
        self.iter_offset = offset;
        self
    }

    /// Records the virtual time of every real event for post-hoc
    /// deterministic budget replay (sharded blocks only).
    fn with_event_tracking(mut self) -> Self {
        self.track_events = true;
        self
    }

    /// Enables periodic boundary snapshots to `ck.path`.
    fn with_checkpoint(mut self, ck: CheckpointConfig) -> Self {
        self.ckpt = Some(ck);
        self.tl_active = true;
        self
    }

    /// Rehydrates the executor from a quiescent-boundary snapshot taken
    /// after `completed` iterations: the clock, queue statistics, and
    /// every accumulated counter and record resume exactly where the
    /// interrupted run left them. Structural mismatches (wrong GPU
    /// count, malformed fault state) are typed errors — the spec hash
    /// upstream should make them impossible, but a hand-edited snapshot
    /// must fail loudly, not corrupt the run.
    fn with_restored_state(
        mut self,
        completed: usize,
        st: &ExecutorState,
    ) -> Result<Self, SimError> {
        let corrupt = |msg: String| SimError::Checkpoint(CheckpointError::Corrupt(msg));
        if st.dispatches.len() != 4 {
            return Err(corrupt(format!(
                "expected 4 dispatch counters, found {}",
                st.dispatches.len()
            )));
        }
        if st.gpu_busy.len() != self.gpus.len() {
            return Err(corrupt(format!(
                "snapshot has {} GPUs, scenario has {}",
                st.gpu_busy.len(),
                self.gpus.len()
            )));
        }
        if st.iter_ends.len() != completed {
            return Err(corrupt(format!(
                "snapshot claims {completed} completed iterations but records {} boundary times",
                st.iter_ends.len()
            )));
        }
        self.queue = EventQueue::starting_at_with_stats(st.now, st.queue);
        self.prev_sample_at = st.now;
        self.iter_begin = st.now;
        self.iter_offset = completed;
        for (gpu, busy) in self.gpus.iter_mut().zip(&st.gpu_busy) {
            gpu.busy_time = *busy;
        }
        self.dispatches = [
            st.dispatches[0],
            st.dispatches[1],
            st.dispatches[2],
            st.dispatches[3],
        ];
        // Snapshots store the merged union; further raw intervals simply
        // append and the report's final merge folds them in exactly.
        self.comm_intervals.clone_from(&st.comm_intervals);
        // Pre-restore timeline records exist only as a digest: seed the
        // running digest with it, so both further snapshots and the
        // report's `timeline_hash` continue the interrupted fold. The
        // record list itself restarts empty, so a restored run's
        // timeline *export* covers only post-restore iterations.
        self.tl_active = true;
        self.tl_digest = (st.timeline_count, st.timeline_fnv);
        self.tl_mark = 0;
        self.bytes_transferred = st.bytes_transferred;
        self.iter_ends.clone_from(&st.iter_ends);
        self.budget_events = st.budget.events;
        self.attr.restore(&st.attr).map_err(corrupt)?;
        match (&mut self.faults, &st.faults) {
            (Some(fr), Some(fs)) => {
                if fs.injected_by_kind.len() != 4 {
                    return Err(corrupt(format!(
                        "expected 4 per-kind fault counters, found {}",
                        fs.injected_by_kind.len()
                    )));
                }
                if fs.lost_compute_bits.len() != self.gpus.len() {
                    return Err(corrupt(format!(
                        "fault state has {} GPUs of lost compute, scenario has {}",
                        fs.lost_compute_bits.len(),
                        self.gpus.len()
                    )));
                }
                let cursor = fs.cursor as usize;
                if cursor > fr.session.timeline().len() {
                    return Err(corrupt(format!(
                        "fault cursor {cursor} is past the {}-entry fault timeline",
                        fr.session.timeline().len()
                    )));
                }
                fr.cursor = cursor;
                fr.injected = fs.injected;
                fr.injected_by_kind = [
                    fs.injected_by_kind[0],
                    fs.injected_by_kind[1],
                    fs.injected_by_kind[2],
                    fs.injected_by_kind[3],
                ];
                fr.lost_compute = fs
                    .lost_compute_bits
                    .iter()
                    .map(|&bits| f64::from_bits(bits))
                    .collect();
                fr.outage_since = fs
                    .outages
                    .iter()
                    .map(|o| ((o.src as usize, o.dst as usize), o.since))
                    .collect();
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(corrupt(
                    "snapshot lacks fault state but the scenario has a fault plan".to_string(),
                ))
            }
            (None, Some(_)) => {
                return Err(corrupt(
                    "snapshot carries fault state but the scenario has no fault plan".to_string(),
                ))
            }
        }
        Ok(self)
    }

    /// Serializes the current (quiescent) state and writes it
    /// crash-safely over the configured snapshot path.
    ///
    /// Called only at iteration boundaries, where `run_once` has drained
    /// the queue and cancelled any pending tick or fault-arming event —
    /// so the state reduces to accumulated counters and records, and the
    /// armed-fault invariant (`fault_event == None`) holds.
    fn write_checkpoint(&mut self) -> Result<(), SimError> {
        // Compact the raw interval list into its union in place: the
        // report's `union_length` is invariant under this (union is
        // associative and idempotent), and it keeps every snapshot —
        // and the run's own memory — proportional to the iteration
        // count instead of the event count.
        self.comm_intervals = merge_intervals(std::mem::take(&mut self.comm_intervals));
        self.fold_timeline_digest();
        let ck = self.ckpt.as_ref().expect("checkpointing is configured");
        let net = self.network.checkpoint_state().ok_or_else(|| {
            SimError::Checkpoint(CheckpointError::Unsupported(
                "network model has in-flight state or does not expose snapshots".to_string(),
            ))
        })?;
        let faults = self.faults.as_ref().map(|fr| {
            debug_assert!(
                fr.fault_event.is_none(),
                "boundary invariant: fault events are cancelled when the queue drains"
            );
            let mut outages: Vec<OutageState> = fr
                .outage_since
                .iter()
                .map(|(&(src, dst), &since)| OutageState {
                    src: src as u64,
                    dst: dst as u64,
                    since,
                })
                .collect();
            outages.sort_by_key(|o| (o.src, o.dst));
            FaultState {
                cursor: fr.cursor as u64,
                injected: fr.injected,
                injected_by_kind: fr.injected_by_kind.to_vec(),
                lost_compute_bits: fr.lost_compute.iter().map(|s| s.to_bits()).collect(),
                outages,
            }
        });
        let snap = SimSnapshot {
            checkpoint: checkpoint::SNAPSHOT_MAGIC.to_string(),
            version: checkpoint::SNAPSHOT_VERSION,
            spec_hash: format!("{:016x}", ck.spec_hash),
            completed: (self.current_iter + 1) as u64,
            state: ExecutorState {
                now: self.queue.now(),
                queue: *self.queue.stats(),
                dispatches: self.dispatches.to_vec(),
                gpu_busy: self.gpus.iter().map(|g| g.busy_time).collect(),
                comm_intervals: self.comm_intervals.clone(),
                timeline_count: self.tl_digest.0,
                timeline_fnv: self.tl_digest.1,
                bytes_transferred: self.bytes_transferred,
                iter_ends: self.iter_ends.clone(),
                budget: triosim_des::BudgetProgress {
                    events: self.budget_events,
                },
                attr: self.attr.snapshot(),
                net,
                faults,
            },
        };
        checkpoint::write_snapshot(&ck.path, &snap).map_err(SimError::Checkpoint)
    }

    /// Folds the timeline records accumulated since the last fold into
    /// the running digest. Each segment is sorted on its own: segments
    /// are whole runs of iterations, iterations occupy disjoint, ordered
    /// spans of virtual time, so segment-by-segment folding equals the
    /// whole-run sorted fold — and each record is hashed exactly once,
    /// whether the digest advances at snapshots, at the final report, or
    /// both.
    fn fold_timeline_digest(&mut self) {
        // Sorting the segment *in place* keeps the fold's memory access
        // contiguous, and leaves the whole timeline pre-sorted for the
        // report (segments occupy disjoint, ordered spans, so sorted
        // segments concatenate into the sorted whole; the stable sort
        // keeps push order among equal keys either way).
        let fresh = &mut self.timeline[self.tl_mark..];
        fresh.sort_by_key(|r| (r.start, r.end));
        self.tl_digest = (
            self.tl_digest.0 + fresh.len() as u64,
            timeline_fnv(self.tl_digest.1, fresh.iter()),
        );
        self.tl_mark = self.timeline.len();
    }

    /// Runs `iterations` back-to-back iterations, folding each into the
    /// attribution accumulator and recording its end time. On error the
    /// loop stops with the structured error; completed-iteration state
    /// (`iter_ends`, attribution) remains valid for inspection.
    fn run_iterations(&mut self, iterations: usize) -> Result<(), SimError> {
        let base_indegree = self.indegree.clone();
        for iter in 0..iterations {
            self.current_iter = self.iter_offset + iter;
            if iter > 0 {
                self.indegree.clone_from(&base_indegree);
                self.completed = 0;
                self.compute_start.fill(None);
                self.collective_begin.fill(None);
            }
            self.run_once();
            if let Some(e) = self.stop_error.take() {
                return Err(e);
            }
            assert_eq!(
                self.completed,
                self.graph.len(),
                "execution deadlocked: {} of {} tasks completed (iteration {})",
                self.completed,
                self.graph.len(),
                self.current_iter
            );
            self.iter_ends.push(self.queue.now());
            // Fold the completed iteration into the bottleneck
            // attribution (pure virtual-time state, always on).
            self.attr.record_iteration(&IterationObservation {
                begin: self.iter_begin,
                end: self.queue.now(),
                start: &self.attr_start,
                finish: &self.attr_end,
                gpu_pred: &self.attr_gpu_pred,
            });
            if self.observing {
                let now = self.queue.now();
                if let Some(r) = self.obs.recorder.as_mut() {
                    r.instant(
                        now,
                        "executor",
                        "iteration_end",
                        &[("iteration", AttrValue::U64(self.current_iter as u64))],
                    );
                }
            }
            // The boundary is quiescent here: the queue is drained and
            // tick/fault events were cancelled, so a snapshot reduces to
            // accumulated counters and records.
            let snapshot_due = self
                .ckpt
                .as_ref()
                .is_some_and(|ck| (self.current_iter + 1).is_multiple_of(ck.every));
            if snapshot_due {
                self.write_checkpoint()?;
            }
        }
        Ok(())
    }

    fn run(mut self, iterations: usize) -> Result<SimReport, SimError> {
        let engine_t = self.profiling.then(Instant::now);
        if let Err(e) = self.run_iterations(iterations) {
            // Close observability sinks so partial traces flush, then
            // surface the structured error instead of the deadlock
            // panic the unfinished graph would otherwise trigger.
            let total = self.queue.now() - VirtualTime::ZERO;
            let done = self.iter_ends.len() as u64 + 1;
            self.flush_selfprof(engine_t, done);
            self.finish_observability(total, None);
            return Err(e);
        }
        self.flush_selfprof(engine_t, iterations as u64);

        let total = self.queue.now() - VirtualTime::ZERO;
        let bottleneck = self.build_bottleneck(total);
        self.finish_observability(total, Some(&bottleneck));
        let per_gpu_compute = self.gpus.iter().map(|g| g.busy_time).collect();
        // Checkpoint-aware runs finalize the incremental digest over the
        // undigested tail and hand it to the report, so the report never
        // re-hashes records a snapshot already folded.
        let digest = if self.tl_active {
            self.fold_timeline_digest();
            Some(self.tl_digest)
        } else {
            None
        };
        let comm_busy = union_length(self.comm_intervals);
        let mut timeline = self.timeline;
        timeline.sort_by_key(|r| (r.start, r.end));
        let mut report = SimReport::new(
            total,
            per_gpu_compute,
            comm_busy,
            self.bytes_transferred,
            // Restored runs execute only the remaining iterations but
            // report the whole run: count from the global offset.
            self.graph.len() * (self.iter_offset + iterations),
            *self.queue.stats(),
            self.network.observe(),
            timeline,
        );
        report.set_bottleneck(bottleneck);
        if let Some((count, fnv)) = digest {
            report.set_timeline_digest(count, fnv);
        }
        if let Some(fr) = &self.faults {
            report.set_fault_stats(FaultStats {
                faults_injected: fr.injected,
                link_degrades: fr.injected_by_kind[0],
                link_fails: fr.injected_by_kind[1],
                link_repairs: fr.injected_by_kind[2],
                gpu_drops: fr.injected_by_kind[3],
                lost_compute_s: fr.lost_compute.clone(),
            });
        }
        // Packet counters exist only on packet-fidelity runs, so
        // flow-tier reports stay byte-identical to pre-packet builds.
        if let Some(ps) = self.network.observe_packets() {
            report.set_packet_stats(ps);
        }
        Ok(report)
    }

    /// Folds the accumulated attribution state into the run's
    /// [`BottleneckReport`], ranking links by busy time.
    fn build_bottleneck(&self, total: TimeSpan) -> BottleneckReport {
        let lost = self.faults.as_ref().map(|fr| fr.lost_compute.as_slice());
        bottleneck_report(self.network, &self.attr, total, lost)
    }

    /// Records the engine-loop wall time (and the network model's share
    /// of it) into the attached self-profiler, if any.
    fn flush_selfprof(&mut self, engine_t: Option<Instant>, iterations: u64) {
        let Some(t0) = engine_t else {
            return;
        };
        let engine_s = t0.elapsed().as_secs_f64();
        let (net_s, net_calls) = (self.net_wall_s, self.net_wall_calls);
        if let Some(p) = self.selfprof.as_deref_mut() {
            p.add_path(&["engine_loop"], engine_s, iterations);
            p.add_path(&["engine_loop", "network"], net_s, net_calls);
        }
    }

    /// Emits the end-of-run metric dump and closes the recorder.
    /// `bottleneck` is `None` only on error paths (no report exists).
    fn finish_observability(&mut self, total: TimeSpan, bottleneck: Option<&BottleneckReport>) {
        let stats = *self.queue.stats();
        if let Some(p) = self.obs.progress.as_mut() {
            p.report_done(self.queue.now(), stats.delivered());
        }
        if !self.observing {
            return;
        }
        let net = self.network.observe();
        let links = self.network.observe_links();
        let now = self.queue.now();
        let total_s = total.as_seconds();
        let gpu_busy: Vec<f64> = self.gpus.iter().map(|g| g.busy_time.as_seconds()).collect();
        let dispatches = self.dispatches;
        let fault_stats = self
            .faults
            .as_ref()
            .map(|fr| (fr.injected_by_kind, fr.lost_compute.clone()));
        let Some(r) = self.obs.recorder.as_mut() else {
            return;
        };
        r.counter_add(
            "triosim_events_scheduled_total",
            &[],
            stats.scheduled() as f64,
        );
        r.counter_add(
            "triosim_events_delivered_total",
            &[],
            stats.delivered() as f64,
        );
        r.counter_add(
            "triosim_events_cancelled_total",
            &[],
            stats.cancelled() as f64,
        );
        r.counter_add(
            "triosim_queue_compactions_total",
            &[],
            stats.compactions() as f64,
        );
        r.gauge_set(
            now,
            "triosim_queue_max_pending",
            &[],
            stats.max_pending() as f64,
        );
        for (kind, count) in [("compute", 0usize), ("flow", 1), ("tick", 2)] {
            r.counter_add(
                "triosim_events_dispatched_total",
                &[("kind", kind)],
                dispatches[count] as f64,
            );
        }
        // Fault metrics exist only on fault-injected runs, so observed
        // fault-free output stays byte-identical to pre-fault builds.
        if let Some((by_kind, lost)) = &fault_stats {
            r.counter_add(
                "triosim_events_dispatched_total",
                &[("kind", "fault")],
                dispatches[3] as f64,
            );
            for (kind, n) in [
                ("link_degrade", by_kind[0]),
                ("link_fail", by_kind[1]),
                ("link_repair", by_kind[2]),
                ("gpu_drop", by_kind[3]),
            ] {
                r.counter_add("triosim_faults_injected_total", &[("kind", kind)], n as f64);
            }
            for (g, s) in lost.iter().enumerate() {
                let label = g.to_string();
                r.gauge_set(
                    now,
                    "triosim_fault_lost_compute_seconds",
                    &[("gpu", &label)],
                    *s,
                );
            }
        }
        r.counter_add(
            "triosim_net_bytes_delivered_total",
            &[],
            net.bytes_delivered as f64,
        );
        r.counter_add(
            "triosim_net_flows_completed_total",
            &[],
            net.flows_completed as f64,
        );
        r.counter_add(
            "triosim_net_reallocations_total",
            &[],
            net.reallocations as f64,
        );
        r.counter_add("triosim_net_reschedules_total", &[], net.reschedules as f64);
        // Packet metrics exist only on packet-fidelity runs, so observed
        // flow-tier output stays byte-identical to pre-packet builds.
        if let Some(ps) = self.network.observe_packets() {
            r.counter_add("triosim_pkt_packets_total", &[], ps.packets_sent as f64);
            r.counter_add("triosim_pkt_retransmits_total", &[], ps.retransmits as f64);
            r.counter_add("triosim_pkt_drops_total", &[], ps.drops as f64);
            r.counter_add("triosim_pkt_ecn_marks_total", &[], ps.ecn_marks as f64);
            r.gauge_set(
                now,
                "triosim_pkt_queue_depth_max",
                &[],
                ps.max_queue_depth as f64,
            );
        }
        for l in &links {
            r.counter_add("triosim_link_bytes_total", &[("link", &l.label)], l.bytes);
            r.counter_add(
                "triosim_link_busy_seconds_total",
                &[("link", &l.label)],
                l.busy_s,
            );
            if total_s > 0.0 {
                r.gauge_set(
                    now,
                    "triosim_link_utilization_avg",
                    &[("link", &l.label)],
                    (l.busy_s / total_s).clamp(0.0, 1.0),
                );
            }
        }
        for (g, busy) in gpu_busy.iter().enumerate() {
            let label = g.to_string();
            r.gauge_set(now, "triosim_gpu_busy_seconds", &[("gpu", &label)], *busy);
        }
        // Bottleneck attribution: the final iteration's critical path as
        // spans on a dedicated track, plus the aggregate gauges.
        if let Some(bn) = bottleneck {
            for &(task, s, f) in self.attr.last_path() {
                let name = self.attr.label(task as usize);
                r.span(
                    "critical_path",
                    name,
                    s,
                    f,
                    &[("task", AttrValue::U64(u64::from(task)))],
                );
            }
            r.gauge_set(
                now,
                "triosim_critical_path_seconds",
                &[],
                bn.critical_path_s,
            );
            r.gauge_set(
                now,
                "triosim_exposed_comm_fraction",
                &[],
                bn.exposed_comm_fraction,
            );
            for (g, b) in bn.per_gpu.iter().enumerate() {
                let label = g.to_string();
                r.gauge_set(
                    now,
                    "triosim_gpu_exposed_comm_seconds",
                    &[("gpu", &label)],
                    b.exposed_comm_s,
                );
                r.gauge_set(
                    now,
                    "triosim_gpu_idle_seconds",
                    &[("gpu", &label)],
                    b.idle_s,
                );
            }
            r.gauge_set(
                now,
                "triosim_stragglers_flagged",
                &[],
                bn.stragglers.len() as f64,
            );
        }
        r.gauge_set(now, "triosim_sim_time_seconds", &[], total_s);
        if let Err(e) = r.finish() {
            eprintln!("warning: observability sink error: {e}");
        }
    }

    /// Seeds the graph's roots at the current virtual time and drains the
    /// event queue.
    fn run_once(&mut self) {
        self.iter_begin = self.queue.now();
        self.attr_start.fill(None);
        self.attr_end.fill(None);
        self.attr_gpu_pred.fill(None);
        self.last_done.fill(None);
        // Seed: every task with no dependencies starts immediately.
        let roots: Vec<TaskId> = (0..self.graph.len())
            .filter(|&i| self.indegree[i] == 0)
            .map(TaskId)
            .collect();
        for t in roots {
            self.activate(t);
        }

        // Arm the first monitor tick only if real work is pending.
        if self.ticking && self.pending_real > 0 && self.tick_event.is_none() {
            let at = self
                .ticker
                .as_mut()
                .expect("ticking implies a ticker")
                .first_tick(self.queue.now());
            self.tick_event = Some(self.queue.schedule(at, Event::MonitorTick));
        }
        // Likewise the next pending fault: armed only while real work
        // remains, so it can never extend the run.
        if self.pending_real > 0 {
            self.arm_next_fault();
        }

        while let Some((now, event)) = self.queue.pop() {
            // Runaway guard: real events are counted and checked before
            // they are processed, so with `max_events = N` exactly N
            // events take effect. Ticks and fault injections are
            // excluded so budget trips are independent of observability
            // settings and fault-plan shape.
            if (self.budget.is_some() || self.track_events)
                && matches!(
                    event,
                    Event::ComputeDone { .. } | Event::FlowDelivered { .. }
                )
            {
                self.budget_events += 1;
                if self.track_events {
                    self.event_times.push(now);
                }
                if let Some(b) = &self.budget {
                    if let Some((kind, limit)) = b.check(self.budget_events, now) {
                        self.stop_error = Some(SimError::BudgetExceeded { kind, limit });
                        return;
                    }
                }
            }
            match event {
                Event::ComputeDone { gpu, task } => {
                    self.pending_real -= 1;
                    self.dispatches[0] += 1;
                    self.gpus[gpu].busy = false;
                    let start = self.compute_start[task.0].expect("compute was started");
                    self.gpus[gpu].busy_time += now - start;
                    self.attr_end[task.0] = Some(now);
                    self.last_done[gpu] = Some(task.0 as u32);
                    self.timeline.push(TimelineRecord {
                        label: self.graph.tasks()[task.0].label.clone(),
                        track: TimelineTrack::Gpu(gpu),
                        start,
                        end: now,
                        layer: self.graph.tasks()[task.0].layer,
                    });
                    if self.observing {
                        self.record_compute(gpu, task, start, now);
                    }
                    self.complete(task);
                    self.try_start_gpu(gpu);
                }
                Event::FlowDelivered { flow } => {
                    self.pending_real -= 1;
                    self.dispatches[1] += 1;
                    self.flow_event.remove(&flow);
                    let task = self
                        .flow_task
                        .remove(&flow)
                        .expect("delivered flow belongs to a task");
                    let start = self.flow_start.remove(&flow).expect("flow start recorded");
                    self.attr_end[task.0] = Some(now);
                    self.comm_intervals.push((start, now));
                    self.timeline.push(TimelineRecord {
                        label: self.graph.tasks()[task.0].label.clone(),
                        track: TimelineTrack::Network,
                        start,
                        end: now,
                        layer: self.graph.tasks()[task.0].layer,
                    });
                    if let TaskKind::Transfer { bytes, .. } = self.graph.tasks()[task.0].kind {
                        self.bytes_transferred += bytes;
                    }
                    if self.observing {
                        self.record_flow(task, start, now);
                    }
                    let cmds = if self.profiling {
                        let t0 = Instant::now();
                        let cmds = self.network.deliver(flow, now);
                        self.net_wall_s += t0.elapsed().as_secs_f64();
                        self.net_wall_calls += 1;
                        cmds
                    } else {
                        self.network.deliver(flow, now)
                    };
                    self.apply(cmds);
                    self.complete(task);
                }
                Event::MonitorTick => {
                    self.tick_event = None;
                    self.dispatches[2] += 1;
                    self.sample(now);
                    if self.pending_real > 0 {
                        if let Some(at) = self.ticker.as_mut().and_then(|t| t.next_tick(now)) {
                            self.tick_event = Some(self.queue.schedule(at, Event::MonitorTick));
                        }
                    }
                    continue;
                }
                Event::Fault { idx } => {
                    self.dispatches[3] += 1;
                    if let Some(fr) = self.faults.as_mut() {
                        fr.fault_event = None;
                        fr.cursor = idx + 1;
                    }
                    self.apply_fault(now, idx);
                    if self.stop_error.is_some() {
                        return;
                    }
                    if self.pending_real > 0 {
                        self.arm_next_fault();
                    }
                }
            }
            if self.stop_error.is_some() {
                return;
            }
            // A tick never outlives the real work: cancel the pending one
            // as soon as the queue holds nothing else, so the trailing
            // tick cannot inflate `queue.now()` past the last real event.
            // The same goes for an armed fault.
            if self.pending_real == 0 {
                if let Some(id) = self.tick_event.take() {
                    self.queue.cancel(id);
                }
                if let Some(id) = self.faults.as_mut().and_then(|fr| fr.fault_event.take()) {
                    self.queue.cancel(id);
                }
            }
        }
    }

    /// Schedules the next timeline fault (if any) at its injection time,
    /// clamped forward to `now` — time never runs backwards, so a fault
    /// whose nominal time already passed fires immediately.
    fn arm_next_fault(&mut self) {
        let now = self.queue.now();
        let Some(fr) = self.faults.as_mut() else {
            return;
        };
        if fr.fault_event.is_some() {
            return;
        }
        let Some(tf) = fr.session.timeline().get(fr.cursor) else {
            return;
        };
        let at = VirtualTime::from_seconds(tf.at_s).max(now);
        let idx = fr.cursor;
        fr.fault_event = Some(self.queue.schedule(at, Event::Fault { idx }));
    }

    /// Injects timeline entry `idx` into the network (or drops a GPU),
    /// recording attribution counters and observability events.
    fn apply_fault(&mut self, now: VirtualTime, idx: usize) {
        let kind = {
            let Some(fr) = self.faults.as_mut() else {
                return;
            };
            let kind = fr.session.timeline()[idx].kind;
            fr.injected += 1;
            match kind {
                FaultKind::LinkDegrade { .. } => fr.injected_by_kind[0] += 1,
                FaultKind::LinkFail { src, dst } => {
                    fr.injected_by_kind[1] += 1;
                    fr.outage_since
                        .entry((src.min(dst), src.max(dst)))
                        .or_insert(now);
                }
                FaultKind::LinkRepair { .. } => fr.injected_by_kind[2] += 1,
                FaultKind::GpuDrop { .. } => fr.injected_by_kind[3] += 1,
            }
            kind
        };
        match kind {
            FaultKind::LinkDegrade { src, dst, factor } => {
                self.inject_link_fault(now, src, dst, LinkFault::Degrade { factor });
            }
            FaultKind::LinkFail { src, dst } => {
                self.inject_link_fault(now, src, dst, LinkFault::Fail);
            }
            FaultKind::LinkRepair { src, dst } => {
                self.inject_link_fault(now, src, dst, LinkFault::Repair);
                let down_at = self
                    .faults
                    .as_mut()
                    .and_then(|fr| fr.outage_since.remove(&(src.min(dst), src.max(dst))));
                if self.observing {
                    if let (Some(start), Some(r)) = (down_at, self.obs.recorder.as_mut()) {
                        r.span(
                            "faults",
                            &format!("outage n{src}<->n{dst}"),
                            start,
                            now,
                            &[
                                ("src", AttrValue::U64(src as u64)),
                                ("dst", AttrValue::U64(dst as u64)),
                            ],
                        );
                    }
                }
            }
            FaultKind::GpuDrop { gpu } => {
                self.stop_error = Some(SimError::GpuLost {
                    gpu,
                    at_s: now.as_seconds(),
                });
            }
        }
        if self.observing {
            let label = kind.label();
            let (a, b) = match kind {
                FaultKind::LinkDegrade { src, dst, .. }
                | FaultKind::LinkFail { src, dst }
                | FaultKind::LinkRepair { src, dst } => (src as u64, dst as u64),
                FaultKind::GpuDrop { gpu } => (gpu as u64, gpu as u64),
            };
            if let Some(r) = self.obs.recorder.as_mut() {
                r.instant(
                    now,
                    "faults",
                    label,
                    &[("a", AttrValue::U64(a)), ("b", AttrValue::U64(b))],
                );
            }
        }
    }

    /// Routes one link fault into the network model; a resulting
    /// partition becomes the run's structured error.
    fn inject_link_fault(&mut self, now: VirtualTime, src: usize, dst: usize, fault: LinkFault) {
        match self
            .network
            .apply_link_fault(now, NodeId(src), NodeId(dst), fault)
        {
            Ok(cmds) => self.apply(cmds),
            Err(e) => {
                self.stop_error = Some(SimError::Partitioned {
                    src: e.src.0,
                    dst: e.dst.0,
                    at_s: now.as_seconds(),
                });
            }
        }
    }

    /// Emits the span and metrics for one finished compute task.
    fn record_compute(&mut self, gpu: usize, task: TaskId, start: VirtualTime, now: VirtualTime) {
        let graph = self.graph;
        let t = &graph.tasks()[task.0];
        let Some(r) = self.obs.recorder.as_mut() else {
            return;
        };
        let track = format!("gpu{gpu}");
        match t.layer {
            Some(layer) => r.span(
                &track,
                &t.label,
                start,
                now,
                &[("layer", AttrValue::U64(layer as u64))],
            ),
            None => r.span(&track, &t.label, start, now, &[]),
        }
        let dur = (now - start).as_seconds();
        r.histogram_record("triosim_operator_duration_seconds", &[], dur);
        r.counter_add("triosim_tasks_executed_total", &[("kind", "compute")], 1.0);
        let label = gpu.to_string();
        r.counter_add("triosim_gpu_tasks_total", &[("gpu", &label)], 1.0);
    }

    /// Emits the span and metrics for one delivered transfer.
    fn record_flow(&mut self, task: TaskId, start: VirtualTime, now: VirtualTime) {
        let graph = self.graph;
        let t = &graph.tasks()[task.0];
        let TaskKind::Transfer { bytes, .. } = t.kind else {
            return;
        };
        let Some(r) = self.obs.recorder.as_mut() else {
            return;
        };
        r.span(
            "network",
            &t.label,
            start,
            now,
            &[("bytes", AttrValue::U64(bytes))],
        );
        r.histogram_record(
            "triosim_flow_duration_seconds",
            &[],
            (now - start).as_seconds(),
        );
        r.counter_add("triosim_tasks_executed_total", &[("kind", "transfer")], 1.0);
    }

    /// One monitor-tick sample: queue depth, in-flight flows, per-link
    /// utilization over the window since the previous sample, and the
    /// live progress line.
    fn sample(&mut self, now: VirtualTime) {
        let net = self.network.observe();
        if self.observing {
            let depth = self.queue.len() as f64;
            let links = self.network.observe_links();
            let dt = (now - self.prev_sample_at).as_seconds();
            if let Some(r) = self.obs.recorder.as_mut() {
                r.gauge_set(now, "triosim_queue_depth", &[], depth);
                r.gauge_set(
                    now,
                    "triosim_net_flows_in_flight",
                    &[],
                    net.in_flight as f64,
                );
                if dt > 0.0 {
                    if self.prev_link_busy.len() != links.len() {
                        self.prev_link_busy.resize(links.len(), 0.0);
                    }
                    for (i, l) in links.iter().enumerate() {
                        let util = ((l.busy_s - self.prev_link_busy[i]) / dt).clamp(0.0, 1.0);
                        r.gauge_set(now, "triosim_link_utilization", &[("link", &l.label)], util);
                        self.prev_link_busy[i] = l.busy_s;
                    }
                }
            }
            self.prev_sample_at = now;
        }
        if let Some(p) = self.obs.progress.as_mut() {
            p.sample(now, self.queue.stats().delivered(), net.in_flight);
        }
    }

    /// Marks `task` complete and activates newly unblocked tasks.
    fn complete(&mut self, task: TaskId) {
        // Worklist to avoid recursion through long barrier chains.
        let mut work = vec![task];
        while let Some(t) = work.pop() {
            if self.stop_error.is_some() {
                return;
            }
            self.completed += 1;
            if self.observing {
                self.record_completion(t);
            }
            for i in 0..self.dependents[t.0].len() {
                let dep = self.dependents[t.0][i];
                self.indegree[dep.0] -= 1;
                if self.indegree[dep.0] == 0 {
                    if let Some(done_now) = self.activate_inline(dep) {
                        work.push(done_now);
                    }
                }
            }
        }
    }

    /// Observability bookkeeping for one completed task: barrier counts
    /// and, for a collective's final barrier, the retrospective span.
    fn record_completion(&mut self, task: TaskId) {
        let graph = self.graph;
        if matches!(graph.tasks()[task.0].kind, TaskKind::Barrier) {
            if let Some(r) = self.obs.recorder.as_mut() {
                r.counter_add("triosim_tasks_executed_total", &[("kind", "barrier")], 1.0);
            }
        }
        let Some(&ci) = self.collective_of_last.get(&task) else {
            return;
        };
        let meta = &graph.collectives()[ci];
        let now = self.queue.now();
        let begin = self.collective_begin[ci].take().unwrap_or(now);
        let Some(r) = self.obs.recorder.as_mut() else {
            return;
        };
        r.span(
            "collectives",
            &meta.label,
            begin,
            now,
            &[
                ("algorithm", AttrValue::Str(meta.algorithm)),
                ("payload_bytes", AttrValue::U64(meta.payload_bytes)),
                ("participants", AttrValue::U64(meta.participants as u64)),
                ("steps", AttrValue::U64(meta.steps as u64)),
            ],
        );
        let labels = [("algorithm", meta.algorithm)];
        r.counter_add("triosim_collectives_total", &labels, 1.0);
        r.counter_add(
            "triosim_collective_payload_bytes_total",
            &labels,
            meta.payload_bytes as f64,
        );
        r.histogram_record(
            "triosim_collective_duration_seconds",
            &labels,
            (now - begin).as_seconds(),
        );
    }

    fn activate(&mut self, task: TaskId) {
        if let Some(done_now) = self.activate_inline(task) {
            self.complete(done_now);
        }
    }

    /// Starts a task. Barriers complete instantly: the caller receives
    /// them back to cascade completion without recursion.
    fn activate_inline(&mut self, task: TaskId) -> Option<TaskId> {
        match &self.graph.tasks()[task.0].kind {
            TaskKind::Barrier => {
                let now = self.queue.now();
                self.attr_start[task.0] = Some(now);
                self.attr_end[task.0] = Some(now);
                Some(task)
            }
            TaskKind::Compute { gpu, .. } => {
                self.gpus[*gpu].ready.push_back(task);
                self.try_start_gpu(*gpu);
                None
            }
            TaskKind::Transfer { src, dst, bytes } => {
                let now = self.queue.now();
                self.attr_start[task.0] = Some(now);
                if self.observing {
                    if let Some(&ci) = self.collective_of_first.get(&task) {
                        self.collective_begin[ci].get_or_insert(now);
                    }
                }
                if self.faults.is_some() {
                    // Under fault injection a missing path is a runtime
                    // outcome (an injected failure partitioned the
                    // topology), not a configuration bug: surface it as
                    // the run's structured error instead of panicking.
                    match self.network.try_send(now, *src, *dst, *bytes) {
                        Ok((flow, cmds)) => {
                            self.flow_task.insert(flow, task);
                            self.flow_start.insert(flow, now);
                            self.apply(cmds);
                        }
                        Err(e) => {
                            self.stop_error = Some(SimError::Partitioned {
                                src: e.src.0,
                                dst: e.dst.0,
                                at_s: now.as_seconds(),
                            });
                        }
                    }
                } else {
                    let t0 = self.profiling.then(Instant::now);
                    let (flow, cmds) = self.network.send(now, *src, *dst, *bytes);
                    if let Some(t0) = t0 {
                        self.net_wall_s += t0.elapsed().as_secs_f64();
                        self.net_wall_calls += 1;
                    }
                    self.flow_task.insert(flow, task);
                    self.flow_start.insert(flow, now);
                    self.apply(cmds);
                }
                None
            }
        }
    }

    fn try_start_gpu(&mut self, gpu: usize) {
        if self.gpus[gpu].busy {
            return;
        }
        let Some(task) = self.gpus[gpu].ready.pop_front() else {
            return;
        };
        let TaskKind::Compute { duration, .. } = self.graph.tasks()[task.0].kind else {
            unreachable!("GPU queues hold compute tasks only");
        };
        let duration = self.dilated(gpu, task, duration);
        self.gpus[gpu].busy = true;
        let now = self.queue.now();
        self.compute_start[task.0] = Some(now);
        self.attr_start[task.0] = Some(now);
        self.attr_gpu_pred[task.0] = self.last_done[gpu];
        self.pending_real += 1;
        self.queue
            .schedule(now + duration, Event::ComputeDone { gpu, task });
    }

    /// Applies the session's compute slowdown and per-op jitter to one
    /// operator duration, attributing the added time to the GPU. The
    /// fault-free path returns `duration` untouched (no float math), so
    /// empty plans stay bit-identical to plain runs.
    fn dilated(&mut self, gpu: usize, task: TaskId, duration: TimeSpan) -> TimeSpan {
        let Some(fr) = self.faults.as_mut() else {
            return duration;
        };
        let factor = fr.session.compute_factor(gpu)
            * fr.session.jitter_factor(gpu, task.0, self.current_iter);
        if factor == 1.0 {
            return duration;
        }
        let dilated = duration * factor;
        fr.lost_compute[gpu] += (dilated - duration).as_seconds();
        dilated
    }

    fn apply(&mut self, cmds: Vec<NetCommand>) {
        for cmd in cmds {
            match cmd {
                NetCommand::Schedule { flow, at } => {
                    if let Some(old) = self.flow_event.remove(&flow) {
                        if self.queue.cancel(old) {
                            self.pending_real -= 1;
                        }
                    }
                    self.pending_real += 1;
                    let id = self.queue.schedule(at, Event::FlowDelivered { flow });
                    self.flow_event.insert(flow, id);
                }
                NetCommand::Cancel { flow } => {
                    if let Some(old) = self.flow_event.remove(&flow) {
                        if self.queue.cancel(old) {
                            self.pending_real -= 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::TaskGraph;
    use triosim_des::TimeSpan;
    use triosim_network::{FlowNetwork, NodeId, Topology};

    fn net2() -> FlowNetwork {
        let mut t = Topology::new(2);
        t.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        FlowNetwork::new(t)
    }

    #[test]
    fn serial_compute_chain_sums_durations() {
        let mut g = TaskGraph::new(1);
        let a = g.compute("a", 0, TimeSpan::from_millis(2.0), vec![]);
        let b = g.compute("b", 0, TimeSpan::from_millis(3.0), vec![a]);
        g.compute("c", 0, TimeSpan::from_millis(5.0), vec![b]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.010).abs() < 1e-12);
        assert!((r.compute_time_s() - 0.010).abs() < 1e-12);
        assert_eq!(r.comm_time_s(), 0.0);
    }

    #[test]
    fn independent_tasks_on_one_gpu_serialize() {
        let mut g = TaskGraph::new(1);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        g.compute("b", 0, TimeSpan::from_millis(1.0), vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-12, "one stream");
    }

    #[test]
    fn independent_tasks_on_two_gpus_parallelize() {
        let mut g = TaskGraph::new(2);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        g.compute("b", 1, TimeSpan::from_millis(1.0), vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn transfer_overlaps_compute() {
        let mut g = TaskGraph::new(1);
        // 10 ms compute and a 10 MB transfer (10 ms at 1 GB/s) overlap.
        g.compute("work", 0, TimeSpan::from_millis(10.0), vec![]);
        g.transfer("move", NodeId(0), NodeId(1), 10_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!(
            (r.total_time_s() - 0.010).abs() < 1e-9,
            "{}",
            r.total_time_s()
        );
        assert!((r.comm_time_s() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn dependencies_order_execution() {
        let mut g = TaskGraph::new(1);
        let t = g.transfer("move", NodeId(0), NodeId(1), 5_000_000, vec![]);
        g.compute("after", 0, TimeSpan::from_millis(1.0), vec![t]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.006).abs() < 1e-9);
    }

    #[test]
    fn barriers_are_free() {
        let mut g = TaskGraph::new(1);
        let a = g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        let b = g.barrier("sync", vec![a]);
        let b2 = g.barrier("sync2", vec![b]);
        g.compute("c", 0, TimeSpan::from_millis(1.0), vec![b2]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-12);
        assert_eq!(r.tasks_executed(), 4);
    }

    #[test]
    fn empty_graph_finishes_at_zero() {
        let g = TaskGraph::new(1);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert_eq!(r.total_time_s(), 0.0);
    }

    #[test]
    fn timeline_records_tasks() {
        let mut g = TaskGraph::new(1);
        g.compute("op1", 0, TimeSpan::from_millis(1.0), vec![]);
        g.transfer("mv", NodeId(0), NodeId(1), 1_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert_eq!(r.timeline().len(), 2);
        let tracks: Vec<_> = r.timeline().iter().map(|t| t.track).collect();
        assert!(tracks.contains(&TimelineTrack::Gpu(0)));
        assert!(tracks.contains(&TimelineTrack::Network));
    }

    #[test]
    fn iterations_chain_in_time() {
        let mut g = TaskGraph::new(1);
        g.compute("a", 0, TimeSpan::from_millis(2.0), vec![]);
        let mut net = net2();
        let r = execute_iterations(&g, &mut net, 5);
        assert!((r.total_time_s() - 0.010).abs() < 1e-12, "5 x 2 ms");
        assert_eq!(r.tasks_executed(), 5);
        assert_eq!(r.timeline().len(), 5);
    }

    #[test]
    fn network_state_persists_across_iterations() {
        use triosim_network::{PhotonicConfig, PhotonicNetwork};
        let mut g = TaskGraph::new(1);
        g.transfer("mv", NodeId(0), NodeId(1), 1 << 20, vec![]);
        let mut net = PhotonicNetwork::new(2, PhotonicConfig::passage());
        let r1 = execute(&g, &mut PhotonicNetwork::new(2, PhotonicConfig::passage()));
        let r10 = execute_iterations(&g, &mut net, 10);
        // One iteration pays the 20 ms setup; ten iterations pay it once.
        assert!(r1.total_time_s() > 20e-3);
        assert!(
            r10.total_time_s() < 10.0 * r1.total_time_s() / 2.0,
            "amortized: {} vs 10 x {}",
            r10.total_time_s(),
            r1.total_time_s()
        );
        assert_eq!(net.circuits_established(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let g = TaskGraph::new(1);
        execute_iterations(&g, &mut net2(), 0);
    }

    #[test]
    fn concurrent_transfers_share_and_finish_together() {
        let mut g = TaskGraph::new(1);
        g.transfer("m1", NodeId(0), NodeId(1), 1_000_000, vec![]);
        g.transfer("m2", NodeId(0), NodeId(1), 1_000_000, vec![]);
        let mut net = net2();
        let r = execute(&g, &mut net);
        assert!((r.total_time_s() - 0.002).abs() < 1e-9, "fair sharing");
        assert_eq!(r.bytes_transferred(), 2_000_000);
    }

    // ---------------- observability ----------------

    use std::sync::{Arc, Mutex};
    use triosim_obs::{JsonlSink, RunRecorder};

    /// A cloneable writer capturing everything written through it, so a
    /// test can read back sink output after the executor consumed the
    /// recorder.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn take_string(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn overlap_graph() -> TaskGraph {
        let mut g = TaskGraph::new(1);
        g.compute("work", 0, TimeSpan::from_millis(10.0), vec![]);
        let t = g.transfer("move", NodeId(0), NodeId(1), 10_000_000, vec![]);
        g.barrier("done", vec![t]);
        g
    }

    fn jsonl_obs(buf: &SharedBuf) -> Observability {
        let mut rec = RunRecorder::new();
        rec.push(Box::new(JsonlSink::new(buf.clone())));
        Observability::off()
            .with_recorder(Box::new(rec))
            .with_sample_period(TimeSpan::from_millis(1.0))
    }

    #[test]
    fn monitor_ticks_never_change_simulation_results() {
        let g = overlap_graph();
        let plain = execute_iterations(&g, &mut net2(), 3);
        let buf = SharedBuf::default();
        let observed = execute_observed(&g, &mut net2(), 3, jsonl_obs(&buf));
        assert_eq!(plain.total_time(), observed.total_time());
        assert_eq!(plain.bytes_transferred(), observed.bytes_transferred());
        assert_eq!(plain.compute_time_s(), observed.compute_time_s());
        assert_eq!(plain.timeline().len(), observed.timeline().len());
        // The ticks really fired: gauges were sampled along the way.
        let out = buf.take_string();
        assert!(out.contains("triosim_queue_depth"), "{out}");
    }

    #[test]
    fn observed_run_emits_spans_and_end_of_run_metrics() {
        let g = overlap_graph();
        let buf = SharedBuf::default();
        execute_observed(&g, &mut net2(), 1, jsonl_obs(&buf));
        let out = buf.take_string();
        assert!(out.contains("\"track\":\"gpu0\""), "compute span: {out}");
        assert!(out.contains("\"track\":\"network\""), "flow span: {out}");
        assert!(out.contains("triosim_events_delivered_total"), "{out}");
        assert!(out.contains("triosim_sim_time_seconds"), "{out}");
        assert!(out.contains("triosim_net_flows_completed_total"), "{out}");
    }

    #[test]
    fn observed_output_is_deterministic() {
        let run = || {
            let g = overlap_graph();
            let buf = SharedBuf::default();
            execute_observed(&g, &mut net2(), 2, jsonl_obs(&buf));
            buf.take_string()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "two identical runs must produce identical bytes");
    }

    #[test]
    fn collective_completion_emits_tagged_span() {
        use crate::taskgraph::CollectiveMeta;
        let mut g = TaskGraph::new(2);
        let t = g.transfer("ar.s0.0->1", NodeId(0), NodeId(1), 1_000_000, vec![]);
        let done = g.barrier("ar.s0.done", vec![t]);
        g.register_collective(CollectiveMeta {
            label: "ar".into(),
            algorithm: "allreduce",
            payload_bytes: 1_000_000,
            participants: 2,
            steps: 1,
            first: t,
            last: done,
        });
        let buf = SharedBuf::default();
        execute_observed(&g, &mut net2(), 1, jsonl_obs(&buf));
        let out = buf.take_string();
        assert!(out.contains("\"track\":\"collectives\""), "{out}");
        assert!(out.contains("\"algorithm\":\"allreduce\""), "{out}");
        assert!(out.contains("triosim_collectives_total"), "{out}");
    }

    // ---------------- fault injection ----------------

    #[test]
    fn empty_plan_is_bit_identical_to_plain_run() {
        let g = overlap_graph();
        let plain = execute_iterations(&g, &mut net2(), 3);
        let faulted = execute_faulted(
            &g,
            &mut net2(),
            3,
            Observability::off(),
            &triosim_faults::FaultPlan::default(),
        )
        .expect("empty plan cannot fail");
        assert_eq!(plain.total_time(), faulted.total_time());
        assert_eq!(plain.bytes_transferred(), faulted.bytes_transferred());
        assert_eq!(plain.timeline(), faulted.timeline());
        assert!(faulted.fault_stats().is_none(), "no session attached");
    }

    #[test]
    fn straggler_gpu_dilates_compute_and_attributes_loss() {
        let mut g = TaskGraph::new(2);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        g.compute("b", 1, TimeSpan::from_millis(1.0), vec![]);
        let plan = triosim_faults::FaultPlan {
            gpu_slowdowns: vec![triosim_faults::GpuSlowdown {
                gpu: 1,
                factor: 3.0,
            }],
            ..Default::default()
        };
        let r = execute_faulted(&g, &mut net2(), 1, Observability::off(), &plan).unwrap();
        assert!(
            (r.total_time_s() - 0.003).abs() < 1e-9,
            "{}",
            r.total_time_s()
        );
        let fs = r.fault_stats().expect("session attached");
        assert!(fs.lost_compute_s[0].abs() < 1e-12);
        assert!((fs.lost_compute_s[1] - 0.002).abs() < 1e-9);
    }

    #[test]
    fn link_failure_on_chain_returns_partitioned_error() {
        // 0 - 1 - 2 chain; a long transfer 0 -> 2 is in flight when the
        // 1<->2 link dies at 1 ms. No alternative path: structured error.
        let mut t = Topology::new(3);
        t.add_duplex(NodeId(0), NodeId(1), 1e9, 0.0);
        t.add_duplex(NodeId(1), NodeId(2), 1e9, 0.0);
        let mut net = FlowNetwork::new(t);
        let mut g = TaskGraph::new(1);
        g.transfer("mv", NodeId(0), NodeId(2), 100_000_000, vec![]);
        let plan = triosim_faults::FaultPlan {
            link_failures: vec![triosim_faults::LinkFailure {
                src: 1,
                dst: 2,
                at_s: 0.001,
                repair_s: None,
            }],
            ..Default::default()
        };
        let err = execute_faulted(&g, &mut net, 1, Observability::off(), &plan).unwrap_err();
        assert_eq!(
            err,
            crate::error::SimError::Partitioned {
                src: 0,
                dst: 2,
                at_s: 0.001
            }
        );
    }

    #[test]
    fn link_failure_on_ring_reroutes_and_counts_hops() {
        let mut net = FlowNetwork::new(Topology::ring(4, 1e9, 0.0));
        let mut g = TaskGraph::new(1);
        g.transfer("mv", NodeId(0), NodeId(1), 10_000_000, vec![]);
        let plan = triosim_faults::FaultPlan {
            link_failures: vec![triosim_faults::LinkFailure {
                src: 0,
                dst: 1,
                at_s: 0.001,
                repair_s: None,
            }],
            ..Default::default()
        };
        let r = execute_faulted(&g, &mut net, 1, Observability::off(), &plan).unwrap();
        assert_eq!(r.network_stats().reroutes, 1);
        assert_eq!(r.network_stats().added_hops, 2, "1 hop -> 3 hops");
        // A lone flow keeps its 1 GB/s bottleneck on the detour (zero
        // link latency), so it still finishes on time — rerouted, not
        // hung, is the point.
        assert!(
            (r.total_time_s() - 0.010).abs() < 1e-9,
            "{}",
            r.total_time_s()
        );
    }

    #[test]
    fn gpu_dropout_returns_gpu_lost() {
        let mut g = TaskGraph::new(2);
        g.compute("a", 0, TimeSpan::from_millis(5.0), vec![]);
        g.compute("b", 1, TimeSpan::from_millis(5.0), vec![]);
        let plan = triosim_faults::FaultPlan {
            gpu_dropouts: vec![triosim_faults::GpuDropout {
                gpu: 1,
                at_s: 0.001,
            }],
            ..Default::default()
        };
        let err = execute_faulted(&g, &mut net2(), 1, Observability::off(), &plan).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::GpuLost { gpu: 1, .. }
        ));
    }

    #[test]
    fn fault_injected_runs_are_deterministic() {
        let run = || {
            let mut g = TaskGraph::new(2);
            for i in 0..8 {
                g.compute(format!("op{i}"), i % 2, TimeSpan::from_millis(1.0), vec![]);
            }
            let plan = triosim_faults::FaultPlan {
                seed: 42,
                jitter: Some(triosim_faults::Jitter { amplitude: 0.5 }),
                gpu_slowdowns: vec![triosim_faults::GpuSlowdown {
                    gpu: 0,
                    factor: 1.5,
                }],
                ..Default::default()
            };
            let r = execute_faulted(&g, &mut net2(), 3, Observability::off(), &plan).unwrap();
            (r.total_time(), r.fault_stats().cloned())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_past_end_of_run_never_extends_it() {
        let mut g = TaskGraph::new(1);
        g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        let plan = triosim_faults::FaultPlan {
            link_failures: vec![triosim_faults::LinkFailure {
                src: 0,
                dst: 1,
                at_s: 999.0,
                repair_s: None,
            }],
            ..Default::default()
        };
        let r = execute_faulted(&g, &mut net2(), 1, Observability::off(), &plan).unwrap();
        assert!((r.total_time_s() - 0.001).abs() < 1e-12);
        assert_eq!(r.fault_stats().unwrap().faults_injected, 0, "never fired");
    }

    #[test]
    fn fault_events_surface_in_observability() {
        let mut net = FlowNetwork::new(Topology::ring(4, 1e9, 0.0));
        let mut g = TaskGraph::new(1);
        g.transfer("mv", NodeId(0), NodeId(1), 20_000_000, vec![]);
        let plan = triosim_faults::FaultPlan {
            link_failures: vec![triosim_faults::LinkFailure {
                src: 0,
                dst: 1,
                at_s: 0.001,
                repair_s: Some(0.005),
            }],
            ..Default::default()
        };
        let buf = SharedBuf::default();
        let r = execute_faulted(&g, &mut net, 1, jsonl_obs(&buf), &plan).unwrap();
        let out = buf.take_string();
        assert!(out.contains("link_fail"), "{out}");
        assert!(out.contains("triosim_faults_injected_total"), "{out}");
        assert!(
            out.contains("outage n0<->n1"),
            "repair closes the outage span: {out}"
        );
        assert_eq!(r.fault_stats().unwrap().link_repairs, 1);
    }

    #[test]
    fn progress_monitor_reports_through_executor() {
        let g = overlap_graph();
        let buf = SharedBuf::default();
        let monitor = triosim_obs::ProgressMonitor::with_writer(Box::new(buf.clone()))
            .throttle(std::time::Duration::ZERO);
        let obs = Observability::off().with_progress(monitor);
        execute_observed(&g, &mut net2(), 1, obs);
        let out = buf.take_string();
        assert!(out.contains("progress: done"), "{out}");
    }
}
