//! Hardware platforms: GPUs plus the interconnect that joins them.

use triosim_network::{NodeId, Topology};
use triosim_trace::{GpuModel, LinkKind};

/// A multi-GPU platform: `gpu_count` GPUs of one model, a host node, and
/// an interconnect topology.
///
/// Node numbering convention: node 0 is the host (CPU); GPUs are nodes
/// `1..=gpu_count`. The paper's three validation platforms are provided
/// as constructors ([`p1`](Platform::p1), [`p2`](Platform::p2),
/// [`p3`](Platform::p3)), and arbitrary topologies can be assembled with
/// [`custom`](Platform::custom).
///
/// # Example
///
/// ```rust
/// use triosim::Platform;
///
/// let p2 = Platform::p2(4);
/// assert_eq!(p2.gpu_count(), 4);
/// assert_eq!(p2.gpu_node(0).0, 1, "GPU 0 is node 1; node 0 is the host");
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    gpu: GpuModel,
    gpu_count: usize,
    topology: Topology,
}

impl Platform {
    /// P1: 2x NVIDIA A40 connected over PCIe (host-mediated tree).
    pub fn p1() -> Self {
        Self::pcie(GpuModel::A40, 2, "P1")
    }

    /// P2: `gpus` (the paper uses 2 or 4) NVIDIA A100 connected with
    /// NVLink through NVSwitch (any-to-any), plus host PCIe uplinks.
    ///
    /// # Panics
    ///
    /// Panics if `gpus < 2`.
    pub fn p2(gpus: usize) -> Self {
        Self::nvswitch(GpuModel::A100, gpus, LinkKind::NvLink3, "P2")
    }

    /// P3: 8x NVIDIA H100 on NVSwitch (NVLink 4).
    pub fn p3() -> Self {
        Self::nvswitch(GpuModel::H100, 8, LinkKind::NvLink4, "P3")
    }

    /// A PCIe host-tree platform (all GPU traffic crosses the host).
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn pcie(gpu: GpuModel, gpus: usize, name: impl Into<String>) -> Self {
        let link = LinkKind::Pcie4;
        let topology = Topology::pcie_host_tree(gpus, link.achieved_bandwidth(), link.latency_s());
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// An NVSwitch-style any-to-any platform with host PCIe uplinks.
    ///
    /// # Panics
    ///
    /// Panics if `gpus < 2`.
    pub fn nvswitch(gpu: GpuModel, gpus: usize, link: LinkKind, name: impl Into<String>) -> Self {
        assert!(gpus >= 2, "NVSwitch platform needs at least 2 GPUs");
        // Node 0 = host; 1..=gpus = GPUs, fully connected via NVLink.
        let mut topology = Topology::new(gpus + 1);
        for i in 1..=gpus {
            topology.add_duplex(
                NodeId(0),
                NodeId(i),
                LinkKind::HostPcie.achieved_bandwidth(),
                LinkKind::HostPcie.latency_s(),
            );
        }
        for i in 1..=gpus {
            for j in (i + 1)..=gpus {
                topology.add_duplex(
                    NodeId(i),
                    NodeId(j),
                    link.achieved_bandwidth(),
                    link.latency_s(),
                );
            }
        }
        // GPU peer traffic never bounces through the host on NVLink.
        topology.set_transit(NodeId(0), false);
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// A ring-connected platform with host uplinks (wafer-scale and Hop
    /// case studies build on this and on [`custom`](Platform::custom)).
    ///
    /// # Panics
    ///
    /// Panics if `gpus < 2`.
    pub fn ring(gpu: GpuModel, gpus: usize, link: LinkKind, name: impl Into<String>) -> Self {
        assert!(gpus >= 2, "ring platform needs at least 2 GPUs");
        let mut topology = Topology::new(gpus + 1);
        for i in 1..=gpus {
            topology.add_duplex(
                NodeId(0),
                NodeId(i),
                LinkKind::HostPcie.achieved_bandwidth(),
                LinkKind::HostPcie.latency_s(),
            );
        }
        for i in 0..gpus {
            let a = NodeId(1 + i);
            let b = NodeId(1 + (i + 1) % gpus);
            topology.add_duplex(a, b, link.achieved_bandwidth(), link.latency_s());
        }
        topology.set_transit(NodeId(0), false);
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// A multi-node cluster: `nodes` servers of `gpus_per_node` GPUs
    /// each. GPUs within a server are fully connected over `intra`
    /// (NVSwitch-style); servers connect through per-server NICs to a
    /// single spine at `inter_bandwidth` bytes/s and `inter_latency_s`
    /// (InfiniBand/Ethernet class). Node layout: host 0, GPUs
    /// `1..=nodes*gpus_per_node`, then one NIC node per server and the
    /// spine (all transit-only).
    ///
    /// This is the hierarchical-network regime AstraSim 2.0 targets; the
    /// flow model handles it with no special casing because routes and
    /// fair sharing already compose.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `gpus_per_node < 1`.
    pub fn multi_node(
        gpu: GpuModel,
        nodes: usize,
        gpus_per_node: usize,
        intra: LinkKind,
        inter_bandwidth: f64,
        inter_latency_s: f64,
        name: impl Into<String>,
    ) -> Self {
        assert!(nodes >= 2, "a cluster needs at least two servers");
        assert!(gpus_per_node >= 1, "each server needs a GPU");
        let gpus = nodes * gpus_per_node;
        let nic_base = 1 + gpus;
        let spine = NodeId(nic_base + nodes);
        let mut topology = Topology::new(nic_base + nodes + 1);

        for i in 1..=gpus {
            topology.add_duplex(
                NodeId(0),
                NodeId(i),
                LinkKind::HostPcie.achieved_bandwidth(),
                LinkKind::HostPcie.latency_s(),
            );
        }
        for server in 0..nodes {
            let nic = NodeId(nic_base + server);
            let first = 1 + server * gpus_per_node;
            // Intra-server NVSwitch.
            for a in first..first + gpus_per_node {
                for b in (a + 1)..first + gpus_per_node {
                    topology.add_duplex(
                        NodeId(a),
                        NodeId(b),
                        intra.achieved_bandwidth(),
                        intra.latency_s(),
                    );
                }
                // Each GPU reaches the server NIC at the inter-node rate.
                topology.add_duplex(NodeId(a), nic, inter_bandwidth, inter_latency_s);
            }
            // NIC uplink to the spine (shared by the server's GPUs).
            topology.add_duplex(nic, spine, inter_bandwidth, inter_latency_s);
        }
        topology.set_transit(NodeId(0), false);
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// A leaf/spine fat-tree cluster: GPUs in groups of `gpus_per_leaf`
    /// under leaf switches, all leaves under one spine, plus host PCIe
    /// uplinks to every GPU. GPU-to-leaf links run at `link_bandwidth`
    /// bytes/s with `link_latency_s` propagation; leaf-to-spine uplinks
    /// at `link_bandwidth * gpus_per_leaf / oversubscription` (set
    /// `oversubscription = 1.0` for non-blocking). Node layout: host 0,
    /// GPUs `1..=gpus`, then leaves, then the spine.
    ///
    /// An oversubscribed fat tree is where the packet fidelity tier
    /// earns its keep: cross-leaf collectives funnel into thin uplinks,
    /// queues build, and flow-vs-packet divergence becomes measurable.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is not a positive multiple of `gpus_per_leaf`
    /// or `oversubscription < 1`.
    pub fn fat_tree(
        gpu: GpuModel,
        gpus: usize,
        gpus_per_leaf: usize,
        link_bandwidth: f64,
        link_latency_s: f64,
        oversubscription: f64,
        name: impl Into<String>,
    ) -> Self {
        assert!(
            gpus > 0 && gpus_per_leaf > 0 && gpus.is_multiple_of(gpus_per_leaf),
            "gpus must be a positive multiple of gpus_per_leaf"
        );
        assert!(oversubscription >= 1.0, "oversubscription must be >= 1");
        let leaves = gpus / gpus_per_leaf;
        let leaf = |i: usize| NodeId(1 + gpus + i);
        let spine = NodeId(1 + gpus + leaves);
        let uplink = link_bandwidth * gpus_per_leaf as f64 / oversubscription;
        let mut topology = Topology::new(1 + gpus + leaves + 1);
        for i in 1..=gpus {
            topology.add_duplex(
                NodeId(0),
                NodeId(i),
                LinkKind::HostPcie.achieved_bandwidth(),
                LinkKind::HostPcie.latency_s(),
            );
            topology.add_duplex(
                NodeId(i),
                leaf((i - 1) / gpus_per_leaf),
                link_bandwidth,
                link_latency_s,
            );
        }
        for l in 0..leaves {
            topology.add_duplex(leaf(l), spine, uplink, link_latency_s);
        }
        topology.set_transit(NodeId(0), false);
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// Wraps an arbitrary topology. The topology must follow the node
    /// convention (node 0 = host, nodes `1..=gpus` = GPUs; extra nodes may
    /// be switches).
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than `gpus + 1` nodes.
    pub fn custom(gpu: GpuModel, gpus: usize, topology: Topology, name: impl Into<String>) -> Self {
        assert!(
            topology.node_count() > gpus,
            "topology must contain the host plus {gpus} GPU nodes"
        );
        Platform {
            name: name.into(),
            gpu,
            gpu_count: gpus,
            topology,
        }
    }

    /// Platform name (P1/P2/P3 or custom).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GPU model installed.
    pub fn gpu(&self) -> GpuModel {
        self.gpu
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpu_count
    }

    /// The interconnect graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The network node of GPU `i` (0-based GPU index).
    ///
    /// # Panics
    ///
    /// Panics if `i >= gpu_count`.
    pub fn gpu_node(&self, i: usize) -> NodeId {
        assert!(i < self.gpu_count, "GPU index {i} out of range");
        NodeId(1 + i)
    }

    /// The host (CPU) node.
    pub fn host_node(&self) -> NodeId {
        NodeId(0)
    }

    /// Returns a copy whose GPU-fabric link bandwidths are scaled by the
    /// per-link factors produced by `factor` (called once per directed
    /// link between GPU nodes). Used by the Hop case study to inject
    /// heterogeneous slowdowns.
    pub fn with_scaled_gpu_links(&self, mut factor: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let mut topo = self.topology.clone();
        let links: Vec<_> = (0..topo.link_count())
            .map(triosim_network::LinkId)
            .collect();
        for l in links {
            let (a, b) = topo.endpoints(l);
            if a != self.host_node() && b != self.host_node() {
                let f = factor(a, b);
                topo.scale_bandwidth(l, f);
            }
        }
        Platform {
            name: format!("{}-hetero", self.name),
            gpu: self.gpu,
            gpu_count: self.gpu_count,
            topology: topo,
        }
    }
}

impl std::str::FromStr for Platform {
    type Err = String;

    /// Parses the CLI/sweep-spec syntax:
    /// `p1 | p2[:N] | p3 | ring:GPU:N | pcie:GPU:N | fat:GPU:N[:O]`.
    ///
    /// `fat` builds a 2-GPUs-per-leaf fat tree with 25 GB/s links, 5 µs
    /// latency, and oversubscription `O` (default 4).
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let num = |s: &str| -> Result<usize, String> {
            s.parse()
                .map_err(|e| format!("invalid GPU count `{s}`: {e}"))
        };
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["p1"] => Ok(Platform::p1()),
            ["p2"] => Ok(Platform::p2(4)),
            ["p2", n] => Ok(Platform::p2(num(n)?)),
            ["p3"] => Ok(Platform::p3()),
            ["ring", gpu, n] => Ok(Platform::ring(
                GpuModel::from_str(gpu)?,
                num(n)?,
                LinkKind::NvLink3,
                format!("ring-{n}"),
            )),
            ["pcie", gpu, n] => Ok(Platform::pcie(
                GpuModel::from_str(gpu)?,
                num(n)?,
                format!("pcie-{n}"),
            )),
            ["fat", gpu, n] | ["fat", gpu, n, _] => {
                let oversub = match parts.as_slice() {
                    ["fat", _, _, o] => o
                        .parse::<f64>()
                        .map_err(|e| format!("invalid oversubscription `{o}`: {e}"))?,
                    _ => 4.0,
                };
                Ok(Platform::fat_tree(
                    GpuModel::from_str(gpu)?,
                    num(n)?,
                    2,
                    25e9,
                    5e-6,
                    oversub,
                    format!("fat-{n}"),
                ))
            }
            _ => Err(format!(
                "unknown platform `{spec}` (try p1, p2:4, p3, ring:A100:8, pcie:A40:2, fat:A100:4)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_is_two_a40_over_pcie() {
        let p = Platform::p1();
        assert_eq!(p.gpu_count(), 2);
        assert_eq!(p.gpu(), GpuModel::A40);
        // GPU-GPU crosses the host: 2 hops.
        let r = p.topology().route(p.gpu_node(0), p.gpu_node(1)).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn p2_is_direct_nvlink() {
        let p = Platform::p2(4);
        let r = p.topology().route(p.gpu_node(0), p.gpu_node(3)).unwrap();
        assert_eq!(r.len(), 1, "NVSwitch is single-hop");
        let bw = p.topology().bandwidth(r[0]);
        assert!(bw > 100e9, "NVLink-class bandwidth, got {bw}");
    }

    #[test]
    fn p3_has_eight_h100() {
        let p = Platform::p3();
        assert_eq!(p.gpu_count(), 8);
        assert_eq!(p.gpu(), GpuModel::H100);
    }

    #[test]
    fn host_reaches_every_gpu() {
        for p in [Platform::p1(), Platform::p2(4), Platform::p3()] {
            for i in 0..p.gpu_count() {
                let r = p.topology().route(p.host_node(), p.gpu_node(i)).unwrap();
                assert_eq!(r.len(), 1, "host uplink is direct");
            }
        }
    }

    #[test]
    fn ring_platform_wraps() {
        let p = Platform::ring(GpuModel::A100, 8, LinkKind::NvLink3, "ring8");
        let r = p.topology().route(p.gpu_node(0), p.gpu_node(7)).unwrap();
        assert_eq!(r.len(), 1, "ring neighbours");
        let r = p.topology().route(p.gpu_node(0), p.gpu_node(4)).unwrap();
        assert_eq!(r.len(), 4, "across the ring");
    }

    #[test]
    fn scaled_links_spare_host_uplinks() {
        let p = Platform::p2(2);
        let slowed = p.with_scaled_gpu_links(|_, _| 0.1);
        // GPU-GPU link slowed 10x.
        let r = slowed
            .topology()
            .route(slowed.gpu_node(0), slowed.gpu_node(1))
            .unwrap();
        let orig = p.topology().route(p.gpu_node(0), p.gpu_node(1)).unwrap();
        assert!(
            (slowed.topology().bandwidth(r[0]) - 0.1 * p.topology().bandwidth(orig[0])).abs() < 1.0
        );
        // Host uplink untouched.
        let hr = slowed
            .topology()
            .route(slowed.host_node(), slowed.gpu_node(0))
            .unwrap();
        let ho = p.topology().route(p.host_node(), p.gpu_node(0)).unwrap();
        assert_eq!(
            slowed.topology().bandwidth(hr[0]),
            p.topology().bandwidth(ho[0])
        );
    }

    #[test]
    fn multi_node_routing_hierarchy() {
        let p = Platform::multi_node(
            GpuModel::A100,
            2,
            4,
            LinkKind::NvLink3,
            25e9,
            5e-6,
            "cluster",
        );
        assert_eq!(p.gpu_count(), 8);
        // Intra-server: 1 NVLink hop.
        let intra = p.topology().route(p.gpu_node(0), p.gpu_node(3)).unwrap();
        assert_eq!(intra.len(), 1);
        assert!(p.topology().bandwidth(intra[0]) > 100e9);
        // Cross-server: gpu -> NIC -> spine -> NIC -> gpu.
        let inter = p.topology().route(p.gpu_node(0), p.gpu_node(4)).unwrap();
        assert_eq!(inter.len(), 4);
        assert!((p.topology().bandwidth(inter[0]) - 25e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpu_node_bounds_checked() {
        Platform::p1().gpu_node(2);
    }

    #[test]
    fn fat_tree_oversubscribes_uplinks() {
        let p = Platform::fat_tree(GpuModel::A100, 4, 2, 25e9, 5e-6, 4.0, "fat4");
        assert_eq!(p.gpu_count(), 4);
        // Same leaf: gpu -> leaf -> gpu.
        let same = p.topology().route(p.gpu_node(0), p.gpu_node(1)).unwrap();
        assert_eq!(same.len(), 2);
        // Cross leaf: gpu -> leaf -> spine -> leaf -> gpu, through a
        // 2 x 25 / 4 = 12.5 GB/s uplink.
        let cross = p.topology().route(p.gpu_node(0), p.gpu_node(3)).unwrap();
        assert_eq!(cross.len(), 4);
        assert!((p.topology().bandwidth(cross[0]) - 25e9).abs() < 1.0);
        assert!((p.topology().bandwidth(cross[1]) - 12.5e9).abs() < 1.0);
        // The host never transits GPU traffic.
        assert!(!cross
            .iter()
            .any(|&l| { matches!(p.topology().endpoints(l), (NodeId(0), _) | (_, NodeId(0))) }));
    }

    #[test]
    fn fat_spec_parses_with_default_oversubscription() {
        use std::str::FromStr;
        let p = Platform::from_str("fat:A100:4").unwrap();
        assert_eq!(p.gpu_count(), 4);
        assert_eq!(p.gpu(), GpuModel::A100);
        let cross = p.topology().route(p.gpu_node(0), p.gpu_node(3)).unwrap();
        // Default oversubscription 4: uplink = 2 x 25 / 4 GB/s.
        assert!((p.topology().bandwidth(cross[1]) - 12.5e9).abs() < 1.0);
        let p2 = Platform::from_str("fat:A100:4:1").unwrap();
        let cross2 = p2.topology().route(p2.gpu_node(0), p2.gpu_node(3)).unwrap();
        assert!((p2.topology().bandwidth(cross2[1]) - 50e9).abs() < 1.0);
        assert!(Platform::from_str("fat:A100").is_err());
    }
}
