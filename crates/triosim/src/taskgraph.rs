//! The extrapolated multi-GPU execution: a task DAG.
//!
//! The trace extrapolator (§4.3) converts the single-GPU trace into
//! per-GPU computation and communication work. We represent the result as
//! an explicit task graph: compute tasks bind to one GPU's (serial)
//! compute stream; transfer tasks go to the network model and may overlap
//! freely with compute — exactly the PyTorch execution model, where NCCL
//! runs on its own stream.

use triosim_des::TimeSpan;
use triosim_network::NodeId;

/// Index of a task within its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// What a task does.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Run on GPU `gpu`'s compute stream for `duration`.
    Compute {
        /// 0-based GPU index.
        gpu: usize,
        /// Predicted execution time.
        duration: TimeSpan,
    },
    /// Move `bytes` from network node `src` to `dst`.
    Transfer {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// A zero-duration synchronization point (collective step barrier).
    Barrier,
}

/// One node of the task DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable label (surfaces in the timeline output).
    pub label: String,
    /// The work.
    pub kind: TaskKind,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
    /// Model layer this task belongs to, when applicable (drives the
    /// per-layer time breakdown of §4.1).
    pub layer: Option<usize>,
}

/// Metadata describing one collective operation lowered into the graph.
///
/// The extrapolator registers one entry per collective it emits; the
/// executor uses the `first`/`last` task ids to reconstruct a single
/// span per collective (tagged with algorithm, payload, and
/// participants) for the observability layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveMeta {
    /// The label prefix shared by the collective's tasks
    /// (e.g. `ddp.bucket3.allreduce`).
    pub label: String,
    /// Algorithm tag (e.g. `allreduce`, `allgather`, `p2p`).
    pub algorithm: &'static str,
    /// Logical payload size being reduced/gathered, in bytes.
    pub payload_bytes: u64,
    /// Number of participating ranks.
    pub participants: usize,
    /// Number of synchronous communication steps.
    pub steps: usize,
    /// The collective's first transfer task.
    pub first: TaskId,
    /// The collective's final barrier (completion marker).
    pub last: TaskId,
}

/// The extrapolated multi-GPU execution plan.
///
/// # Example
///
/// ```rust
/// use triosim::{TaskGraph, TaskKind};
/// use triosim_des::TimeSpan;
///
/// let mut g = TaskGraph::new(2);
/// let a = g.compute("fwd@0", 0, TimeSpan::from_millis(1.0), vec![]);
/// let b = g.compute("fwd@1", 1, TimeSpan::from_millis(1.0), vec![]);
/// let done = g.barrier("sync", vec![a, b]);
/// assert_eq!(g.len(), 3);
/// # let _ = done;
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    gpus: usize,
    tasks: Vec<Task>,
    collectives: Vec<CollectiveMeta>,
}

impl TaskGraph {
    /// Creates an empty graph for a `gpus`-GPU execution.
    pub fn new(gpus: usize) -> Self {
        TaskGraph {
            gpus,
            tasks: Vec::new(),
            collectives: Vec::new(),
        }
    }

    /// Number of GPUs the plan targets.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Adds an arbitrary task.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a not-yet-added task (the graph
    /// is built in topological order by construction) or a compute task
    /// names a GPU out of range.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len());
        for d in &task.deps {
            assert!(d.0 < id.0, "dependency {d:?} added after dependent task");
        }
        if let TaskKind::Compute { gpu, .. } = task.kind {
            assert!(gpu < self.gpus, "GPU {gpu} out of range");
        }
        self.tasks.push(task);
        id
    }

    /// Adds a compute task.
    pub fn compute(
        &mut self,
        label: impl Into<String>,
        gpu: usize,
        duration: TimeSpan,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.push(Task {
            label: label.into(),
            kind: TaskKind::Compute { gpu, duration },
            deps,
            layer: None,
        })
    }

    /// Adds a compute task attributed to a model layer.
    pub fn compute_in_layer(
        &mut self,
        label: impl Into<String>,
        gpu: usize,
        duration: TimeSpan,
        deps: Vec<TaskId>,
        layer: usize,
    ) -> TaskId {
        self.push(Task {
            label: label.into(),
            kind: TaskKind::Compute { gpu, duration },
            deps,
            layer: Some(layer),
        })
    }

    /// Adds a transfer task.
    pub fn transfer(
        &mut self,
        label: impl Into<String>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.push(Task {
            label: label.into(),
            kind: TaskKind::Transfer { src, dst, bytes },
            deps,
            layer: None,
        })
    }

    /// Adds a zero-cost barrier joining `deps`.
    pub fn barrier(&mut self, label: impl Into<String>, deps: Vec<TaskId>) -> TaskId {
        self.push(Task {
            label: label.into(),
            kind: TaskKind::Barrier,
            deps,
            layer: None,
        })
    }

    /// Registers collective metadata for a group of already-added tasks.
    ///
    /// # Panics
    ///
    /// Panics if the `first`/`last` task ids are out of range or out of
    /// order — the extrapolator registers a collective only after
    /// emitting all of its tasks.
    pub fn register_collective(&mut self, meta: CollectiveMeta) {
        assert!(
            meta.first <= meta.last && meta.last.0 < self.tasks.len(),
            "collective {:?} references tasks outside the graph",
            meta.label
        );
        self.collectives.push(meta);
    }

    /// Collectives lowered into this graph, in emission order.
    pub fn collectives(&self) -> &[CollectiveMeta] {
        &self.collectives
    }

    /// Total bytes moved by all transfer tasks.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| match t.kind {
                TaskKind::Transfer { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total compute time across all GPUs (serial sum, not critical
    /// path).
    pub fn total_compute_time(&self) -> TimeSpan {
        self.tasks
            .iter()
            .map(|t| match t.kind {
                TaskKind::Compute { duration, .. } => duration,
                _ => TimeSpan::ZERO,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_topological_order() {
        let mut g = TaskGraph::new(1);
        let a = g.compute("a", 0, TimeSpan::from_millis(1.0), vec![]);
        let b = g.compute("b", 0, TimeSpan::from_millis(1.0), vec![a]);
        assert_eq!(g.tasks()[b.0].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "added after dependent")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new(1);
        g.push(Task {
            label: "bad".into(),
            kind: TaskKind::Barrier,
            deps: vec![TaskId(5)],
            layer: None,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpu_bounds_checked() {
        let mut g = TaskGraph::new(2);
        g.compute("x", 2, TimeSpan::ZERO, vec![]);
    }

    #[test]
    fn collective_registry_tracks_bounds() {
        let mut g = TaskGraph::new(2);
        let t = g.transfer("ar.s0.0->1", NodeId(0), NodeId(1), 64, vec![]);
        let b = g.barrier("ar.done", vec![t]);
        g.register_collective(CollectiveMeta {
            label: "ar".into(),
            algorithm: "allreduce",
            payload_bytes: 64,
            participants: 2,
            steps: 1,
            first: t,
            last: b,
        });
        assert_eq!(g.collectives().len(), 1);
        assert_eq!(g.collectives()[0].algorithm, "allreduce");
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn collective_registry_rejects_dangling_ids() {
        let mut g = TaskGraph::new(1);
        g.register_collective(CollectiveMeta {
            label: "bad".into(),
            algorithm: "allreduce",
            payload_bytes: 0,
            participants: 1,
            steps: 0,
            first: TaskId(0),
            last: TaskId(3),
        });
    }

    #[test]
    fn aggregates() {
        let mut g = TaskGraph::new(2);
        g.compute("a", 0, TimeSpan::from_millis(2.0), vec![]);
        g.transfer("t", NodeId(1), NodeId(2), 100, vec![]);
        g.transfer("t2", NodeId(2), NodeId(1), 50, vec![]);
        assert_eq!(g.total_transfer_bytes(), 150);
        assert_eq!(g.total_compute_time(), TimeSpan::from_millis(2.0));
        assert!(!g.is_empty());
    }
}
