//! Deterministic mid-run checkpoint/restore.
//!
//! A snapshot captures the complete engine state at a *quiescent
//! iteration boundary* — the instant between two training iterations
//! when the event queue is drained, no flow is in flight, and any
//! pending monitor-tick or fault-arming event has been cancelled (the
//! same boundaries the sharded executor proved are clean cut points).
//! At such a boundary the entire simulation reduces to accumulated
//! counters and records: virtual clock, queue statistics, per-GPU busy
//! time, communication intervals, attribution buckets, network link
//! state, and the fault runtime's cursor and counters. Nothing
//! event-shaped needs to be serialized, which is what makes
//! byte-identical resumption possible: a restored run re-arms its
//! monitor tick and next fault exactly the way an uninterrupted run
//! re-arms them after the boundary cancellation in `run_once`.
//!
//! Snapshot size stays proportional to the iteration count, not the
//! event count: communication intervals are stored as their *merged
//! union* (interval union is associative and idempotent, so the final
//! `comm_time_s` is bit-identical), and the per-event timeline is
//! carried as a fixed-size running digest — record count plus the
//! FNV-1a state of the canonical sorted fold — rather than as records.
//! Iterations occupy disjoint, ordered spans of virtual time, so the
//! canonical `(start, end)` sort of the whole run is the concatenation
//! of each iteration's sorted segment, and the sequential fold resumes
//! from the stored state to reproduce `timeline_hash` exactly. The one
//! observable consequence: a *restored* run's timeline *export* (e.g.
//! the Chrome trace) covers only post-restore iterations.
//!
//! # File format
//!
//! One line of JSON, self-describing and versioned:
//!
//! ```json
//! {"checkpoint":"triosim-sim","version":1,"spec_hash":"<hex016>",
//!  "completed":K,"state":{...}}
//! ```
//!
//! `spec_hash` is an FNV-1a fingerprint of everything that determines
//! the engine's trajectory — task graph content, network model
//! configuration, fault plan (post-seed), and deterministic budget axes
//! — but deliberately **excludes** the iteration count, shard count,
//! and wall-clock timeout: the state at boundary `K` is independent of
//! how many further iterations the run intends, so a snapshot taken by
//! a short run restores into a longer one (and vice versa).
//!
//! # Crash safety
//!
//! Snapshots are written to a `.tmp` sibling, flushed, fsynced, and
//! atomically renamed over the target — a reader never observes a torn
//! snapshot, only the previous complete one or the new complete one.
//! Restoring against a mismatched spec hash, a future format version,
//! or malformed bytes is a typed [`CheckpointError`], never undefined
//! behavior.

use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};
use triosim_des::{BudgetProgress, QueueStats, RunBudget, TimeSpan, VirtualTime};
use triosim_faults::FaultPlan;
use triosim_network::{NetCheckpoint, NetworkModel};
use triosim_obs::AttributionState;

use crate::taskgraph::{TaskGraph, TaskKind};

/// Magic string identifying a TrioSim simulation snapshot.
pub(crate) const SNAPSHOT_MAGIC: &str = "triosim-sim";
/// Current snapshot format version. Readers reject anything else with
/// [`CheckpointError::UnsupportedVersion`].
pub(crate) const SNAPSHOT_VERSION: u64 = 1;

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The snapshot file could not be read or written.
    Io(String),
    /// The snapshot file exists but its bytes are not a valid snapshot
    /// (bad JSON, wrong magic, missing fields, or state that fails
    /// structural validation against the scenario).
    Corrupt(String),
    /// The snapshot was taken under a different scenario specification
    /// (different graph, network, fault plan, or deterministic budget).
    SpecMismatch {
        /// The hash of the scenario being restored into.
        expected: u64,
        /// The hash recorded in the snapshot.
        found: u64,
    },
    /// The snapshot uses a format version this build does not know.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u64,
        /// The single version this build supports.
        supported: u64,
    },
    /// The scenario cannot be checkpointed (e.g. its network model does
    /// not expose snapshot state).
    Unsupported(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "snapshot i/o failed: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            CheckpointError::SpecMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different scenario (spec hash {found:016x}, \
                 this run is {expected:016x})"
            ),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 version {supported})"
            ),
            CheckpointError::Unsupported(msg) => write!(f, "cannot checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One ongoing link outage, keyed by the directed link's endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub(crate) struct OutageState {
    /// Source node of the failed link.
    pub src: u64,
    /// Destination node of the failed link.
    pub dst: u64,
    /// When the outage began.
    pub since: VirtualTime,
}

/// Fault-runtime position at a quiescent boundary.
///
/// At every boundary the pending fault-arming event has been cancelled
/// (exactly as in an uninterrupted run), so the runtime reduces to the
/// plan cursor plus fired-fault accounting. The restored run re-arms
/// fault `cursor` at `max(at_s, boundary)` — the same instant the
/// uninterrupted run re-arms it after its own boundary cancellation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub(crate) struct FaultState {
    /// Index of the first not-yet-fired timed fault in the sorted plan.
    pub cursor: u64,
    /// Timed faults fired so far.
    pub injected: u64,
    /// Fired faults by kind (degrade, fail, repair, gpu-drop).
    pub injected_by_kind: Vec<u64>,
    /// Per-GPU seconds of compute added by slowdown/jitter dilation,
    /// stored as `f64::to_bits` for bit-exact round-trips.
    pub lost_compute_bits: Vec<u64>,
    /// Link outages open at the boundary, sorted by `(src, dst)`.
    pub outages: Vec<OutageState>,
}

/// Accumulated engine state at a quiescent iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ExecutorState {
    /// Virtual clock at the boundary.
    pub now: VirtualTime,
    /// Event-queue statistics (scheduled/delivered/cancelled/...).
    pub queue: QueueStats,
    /// Event-dispatch counters by kind (compute, flow, tick, fault).
    pub dispatches: Vec<u64>,
    /// Per-GPU accumulated busy time.
    pub gpu_busy: Vec<TimeSpan>,
    /// Communication intervals, stored as their merged union (sorted,
    /// disjoint) — the union is associative, so the final report's
    /// `comm_time_s` is unchanged while the snapshot stays small.
    pub comm_intervals: Vec<(VirtualTime, VirtualTime)>,
    /// Timeline records completed so far (they are not serialized —
    /// only this count and the digest below survive a restore).
    pub timeline_count: u64,
    /// Running FNV-1a state of the canonical sorted timeline fold over
    /// those records; seeds the restored run's `timeline_hash`.
    pub timeline_fnv: u64,
    /// Total bytes moved across the network.
    pub bytes_transferred: u64,
    /// Iteration-end timestamps for iterations `0..completed`.
    pub iter_ends: Vec<VirtualTime>,
    /// Deterministic budget progress (delivered-event count).
    pub budget: BudgetProgress,
    /// Critical-path attribution accumulators.
    pub attr: AttributionState,
    /// Network model state (counters plus per-link bandwidth/up/stats).
    pub net: NetCheckpoint,
    /// Fault runtime, present iff the run has a non-empty fault plan.
    pub faults: Option<FaultState>,
}

/// A complete, versioned snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SimSnapshot {
    /// Magic: always [`SNAPSHOT_MAGIC`].
    pub checkpoint: String,
    /// Format version: always [`SNAPSHOT_VERSION`] when written by this
    /// build.
    pub version: u64,
    /// Scenario fingerprint as a zero-padded 16-digit hex string.
    pub spec_hash: String,
    /// Number of iterations fully completed at the boundary.
    pub completed: u64,
    /// The engine state itself.
    pub state: ExecutorState,
}

impl SimSnapshot {
    /// Parses the header's hex spec hash back into the `u64` it encodes.
    pub(crate) fn parsed_spec_hash(&self) -> Result<u64, CheckpointError> {
        u64::from_str_radix(&self.spec_hash, 16).map_err(|_| {
            CheckpointError::Corrupt(format!(
                "spec_hash `{}` is not 16 hex digits",
                self.spec_hash
            ))
        })
    }
}

/// Live checkpointing configuration threaded into the executor.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointConfig {
    /// Snapshot target path (atomically replaced at each boundary write).
    pub path: PathBuf,
    /// Write a snapshot after every `every` completed iterations.
    pub every: usize,
    /// Scenario fingerprint stamped into each snapshot header.
    pub spec_hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv(hash, &value.to_le_bytes())
}

/// Fingerprints everything that determines the engine's trajectory:
/// task-graph content, network configuration, fault plan (after seed
/// resolution), and the budget's deterministic axes. Excludes iteration
/// count, shard count, and wall-clock timeout — engine state at a
/// boundary is independent of all three.
pub(crate) fn spec_hash(
    graph: &TaskGraph,
    network: &dyn NetworkModel,
    plan: &FaultPlan,
    budget: &RunBudget,
) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, graph.gpus() as u64);
    h = fnv_u64(h, graph.len() as u64);
    for task in graph.tasks() {
        h = fnv(h, task.label.as_bytes());
        match &task.kind {
            TaskKind::Compute { gpu, duration } => {
                h = fnv_u64(h, 1);
                h = fnv_u64(h, *gpu as u64);
                h = fnv_u64(h, duration.as_femtos());
            }
            TaskKind::Transfer { src, dst, bytes } => {
                h = fnv_u64(h, 2);
                h = fnv_u64(h, src.0 as u64);
                h = fnv_u64(h, dst.0 as u64);
                h = fnv_u64(h, *bytes);
            }
            TaskKind::Barrier => h = fnv_u64(h, 3),
        }
        for dep in &task.deps {
            h = fnv_u64(h, dep.0 as u64);
        }
        h = fnv_u64(h, task.layer.map_or(0, |l| 1 + l as u64));
    }
    h = fnv_u64(h, network.spec_fingerprint());
    h = fnv(h, plan.to_json().as_bytes());
    h = fnv_u64(h, budget.deterministic_fingerprint());
    h
}

/// Sibling path the atomic writer stages into before renaming.
fn staging_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes `snap` crash-safely: serialize to one JSON line, write to a
/// `.tmp` sibling, flush, fsync, then atomically rename over `path`.
pub(crate) fn write_snapshot(path: &Path, snap: &SimSnapshot) -> Result<(), CheckpointError> {
    let line = serde_json::to_string(snap)
        .map_err(|e| CheckpointError::Corrupt(format!("snapshot failed to serialize: {e}")))?;
    let tmp = staging_path(path);
    let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", tmp.display()));
    let mut file = File::create(&tmp).map_err(io)?;
    file.write_all(line.as_bytes()).map_err(io)?;
    file.write_all(b"\n").map_err(io)?;
    file.flush().map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| {
        CheckpointError::Io(format!(
            "renaming {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Reads and structurally validates a snapshot file. Magic and version
/// are checked before the typed parse so a future-format file fails
/// with [`CheckpointError::UnsupportedVersion`] rather than a confusing
/// field error. The caller still owns spec-hash and scenario-shape
/// validation.
pub(crate) fn read_snapshot(path: &Path) -> Result<SimSnapshot, CheckpointError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    let v: Value = serde_json::from_str(text.trim_end())
        .map_err(|e| CheckpointError::Corrupt(format!("not valid JSON: {e}")))?;
    match v.get("checkpoint") {
        Some(Value::Str(magic)) if magic == SNAPSHOT_MAGIC => {}
        Some(other) => {
            return Err(CheckpointError::Corrupt(format!(
                "magic is {other:?}, expected \"{SNAPSHOT_MAGIC}\""
            )))
        }
        None => {
            return Err(CheckpointError::Corrupt(
                "missing `checkpoint` magic field".to_string(),
            ))
        }
    }
    let version: u64 = match v.get("version").map(u64::from_value) {
        Some(Ok(n)) => n,
        _ => {
            return Err(CheckpointError::Corrupt(
                "missing or non-integer `version` field".to_string(),
            ))
        }
    };
    if version != SNAPSHOT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    SimSnapshot::from_value(&v).map_err(|e| CheckpointError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "triosim-ckpt-{tag}-{}-{n}.json",
            std::process::id()
        ))
    }

    fn snapshot() -> SimSnapshot {
        SimSnapshot {
            checkpoint: SNAPSHOT_MAGIC.to_string(),
            version: SNAPSHOT_VERSION,
            spec_hash: format!("{:016x}", 0xdead_beef_u64),
            completed: 3,
            state: ExecutorState {
                now: VirtualTime::from_femtos(42),
                queue: QueueStats::default(),
                dispatches: vec![1, 2, 3, 4],
                gpu_busy: vec![TimeSpan::from_femtos(7); 2],
                comm_intervals: vec![(VirtualTime::from_femtos(1), VirtualTime::from_femtos(2))],
                timeline_count: 6,
                timeline_fnv: 0x1234_5678_9abc_def0,
                bytes_transferred: 99,
                iter_ends: vec![VirtualTime::from_femtos(42)],
                budget: BudgetProgress { events: 10 },
                attr: AttributionState::default(),
                net: NetCheckpoint::default(),
                faults: Some(FaultState {
                    cursor: 1,
                    injected: 1,
                    injected_by_kind: vec![1, 0, 0, 0],
                    lost_compute_bits: vec![0.5_f64.to_bits(), 0],
                    outages: vec![OutageState {
                        src: 0,
                        dst: 1,
                        since: VirtualTime::from_femtos(5),
                    }],
                }),
            },
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let path = temp_path("roundtrip");
        let snap = snapshot();
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.parsed_spec_hash().unwrap(), 0xdead_beef);
        assert!(
            !staging_path(&path).exists(),
            "staging file is renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let path = temp_path("future");
        let mut snap = snapshot();
        snap.version = SNAPSHOT_VERSION + 41;
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(
            read_snapshot(&path),
            Err(CheckpointError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 41,
                supported: SNAPSHOT_VERSION,
            })
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_garbage_are_corrupt() {
        let path = temp_path("garbage");
        std::fs::write(&path, "{\"checkpoint\":\"not-triosim\",\"version\":1}\n").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::write(&path, "{\"version\"").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        let path = temp_path("missing");
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn displays_name_the_cause() {
        let e = CheckpointError::SpecMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("different scenario"));
        let e = CheckpointError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}
