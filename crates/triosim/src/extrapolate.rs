//! The multi-GPU trace extrapolator (§4.3 of the paper).
//!
//! Converts a single-GPU trace into a multi-GPU execution plan according
//! to the parallelism strategy, inserting data-movement operators (host
//! input transfers, pipeline activation sends) and NCCL-style collective
//! communication (ring AllReduce / AllGather) where tensors are not local
//! to the GPU that needs them.
//!
//! The original extrapolates lazily while simulating; we build the full
//! task DAG eagerly — semantically identical for these workloads (the
//! plan does not depend on simulated times), and it keeps the executor a
//! clean, separately testable component.

use triosim_collectives::{
    halving_doubling_all_reduce, ring_all_gather, ring_all_reduce, ring_all_reduce_unsegmented,
    tree_all_reduce, CollectiveSchedule, GradientBucketizer,
};
use triosim_des::TimeSpan;
use triosim_modelzoo::{OpClass, Operator};
use triosim_trace::{Trace, TraceEntry};

use crate::compute::ComputeModel;
use crate::layers::{summarize_layers, LayerSummary};
use crate::parallelism::{CollectiveStyle, Parallelism};
use crate::platform::Platform;
use crate::taskgraph::{CollectiveMeta, TaskGraph, TaskId};

/// Extrapolates a single-GPU `trace` onto `platform` under `parallelism`.
///
/// `global_batch` is the total mini-batch per iteration:
/// * data parallelism — each GPU processes `global_batch / gpus` samples;
/// * tensor parallelism — every GPU participates in the same
///   `global_batch` samples;
/// * pipeline parallelism — the mini-batch is `global_batch`, split into
///   the configured number of micro-batches.
///
/// `compute` decides operator times (trace pass-through, Li's-Model
/// rescale, cross-GPU, or the reference oracle).
///
/// # Panics
///
/// Panics if `global_batch` is zero or not compatible with the GPU count
/// / chunk count (each share must be at least one sample).
pub fn extrapolate(
    trace: &Trace,
    platform: &Platform,
    parallelism: Parallelism,
    global_batch: u64,
    compute: &ComputeModel,
) -> TaskGraph {
    extrapolate_with_style(
        trace,
        platform,
        parallelism,
        global_batch,
        compute,
        CollectiveStyle::Segmented,
    )
}

/// [`extrapolate`] with an explicit AllReduce style (the wafer-scale case
/// study uses [`CollectiveStyle::Unsegmented`]).
///
/// # Panics
///
/// Same conditions as [`extrapolate`].
pub fn extrapolate_with_style(
    trace: &Trace,
    platform: &Platform,
    parallelism: Parallelism,
    global_batch: u64,
    compute: &ComputeModel,
    style: CollectiveStyle,
) -> TaskGraph {
    assert!(global_batch > 0, "global batch must be positive");
    let layers = summarize_layers(trace);
    let ex = Extrapolator {
        trace,
        platform,
        compute,
        layers,
        style,
    };
    match parallelism {
        Parallelism::DataParallel { overlap } => ex.data_parallel(global_batch, overlap),
        Parallelism::TensorParallel => ex.tensor_parallel(global_batch),
        Parallelism::Pipeline { chunks } => ex.pipeline(global_batch, chunks),
        Parallelism::Hybrid { dp_groups, chunks } => ex.hybrid(global_batch, dp_groups, chunks),
    }
}

struct Extrapolator<'a> {
    trace: &'a Trace,
    platform: &'a Platform,
    compute: &'a ComputeModel,
    layers: Vec<LayerSummary>,
    style: CollectiveStyle,
}

impl Extrapolator<'_> {
    fn gpus(&self) -> usize {
        self.platform.gpu_count()
    }

    fn all_reduce(&self, n: usize, bytes: u64) -> CollectiveSchedule {
        match self.style {
            CollectiveStyle::Segmented => ring_all_reduce(n, bytes),
            CollectiveStyle::Unsegmented => ring_all_reduce_unsegmented(n, bytes),
            CollectiveStyle::Tree => tree_all_reduce(n, bytes),
            CollectiveStyle::HalvingDoubling if n.is_power_of_two() => {
                halving_doubling_all_reduce(n, bytes)
            }
            CollectiveStyle::HalvingDoubling => ring_all_reduce(n, bytes),
        }
    }

    /// Bytes of the input batch the host ships to a GPU, at `batch`
    /// samples.
    fn input_bytes(&self, batch: u64) -> u64 {
        let first = &self.trace.entries()[0].op;
        let scaled = first.with_batch_scaled(self.trace.batch(), batch.max(1));
        scaled.bytes_in
    }

    /// Times one trace entry after rescaling its operator to `to`.
    fn op_duration(&self, entry: &TraceEntry, to: &Operator, gpu: usize) -> TimeSpan {
        let s = self.compute.op_time_s(entry.time_s, &entry.op, to, gpu);
        TimeSpan::from_seconds(s.max(0.0))
    }

    /// Appends a compute task for `entry` rescaled to batch `batch` on
    /// `gpu`, chained after `dep`.
    fn compute_task(
        &self,
        g: &mut TaskGraph,
        entry: &TraceEntry,
        batch: u64,
        gpu: usize,
        dep: Option<TaskId>,
    ) -> TaskId {
        let to = entry.op.with_batch_scaled(self.trace.batch(), batch);
        let duration = self.op_duration(entry, &to, gpu);
        g.compute_in_layer(
            format!("{}@g{}", entry.op.name, gpu),
            gpu,
            duration,
            dep.into_iter().collect(),
            entry.layer,
        )
    }

    /// Emits a collective schedule as transfer tasks with per-step
    /// barriers. `deps[r]` gates rank `r`'s first-step sends; returns the
    /// final barrier. Ranks map to GPUs 0..n in order.
    fn collective(
        &self,
        g: &mut TaskGraph,
        label: &str,
        schedule: &CollectiveSchedule,
        deps: &[TaskId],
    ) -> TaskId {
        let identity: Vec<usize> = (0..schedule.ranks()).collect();
        self.collective_mapped(g, label, schedule, deps, &identity)
    }

    /// [`collective`](Self::collective) with an explicit rank-to-GPU map
    /// (hybrid parallelism reduces gradients across the GPUs that hold
    /// the same pipeline stage in different data-parallel groups).
    fn collective_mapped(
        &self,
        g: &mut TaskGraph,
        label: &str,
        schedule: &CollectiveSchedule,
        deps: &[TaskId],
        gpu_map: &[usize],
    ) -> TaskId {
        let mut prev_step: Option<TaskId> = None;
        let mut first_send: Option<TaskId> = None;
        for (si, step) in schedule.steps().iter().enumerate() {
            let mut sends = Vec::with_capacity(step.len());
            for t in step {
                let mut task_deps: Vec<TaskId> = Vec::new();
                if let Some(b) = prev_step {
                    task_deps.push(b);
                } else if let Some(&d) = deps.get(t.src.0) {
                    task_deps.push(d);
                }
                let src = self.platform.gpu_node(gpu_map[t.src.0]);
                let dst = self.platform.gpu_node(gpu_map[t.dst.0]);
                let id = g.transfer(
                    format!("{label}.s{si}.{}->{}", t.src, t.dst),
                    src,
                    dst,
                    t.bytes,
                    task_deps,
                );
                first_send.get_or_insert(id);
                sends.push(id);
            }
            prev_step = Some(g.barrier(format!("{label}.s{si}.done"), sends));
        }
        let done = prev_step.expect("collective schedules have at least one step");
        g.register_collective(CollectiveMeta {
            label: label.to_string(),
            algorithm: schedule.kind().name(),
            payload_bytes: schedule.payload_bytes(),
            participants: schedule.ranks(),
            steps: schedule.step_count(),
            first: first_send.unwrap_or(done),
            last: done,
        });
        done
    }

    // ---------------- data parallelism ----------------

    fn data_parallel(&self, global_batch: u64, overlap: bool) -> TaskGraph {
        let n = self.gpus();
        let per_gpu = global_batch / n as u64;
        assert!(
            per_gpu >= 1,
            "global batch {global_batch} too small for {n} GPUs"
        );
        let mut g = TaskGraph::new(n);
        let host = self.platform.host_node();

        // Host ships each GPU its input slice.
        let inputs: Vec<TaskId> = (0..n)
            .map(|gpu| {
                g.transfer(
                    format!("h2d.input@g{gpu}"),
                    host,
                    self.platform.gpu_node(gpu),
                    self.input_bytes(per_gpu),
                    vec![],
                )
            })
            .collect();

        // Forward + backward chains, replicated per GPU at the per-GPU
        // batch size. Track where each layer's backward finishes.
        let mut bwd_done: Vec<Vec<Option<TaskId>>> = vec![vec![None; self.layers.len()]; n];
        let mut cursors: Vec<TaskId> = inputs.clone();
        for gpu in 0..n {
            let mut cursor = cursors[gpu];
            for l in &self.layers {
                for &ei in &l.fwd {
                    cursor = self.compute_task(
                        &mut g,
                        &self.trace.entries()[ei],
                        per_gpu,
                        gpu,
                        Some(cursor),
                    );
                }
            }
            for l in self.layers.iter().rev() {
                for &ei in &l.bwd {
                    cursor = self.compute_task(
                        &mut g,
                        &self.trace.entries()[ei],
                        per_gpu,
                        gpu,
                        Some(cursor),
                    );
                }
                bwd_done[gpu][l.index] = Some(cursor);
            }
            cursors[gpu] = cursor;
        }

        // Gradient synchronization. Inference traces (no backward ops)
        // produce no gradients: replicas are independent.
        let is_inference = self.layers.iter().all(|l| l.bwd.is_empty());
        let total_grads: u64 = self.layers.iter().map(|l| l.param_bytes).sum();
        let sync_done = if n == 1 || is_inference || total_grads == 0 {
            // Single GPU or inference: nothing to synchronize.
            g.barrier("no-sync", cursors.clone())
        } else if overlap {
            // DDP: bucketed AllReduce, each kicked off as soon as the
            // bucket's last layer finishes backward; buckets serialize on
            // the communicator.
            let grad_sizes: Vec<u64> = self.layers.iter().map(|l| l.param_bytes).collect();
            let buckets = GradientBucketizer::default().bucketize(&grad_sizes);
            let mut last = None;
            for (bi, bucket) in buckets.iter().enumerate() {
                let ready_layer = bucket.ready_after_layer();
                let mut deps: Vec<TaskId> = (0..n)
                    .map(|gpu| bwd_done[gpu][ready_layer].expect("layer has backward"))
                    .collect();
                if let Some(prev) = last {
                    deps.push(prev);
                }
                let gate = g.barrier(format!("ddp.bucket{bi}.ready"), deps);
                let sched = self.all_reduce(n, bucket.bytes);
                last = Some(self.collective(
                    &mut g,
                    &format!("ddp.bucket{bi}.allreduce"),
                    &sched,
                    &vec![gate; n],
                ));
            }
            last.unwrap_or_else(|| g.barrier("no-grads", cursors.clone()))
        } else {
            // Standard DataParallel: one AllReduce after the full
            // backward pass of every replica.
            let gate = g.barrier("dp.bwd.done", cursors.clone());
            let sched = self.all_reduce(n, total_grads);
            self.collective(&mut g, "dp.allreduce", &sched, &vec![gate; n])
        };

        // Optimizer step on every replica.
        for gpu in 0..n {
            let mut cursor = sync_done;
            for l in &self.layers {
                for &ei in &l.opt {
                    cursor = self.compute_task(
                        &mut g,
                        &self.trace.entries()[ei],
                        per_gpu,
                        gpu,
                        Some(cursor),
                    );
                }
            }
        }
        g
    }

    // ---------------- tensor parallelism ----------------

    fn tensor_parallel(&self, global_batch: u64) -> TaskGraph {
        let n = self.gpus();
        assert!(n >= 2, "tensor parallelism needs at least 2 GPUs");
        let mut g = TaskGraph::new(n);
        let host = self.platform.host_node();

        // Every GPU sees the full batch: the host broadcasts the input.
        let inputs: Vec<TaskId> = (0..n)
            .map(|gpu| {
                g.transfer(
                    format!("h2d.input@g{gpu}"),
                    host,
                    self.platform.gpu_node(gpu),
                    self.input_bytes(global_batch),
                    vec![],
                )
            })
            .collect();

        let mut cursors = inputs;

        // Forward: splittable layers shard compute then AllGather the
        // partial outputs; other layers run replicated.
        for l in &self.layers {
            #[allow(clippy::needless_range_loop)]
            for gpu in 0..n {
                let mut cursor = cursors[gpu];
                for &ei in &l.fwd {
                    let entry = &self.trace.entries()[ei];
                    let to = self.tp_shape(entry, global_batch, l.tp_splittable, n);
                    let duration = self.op_duration(entry, &to, gpu);
                    cursor = g.compute_in_layer(
                        format!("{}@g{gpu}", entry.op.name),
                        gpu,
                        duration,
                        vec![cursor],
                        entry.layer,
                    );
                }
                cursors[gpu] = cursor;
            }
            if l.tp_splittable && l.output_bytes > 0 {
                let out = scaled_bytes(l.output_bytes, self.trace.batch(), global_batch);
                let sched = ring_all_gather(n, out.max(1));
                let done = self.collective(
                    &mut g,
                    &format!("tp.l{}.allgather", l.index),
                    &sched,
                    &cursors,
                );
                cursors = vec![done; n];
            }
        }

        // Backward: mirrored; splittable layers AllReduce the gradient of
        // their input activation.
        for l in self.layers.iter().rev() {
            #[allow(clippy::needless_range_loop)]
            for gpu in 0..n {
                let mut cursor = cursors[gpu];
                for &ei in &l.bwd {
                    let entry = &self.trace.entries()[ei];
                    let to = self.tp_shape(entry, global_batch, l.tp_splittable, n);
                    let duration = self.op_duration(entry, &to, gpu);
                    cursor = g.compute_in_layer(
                        format!("{}@g{gpu}", entry.op.name),
                        gpu,
                        duration,
                        vec![cursor],
                        entry.layer,
                    );
                }
                cursors[gpu] = cursor;
            }
            if l.tp_splittable {
                let input_bytes = self
                    .layers
                    .get(l.index.wrapping_sub(1))
                    .map(|p| p.output_bytes)
                    .unwrap_or(0);
                if input_bytes > 0 {
                    let bytes = scaled_bytes(input_bytes, self.trace.batch(), global_batch);
                    let sched = ring_all_reduce(n, bytes.max(1));
                    let done = self.collective(
                        &mut g,
                        &format!("tp.l{}.grad.allreduce", l.index),
                        &sched,
                        &cursors,
                    );
                    cursors = vec![done; n];
                }
            }
        }

        // Optimizer: each GPU updates its own shard (1/n of splittable
        // layers' parameters, full copy of replicated layers).
        for l in &self.layers {
            #[allow(clippy::needless_range_loop)]
            for gpu in 0..n {
                let mut cursor = cursors[gpu];
                for &ei in &l.opt {
                    let entry = &self.trace.entries()[ei];
                    let to = if l.tp_splittable {
                        scale_op(&entry.op, 1.0 / n as f64)
                    } else {
                        entry.op.clone()
                    };
                    let duration = self.op_duration(entry, &to, gpu);
                    cursor = g.compute_in_layer(
                        format!("{}@g{gpu}", entry.op.name),
                        gpu,
                        duration,
                        vec![cursor],
                        entry.layer,
                    );
                }
                cursors[gpu] = cursor;
            }
        }
        g
    }

    /// Shapes a TP operator: batch-rescaled, and sharded 1/n if its layer
    /// splits.
    fn tp_shape(&self, entry: &TraceEntry, batch: u64, splittable: bool, n: usize) -> Operator {
        let rescaled = entry.op.with_batch_scaled(self.trace.batch(), batch);
        if splittable && shards_under_tp(entry.op.class) {
            shard_op(&rescaled, n)
        } else {
            rescaled
        }
    }

    // ---------------- pipeline parallelism ----------------

    fn pipeline(&self, mini_batch: u64, chunks: u64) -> TaskGraph {
        let n = self.gpus();
        let mut g = TaskGraph::new(n);
        let gpu_map: Vec<usize> = (0..n).collect();
        let micro = Self::micro_batch(mini_batch, chunks);
        let (stages, bwd_done) = self.build_gpipe(&mut g, micro, chunks, &gpu_map, "pp");

        // Optimizer: each stage updates its own layers once its backward
        // micro-batches are done.
        for (s, stage_layers) in stages.iter().enumerate() {
            let mut cursor = g.barrier(format!("pp.s{s}.bwd.done"), bwd_done[s].clone());
            for &li in stage_layers {
                for &ei in &self.layers[li].opt {
                    cursor = self.compute_task(
                        &mut g,
                        &self.trace.entries()[ei],
                        micro,
                        s,
                        Some(cursor),
                    );
                }
            }
        }
        g
    }

    fn micro_batch(mini_batch: u64, chunks: u64) -> u64 {
        assert!(chunks >= 1, "need at least one micro-batch");
        let micro = mini_batch / chunks;
        assert!(
            micro >= 1,
            "mini-batch {mini_batch} too small for {chunks} chunks"
        );
        micro
    }

    /// Builds one GPipe schedule over `gpu_map` (stage s runs on GPU
    /// `gpu_map[s]`). Returns the stage->layers assignment and, per
    /// stage, the completion tasks of every micro-batch's backward.
    fn build_gpipe(
        &self,
        g: &mut TaskGraph,
        micro: u64,
        chunks: u64,
        gpu_map: &[usize],
        tag: &str,
    ) -> (Vec<Vec<usize>>, Vec<Vec<TaskId>>) {
        let n = gpu_map.len();
        let stages = self.assign_stages(n);
        let host = self.platform.host_node();

        // Forward: micro-batches flow through the stages.
        // fwd_done[stage][chunk] = completion task. Each stage processes
        // its micro-batches strictly in chunk order (the GPipe schedule):
        // chunk c+1's first operator additionally depends on chunk c's
        // last — otherwise the per-GPU FIFO would round-robin the chunks
        // and delay every downstream stage until the whole stage drained.
        let mut fwd_done: Vec<Vec<Option<TaskId>>> = vec![vec![None; chunks as usize]; n];
        let mut prev_chunk: Vec<Option<TaskId>> = vec![None; n];
        let mut all_fwd: Vec<TaskId> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for c in 0..chunks as usize {
            let mut carry: Option<TaskId> = None;
            for (s, stage_layers) in stages.iter().enumerate() {
                // Activations (or host input for stage 0) arrive first.
                let arrive = if s == 0 {
                    g.transfer(
                        format!("{tag}.h2d.input.c{c}"),
                        host,
                        self.platform.gpu_node(gpu_map[0]),
                        self.input_bytes(micro),
                        vec![],
                    )
                } else {
                    let prev_out = stages[s - 1]
                        .last()
                        .map(|&li| self.layers[li].output_bytes)
                        .unwrap_or(0);
                    let bytes = scaled_bytes(prev_out, self.trace.batch(), micro).max(1);
                    g.transfer(
                        format!("{tag}.act.c{c}.s{}to{}", s - 1, s),
                        self.platform.gpu_node(gpu_map[s - 1]),
                        self.platform.gpu_node(gpu_map[s]),
                        bytes,
                        carry.into_iter().collect(),
                    )
                };
                let mut deps = vec![arrive];
                deps.extend(prev_chunk[s]);
                let gate = g.barrier(format!("{tag}.fwd.c{c}.s{s}.start"), deps);
                let mut cursor = gate;
                for &li in stage_layers {
                    for &ei in &self.layers[li].fwd {
                        cursor = self.compute_task(
                            g,
                            &self.trace.entries()[ei],
                            micro,
                            gpu_map[s],
                            Some(cursor),
                        );
                    }
                }
                fwd_done[s][c] = Some(cursor);
                prev_chunk[s] = Some(cursor);
                all_fwd.push(cursor);
                carry = Some(cursor);
            }
        }

        // GPipe flush: backward begins after every forward micro-batch
        // completes.
        let flush = g.barrier(format!("{tag}.flush"), all_fwd);

        // Backward: micro-batches drain in reverse stage order, each
        // stage again processing chunks strictly in (reverse) order.
        let mut bwd_done: Vec<Vec<Option<TaskId>>> = vec![vec![None; chunks as usize]; n];
        let mut prev_chunk: Vec<Option<TaskId>> = vec![None; n];
        for c in (0..chunks as usize).rev() {
            let mut carry: Option<TaskId> = None;
            for s in (0..n).rev() {
                let arrive = if s == n - 1 {
                    flush
                } else {
                    // Gradient of this stage's output arrives from the
                    // next stage.
                    let out_bytes = stages[s]
                        .last()
                        .map(|&li| self.layers[li].output_bytes)
                        .unwrap_or(0);
                    let bytes = scaled_bytes(out_bytes, self.trace.batch(), micro).max(1);
                    g.transfer(
                        format!("{tag}.grad.c{c}.s{}to{}", s + 1, s),
                        self.platform.gpu_node(gpu_map[s + 1]),
                        self.platform.gpu_node(gpu_map[s]),
                        bytes,
                        carry.into_iter().collect(),
                    )
                };
                let mut deps = vec![arrive];
                deps.extend(prev_chunk[s]);
                let gate = g.barrier(format!("{tag}.bwd.c{c}.s{s}.start"), deps);
                let mut cursor = gate;
                for &li in stages[s].iter().rev() {
                    for &ei in &self.layers[li].bwd {
                        cursor = self.compute_task(
                            g,
                            &self.trace.entries()[ei],
                            micro,
                            gpu_map[s],
                            Some(cursor),
                        );
                    }
                }
                bwd_done[s][c] = Some(cursor);
                prev_chunk[s] = Some(cursor);
                carry = Some(cursor);
            }
        }

        let bwd_done = bwd_done
            .into_iter()
            .map(|per_chunk| {
                per_chunk
                    .into_iter()
                    .map(|t| t.expect("bwd built"))
                    .collect()
            })
            .collect();
        (stages, bwd_done)
    }

    // ---------------- hybrid (data x pipeline) parallelism ----------------

    /// Hybrid parallelism: `dp_groups` data-parallel replicas, each a
    /// GPipe pipeline over `gpus / dp_groups` stages. After backward,
    /// each stage's gradients are AllReduced across the groups (one ring
    /// per stage, over the GPUs holding that stage), then every replica
    /// steps its optimizer. This is the DP x PP composition Table 1
    /// credits to DistSim/vTrain — implemented here as an extension.
    fn hybrid(&self, global_batch: u64, dp_groups: usize, chunks: u64) -> TaskGraph {
        let n = self.gpus();
        assert!(
            dp_groups >= 2,
            "hybrid needs at least two data-parallel groups"
        );
        assert!(
            n.is_multiple_of(dp_groups),
            "{n} GPUs do not divide into {dp_groups} groups"
        );
        let stages_per_group = n / dp_groups;
        assert!(
            stages_per_group >= 2,
            "hybrid needs at least two pipeline stages per group"
        );
        let per_group = global_batch / dp_groups as u64;
        let micro = Self::micro_batch(per_group.max(1), chunks);
        let mut g = TaskGraph::new(n);

        // Build one pipeline per group. Group gr owns GPUs
        // gr*stages .. (gr+1)*stages-1.
        let mut group_builds = Vec::with_capacity(dp_groups);
        for gr in 0..dp_groups {
            let gpu_map: Vec<usize> = (0..stages_per_group)
                .map(|s| gr * stages_per_group + s)
                .collect();
            let build = self.build_gpipe(&mut g, micro, chunks, &gpu_map, &format!("hp{gr}"));
            group_builds.push(build);
        }
        let stages = group_builds[0].0.clone();

        // Per-stage gradient AllReduce across groups, then optimizers.
        for (s, stage_layers) in stages.iter().enumerate() {
            let grad_bytes: u64 = stage_layers
                .iter()
                .map(|&li| self.layers[li].param_bytes)
                .sum();
            // Every group's backward for this stage must finish.
            let deps: Vec<TaskId> = group_builds
                .iter()
                .flat_map(|(_, bwd)| bwd[s].iter().copied())
                .collect();
            let gate = g.barrier(format!("hp.s{s}.bwd.done"), deps);
            let sync = if grad_bytes > 0 {
                let sched = self.all_reduce(dp_groups, grad_bytes);
                let gpu_map: Vec<usize> =
                    (0..dp_groups).map(|gr| gr * stages_per_group + s).collect();
                self.collective_mapped(
                    &mut g,
                    &format!("hp.s{s}.allreduce"),
                    &sched,
                    &vec![gate; dp_groups],
                    &gpu_map,
                )
            } else {
                gate
            };
            for gr in 0..dp_groups {
                let gpu = gr * stages_per_group + s;
                let mut cursor = sync;
                for &li in stage_layers {
                    for &ei in &self.layers[li].opt {
                        cursor = self.compute_task(
                            &mut g,
                            &self.trace.entries()[ei],
                            micro,
                            gpu,
                            Some(cursor),
                        );
                    }
                }
            }
        }
        g
    }

    /// FLOP-balanced contiguous stage assignment (the paper's
    /// extrapolator "automatically assigns layers to GPUs to balance
    /// workloads"): stage boundaries land where the cumulative forward
    /// FLOPs cross each 1/n share, clamped so every stage gets at least
    /// one layer.
    fn assign_stages(&self, n: usize) -> Vec<Vec<usize>> {
        let len = self.layers.len();
        assert!(
            len >= n,
            "model has fewer layers ({len}) than pipeline stages ({n})"
        );
        let mut prefix = Vec::with_capacity(len);
        let mut acc = 0.0;
        for l in &self.layers {
            acc += l.fwd_flops;
            prefix.push(acc);
        }
        let total = acc;

        // cuts[k] = index of the last layer of stage k (0-based), for
        // k < n-1; stage n-1 runs to the end.
        let mut cuts = Vec::with_capacity(n - 1);
        let mut prev_cut: isize = -1;
        for k in 1..n {
            let target = total * k as f64 / n as f64;
            let raw = prefix.partition_point(|&p| p < target);
            // Each earlier stage needs >= 1 layer (lo), and n-k stages
            // after this cut each need >= 1 layer (hi).
            let lo = (prev_cut + 1) as usize;
            let hi = len - (n - k) - 1;
            let cut = raw.clamp(lo, hi);
            cuts.push(cut);
            prev_cut = cut as isize;
        }

        let mut stages: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut start = 0usize;
        for &cut in &cuts {
            stages.push((start..=cut).collect());
            start = cut + 1;
        }
        stages.push((start..len).collect());
        debug_assert!(stages.iter().all(|s| !s.is_empty()));
        stages
    }
}

/// Classes whose weights shard under tensor parallelism.
fn shards_under_tp(class: OpClass) -> bool {
    matches!(
        class,
        OpClass::Conv2d | OpClass::Linear | OpClass::Embedding | OpClass::MatMul
    )
}

/// Shards an operator 1/n for tensor parallelism: compute, weights, and
/// produced activation split; consumed activation stays whole.
fn shard_op(op: &Operator, n: usize) -> Operator {
    let f = 1.0 / n as f64;
    Operator {
        name: op.name.clone(),
        class: op.class,
        flops: op.flops * f,
        bytes_in: op.bytes_in,
        bytes_out: ((op.bytes_out as f64) * f).round().max(1.0) as u64,
        weight_bytes: ((op.weight_bytes as f64) * f).round() as u64,
        output: op.output.clone(),
    }
}

/// Uniformly scales an operator's compute and bytes (optimizer shards).
fn scale_op(op: &Operator, f: f64) -> Operator {
    Operator {
        name: op.name.clone(),
        class: op.class,
        flops: op.flops * f,
        bytes_in: ((op.bytes_in as f64) * f).round().max(1.0) as u64,
        bytes_out: ((op.bytes_out as f64) * f).round().max(1.0) as u64,
        weight_bytes: ((op.weight_bytes as f64) * f).round() as u64,
        output: op.output.clone(),
    }
}

fn scaled_bytes(bytes: u64, from_batch: u64, to_batch: u64) -> u64 {
    ((bytes as f64) * (to_batch as f64) / (from_batch as f64)).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeModel;
    use triosim_modelzoo::ModelId;
    use triosim_perfmodel::LisModel;
    use triosim_trace::{GpuModel, Tracer};

    fn setup() -> (Trace, Platform, ComputeModel) {
        let model = ModelId::ResNet18.build(32);
        let trace = Tracer::new(GpuModel::A100).trace(&model);
        let platform = Platform::p2(4);
        let compute = ComputeModel::lis(LisModel::calibrated(GpuModel::A100));
        (trace, platform, compute)
    }

    #[test]
    fn dp_replicates_compute_per_gpu() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::DataParallel { overlap: false },
            128,
            &compute,
        );
        let compute_tasks = g
            .tasks()
            .iter()
            .filter(|t| matches!(t.kind, crate::TaskKind::Compute { .. }))
            .count();
        assert_eq!(compute_tasks, 4 * trace.entries().len());
    }

    #[test]
    fn dp_allreduce_moves_the_gradients() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::DataParallel { overlap: false },
            128,
            &compute,
        );
        // Non-input traffic must equal exactly one ring AllReduce of the
        // full gradient volume.
        let inputs: u64 = g
            .tasks()
            .iter()
            .filter_map(|t| match t.kind {
                crate::TaskKind::Transfer { bytes, .. } if t.label.starts_with("h2d") => {
                    Some(bytes)
                }
                _ => None,
            })
            .sum();
        let expected = ring_all_reduce(4, trace.gradient_bytes()).total_bytes();
        let total = g.total_transfer_bytes() - inputs;
        assert_eq!(total, expected);
    }

    #[test]
    fn ddp_produces_multiple_buckets() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::DataParallel { overlap: true },
            128,
            &compute,
        );
        let buckets: std::collections::HashSet<&str> = g
            .tasks()
            .iter()
            .filter(|t| t.label.contains("bucket"))
            .map(|t| t.label.split('.').nth(1).unwrap())
            .collect();
        // ResNet-18 has ~45 MB of gradients: at least 2 buckets of 25 MB.
        assert!(buckets.len() >= 2, "only {} buckets", buckets.len());
    }

    #[test]
    fn tp_sharded_flops_sum_to_replica_flops() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(&trace, &platform, Parallelism::TensorParallel, 32, &compute);
        assert!(g.len() > trace.entries().len());
        // AllGather traffic exists.
        let gathers = g
            .tasks()
            .iter()
            .filter(|t| t.label.contains("allgather"))
            .count();
        assert!(gathers > 0);
    }

    #[test]
    fn pp_stage_count_matches_gpus_and_chunks() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::Pipeline { chunks: 4 },
            32,
            &compute,
        );
        let act_sends = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("pp.act"))
            .count();
        // 4 chunks x 3 stage boundaries.
        assert_eq!(act_sends, 12);
        let grad_sends = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("pp.grad"))
            .count();
        assert_eq!(grad_sends, 12);
    }

    #[test]
    fn pp_single_chunk_has_no_parallel_microbatches() {
        let (trace, platform, compute) = setup();
        let g1 = extrapolate(
            &trace,
            &platform,
            Parallelism::Pipeline { chunks: 1 },
            32,
            &compute,
        );
        let g4 = extrapolate(
            &trace,
            &platform,
            Parallelism::Pipeline { chunks: 4 },
            32,
            &compute,
        );
        assert!(g4.len() > g1.len());
    }

    #[test]
    fn hybrid_builds_pipelines_per_group() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::Hybrid {
                dp_groups: 2,
                chunks: 2,
            },
            64,
            &compute,
        );
        // Two groups, each with its own activation sends (1 boundary x 2
        // chunks each) and a per-stage AllReduce.
        let hp0 = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("hp0.act"))
            .count();
        let hp1 = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("hp1.act"))
            .count();
        assert_eq!(hp0, 2);
        assert_eq!(hp1, 2);
        let allreduces = g
            .tasks()
            .iter()
            .filter(|t| t.label.contains("allreduce") && t.label.starts_with("hp.s"))
            .count();
        assert!(allreduces > 0, "per-stage gradient sync exists");
    }

    #[test]
    fn hybrid_gradient_volume_matches_dp_over_groups() {
        let (trace, platform, compute) = setup();
        let g = extrapolate(
            &trace,
            &platform,
            Parallelism::Hybrid {
                dp_groups: 2,
                chunks: 1,
            },
            64,
            &compute,
        );
        // Sum of per-stage AllReduce payloads = one 2-rank ring AllReduce
        // of the full gradient volume.
        let sync_bytes: u64 = g
            .tasks()
            .iter()
            .filter(|t| t.label.starts_with("hp.s") && t.label.contains("allreduce"))
            .map(|t| match t.kind {
                crate::TaskKind::Transfer { bytes, .. } => bytes,
                _ => 0,
            })
            .sum();
        let expected = ring_all_reduce(2, trace.gradient_bytes()).total_bytes();
        // Per-stage sharding rounds each stage's payload, so allow 1%.
        let ratio = sync_bytes as f64 / expected as f64;
        assert!((0.99..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn hybrid_group_count_must_divide_gpus() {
        let (trace, platform, compute) = setup();
        extrapolate(
            &trace,
            &platform,
            Parallelism::Hybrid {
                dp_groups: 3,
                chunks: 1,
            },
            96,
            &compute,
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn dp_batch_must_cover_gpus() {
        let (trace, platform, compute) = setup();
        extrapolate(
            &trace,
            &platform,
            Parallelism::DataParallel { overlap: false },
            2,
            &compute,
        );
    }
}
