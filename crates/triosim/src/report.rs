//! Simulation results: totals, breakdowns, and the timeline output.
//!
//! Matches §4.1's list of TrioSim outputs: total predicted execution
//! time, per-layer/per-phase communication and computation time, and a
//! timeline of the computation on each GPU and communication between
//! GPUs. The timeline exports to the Chrome `about:tracing` JSON format
//! (the same format the PyTorch profiler uses), so it can be inspected in
//! any trace viewer.

use serde::Value;
use triosim_des::{QueueStats, TimeSpan, VirtualTime};
use triosim_network::{NetObservation, PacketObservation};
use triosim_obs::{AttrValue, BottleneckReport, ChromeTraceSink, Recorder};

/// Which resource a timeline record occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimelineTrack {
    /// GPU `i`'s compute stream.
    Gpu(usize),
    /// The interconnect.
    Network,
}

/// One executed task on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRecord {
    /// Task label (operator or transfer name).
    pub label: String,
    /// Resource it ran on.
    pub track: TimelineTrack,
    /// Start time.
    pub start: VirtualTime,
    /// End time.
    pub end: VirtualTime,
    /// Model layer the task belongs to, when known.
    pub layer: Option<usize>,
}

/// Per-fault attribution of a fault-injected run: what fired, and how
/// much compute time the slowdown/jitter dilation added per GPU.
///
/// Link-level loss shows up in [`SimReport::network_stats`] instead
/// (`link_faults`, `reroutes`, `added_hops`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultStats {
    /// Timed faults that actually fired.
    pub faults_injected: u64,
    /// Fired link-bandwidth degradations.
    pub link_degrades: u64,
    /// Fired link failures.
    pub link_fails: u64,
    /// Fired link repairs.
    pub link_repairs: u64,
    /// Fired GPU drop-outs.
    pub gpu_drops: u64,
    /// Seconds of compute added to each GPU by slowdown/jitter dilation.
    pub lost_compute_s: Vec<f64>,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    total: TimeSpan,
    per_gpu_compute: Vec<TimeSpan>,
    comm_busy: TimeSpan,
    bytes_transferred: u64,
    tasks_executed: usize,
    queue: QueueStats,
    net: NetObservation,
    timeline: Vec<TimelineRecord>,
    /// Precomputed digest of the *whole logical run's* timeline:
    /// `(record count, FNV state)`. Set by checkpoint-aware runs, which
    /// fold the digest incrementally (and, after a restore, start from
    /// the snapshot's state — pre-restore records are not materialized
    /// in `timeline`). `None` on plain runs, which fold at report time.
    timeline_digest: Option<(u64, u64)>,
    fault_stats: Option<FaultStats>,
    packet_stats: Option<PacketObservation>,
    bottleneck: BottleneckReport,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        total: TimeSpan,
        per_gpu_compute: Vec<TimeSpan>,
        comm_busy: TimeSpan,
        bytes_transferred: u64,
        tasks_executed: usize,
        queue: QueueStats,
        net: NetObservation,
        timeline: Vec<TimelineRecord>,
    ) -> Self {
        SimReport {
            total,
            per_gpu_compute,
            comm_busy,
            bytes_transferred,
            tasks_executed,
            queue,
            net,
            timeline,
            timeline_digest: None,
            fault_stats: None,
            packet_stats: None,
            bottleneck: BottleneckReport::default(),
        }
    }

    pub(crate) fn set_fault_stats(&mut self, stats: FaultStats) {
        self.fault_stats = Some(stats);
    }

    pub(crate) fn set_packet_stats(&mut self, stats: PacketObservation) {
        self.packet_stats = Some(stats);
    }

    /// Installs the incrementally-folded timeline digest: `count`
    /// records whose sorted-order FNV fold ended in state `fnv`. The
    /// canonical `timeline_records`/`timeline_hash` then come from the
    /// digest, which covers the whole logical run even when a restore
    /// left pre-restore records unmaterialized.
    pub(crate) fn set_timeline_digest(&mut self, count: u64, fnv: u64) {
        self.timeline_digest = Some((count, fnv));
    }

    pub(crate) fn set_bottleneck(&mut self, bottleneck: BottleneckReport) {
        self.bottleneck = bottleneck;
    }

    /// The run's bottleneck attribution: critical-path breakdown,
    /// per-GPU compute/exposed-comm/idle buckets, stragglers, and the
    /// hottest links. Deterministic; part of the canonical JSON.
    pub fn bottleneck(&self) -> &BottleneckReport {
        &self.bottleneck
    }

    /// Fault-attribution counters of a fault-injected run; `None` for
    /// fault-free runs (including runs with an empty fault plan).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault_stats.as_ref()
    }

    /// Packet-level counters (drops, ECN marks, retransmits, queue-depth
    /// histogram) of a packet-fidelity run; `None` on the flow tiers, so
    /// their canonical reports stay byte-identical to builds that
    /// predate the packet tier.
    pub fn packet_stats(&self) -> Option<&PacketObservation> {
        self.packet_stats.as_ref()
    }

    /// End-to-end predicted time of the iteration.
    pub fn total_time(&self) -> TimeSpan {
        self.total
    }

    /// End-to-end predicted time, in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.total.as_seconds()
    }

    /// Busy compute time of each GPU.
    pub fn per_gpu_compute(&self) -> &[TimeSpan] {
        &self.per_gpu_compute
    }

    /// Computation time: the busiest GPU's compute occupancy (the
    /// convention the paper's comm/comp breakdowns use).
    pub fn compute_time_s(&self) -> f64 {
        self.per_gpu_compute
            .iter()
            .map(|t| t.as_seconds())
            .fold(0.0, f64::max)
    }

    /// Communication time: the union of all intervals during which at
    /// least one transfer was in flight.
    pub fn comm_time_s(&self) -> f64 {
        self.comm_busy.as_seconds()
    }

    /// Fraction of the comm+comp total spent communicating.
    pub fn comm_ratio(&self) -> f64 {
        let comm = self.comm_time_s();
        let comp = self.compute_time_s();
        if comm + comp == 0.0 {
            0.0
        } else {
            comm / (comm + comp)
        }
    }

    /// Total bytes that crossed the network.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Number of tasks executed (compute + transfer + barrier).
    pub fn tasks_executed(&self) -> usize {
        self.tasks_executed
    }

    /// Event-queue statistics of the run: how many simulation events were
    /// scheduled, delivered, and lazily cancelled, and the high-water
    /// mark of pending events (the AkitaRTM-style engine counters).
    pub fn queue_stats(&self) -> &QueueStats {
        &self.queue
    }

    /// Final network-model counters of the run: flows completed, bytes
    /// delivered, and the reallocation/reschedule churn the bandwidth
    /// sharing produced.
    pub fn network_stats(&self) -> &NetObservation {
        &self.net
    }

    /// Fraction of reallocation rounds that actually moved a delivery
    /// event (`reschedules / reallocations`). Under delta-rescheduling
    /// this measures genuine rate churn; a low ratio means most flow
    /// starts/finishes left every other flow's bandwidth untouched.
    pub fn rate_change_ratio(&self) -> f64 {
        if self.net.reallocations == 0 {
            0.0
        } else {
            self.net.reschedules as f64 / self.net.reallocations as f64
        }
    }

    /// The full execution timeline.
    pub fn timeline(&self) -> &[TimelineRecord] {
        &self.timeline
    }

    /// Per-layer computation time, summed across GPUs — the "computation
    /// time of each layer or stage" output §4.1 lists. Index = layer,
    /// value = seconds.
    pub fn per_layer_compute_s(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for r in &self.timeline {
            let (Some(layer), TimelineTrack::Gpu(_)) = (r.layer, r.track) else {
                continue;
            };
            if out.len() <= layer {
                out.resize(layer + 1, 0.0);
            }
            out[layer] += (r.end - r.start).as_seconds();
        }
        out
    }

    /// Per-GPU utilization profile: for each GPU, the fraction of each of
    /// `buckets` equal time slices spent computing. This is the
    /// AkitaRTM-style live view of where the pipeline bubbles and
    /// synchronization stalls sit.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn gpu_utilization(&self, buckets: usize) -> Vec<Vec<f64>> {
        assert!(buckets > 0, "need at least one bucket");
        let gpus = self.per_gpu_compute.len();
        let total = self.total.as_seconds();
        let mut profile = vec![vec![0.0f64; buckets]; gpus];
        if total == 0.0 {
            return profile;
        }
        let width = total / buckets as f64;
        for r in &self.timeline {
            let TimelineTrack::Gpu(g) = r.track else {
                continue;
            };
            let (s, e) = (r.start.as_seconds(), r.end.as_seconds());
            let first = ((s / width) as usize).min(buckets - 1);
            let last = ((e / width) as usize).min(buckets - 1);
            #[allow(clippy::needless_range_loop)]
            for b in first..=last {
                let bucket_start = b as f64 * width;
                let overlap = (e.min(bucket_start + width) - s.max(bucket_start)).max(0.0);
                profile[g][b] += overlap / width;
            }
        }
        for row in &mut profile {
            for v in row {
                *v = v.min(1.0);
            }
        }
        profile
    }

    /// Canonical JSON form of the report: every simulation-determined
    /// field, in a fixed key order, with the (large) timeline folded into
    /// a record count plus an FNV-1a content hash.
    ///
    /// This is the representation the golden snapshot tests and the sweep
    /// engine's deterministic aggregation serialize — it contains no
    /// wall-clock or host-dependent data, so two runs of the same
    /// configuration produce byte-identical output regardless of thread
    /// count or machine.
    pub fn to_canonical_json(&self) -> Value {
        let f = Value::Float;
        let u = Value::UInt;
        let mut fields = vec![
            ("total_time_s".to_string(), f(self.total_time_s())),
            ("compute_time_s".to_string(), f(self.compute_time_s())),
            ("comm_time_s".to_string(), f(self.comm_time_s())),
            ("comm_ratio".to_string(), f(self.comm_ratio())),
            ("bytes_transferred".to_string(), u(self.bytes_transferred)),
            ("tasks_executed".to_string(), u(self.tasks_executed as u64)),
            (
                "per_gpu_compute_s".to_string(),
                Value::Array(
                    self.per_gpu_compute
                        .iter()
                        .map(|t| f(t.as_seconds()))
                        .collect(),
                ),
            ),
            (
                "queue".to_string(),
                Value::Object(vec![
                    ("scheduled".to_string(), u(self.queue.scheduled())),
                    ("delivered".to_string(), u(self.queue.delivered())),
                    ("cancelled".to_string(), u(self.queue.cancelled())),
                    (
                        "max_pending".to_string(),
                        u(self.queue.max_pending() as u64),
                    ),
                    ("compactions".to_string(), u(self.queue.compactions())),
                ]),
            ),
            (
                "network".to_string(),
                Value::Object(vec![
                    ("flows_completed".to_string(), u(self.net.flows_completed)),
                    ("bytes_delivered".to_string(), u(self.net.bytes_delivered)),
                    ("reallocations".to_string(), u(self.net.reallocations)),
                    ("reschedules".to_string(), u(self.net.reschedules)),
                    ("link_faults".to_string(), u(self.net.link_faults)),
                    ("reroutes".to_string(), u(self.net.reroutes)),
                    ("added_hops".to_string(), u(self.net.added_hops)),
                ]),
            ),
            (
                "timeline_records".to_string(),
                u(self
                    .timeline_digest
                    .map_or(self.timeline.len() as u64, |(count, _)| count)),
            ),
            ("timeline_hash".to_string(), u(self.timeline_hash())),
            ("bottleneck".to_string(), self.bottleneck.to_value()),
        ];
        if let Some(fs) = &self.fault_stats {
            fields.push((
                "faults".to_string(),
                Value::Object(vec![
                    ("faults_injected".to_string(), u(fs.faults_injected)),
                    ("link_degrades".to_string(), u(fs.link_degrades)),
                    ("link_fails".to_string(), u(fs.link_fails)),
                    ("link_repairs".to_string(), u(fs.link_repairs)),
                    ("gpu_drops".to_string(), u(fs.gpu_drops)),
                    (
                        "lost_compute_s".to_string(),
                        Value::Array(fs.lost_compute_s.iter().map(|&s| f(s)).collect()),
                    ),
                ]),
            ));
        }
        if let Some(ps) = &self.packet_stats {
            fields.push((
                "packet".to_string(),
                Value::Object(vec![
                    ("packets_sent".to_string(), u(ps.packets_sent)),
                    ("retransmits".to_string(), u(ps.retransmits)),
                    ("drops".to_string(), u(ps.drops)),
                    ("ecn_marks".to_string(), u(ps.ecn_marks)),
                    ("max_queue_depth".to_string(), u(ps.max_queue_depth)),
                    (
                        "queue_depth_hist".to_string(),
                        Value::Array(ps.queue_depth_hist.iter().map(|&n| u(n)).collect()),
                    ),
                ]),
            ));
        }
        Value::Object(fields)
    }

    /// [`to_canonical_json`](Self::to_canonical_json) as a compact JSON
    /// string (what `triosim-cli simulate --report` writes).
    pub fn to_canonical_string(&self) -> String {
        serde_json::to_string(&self.to_canonical_json())
            .expect("canonical report JSON has no non-finite floats")
    }

    /// FNV-1a hash over every timeline record (label, track, start/end
    /// bits, layer). Order-sensitive, so any drift in task scheduling —
    /// not just in the aggregate totals — changes the canonical JSON.
    /// Checkpoint-aware runs install the digest precomputed by their
    /// incremental segment folds (seeded, after a restore, from the
    /// snapshot), which equals this batch fold exactly.
    fn timeline_hash(&self) -> u64 {
        match self.timeline_digest {
            Some((_, fnv)) => fnv,
            None => timeline_fnv(FNV_OFFSET, self.timeline.iter()),
        }
    }

    /// Exports the timeline as Chrome `about:tracing` JSON.
    ///
    /// Streams the timeline through the same
    /// [`ChromeTraceSink`] the live observability layer uses, so the
    /// post-hoc export and `--trace-events` produce the same dialect
    /// (named per-track threads, `"X"` complete events).
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if serialization fails
    /// (practically impossible for this data).
    pub fn to_chrome_trace(&self) -> Result<String, serde_json::Error> {
        let mut sink = ChromeTraceSink::new(Vec::new());
        for r in &self.timeline {
            let track = match r.track {
                TimelineTrack::Gpu(i) => format!("gpu{i}"),
                TimelineTrack::Network => "network".to_string(),
            };
            match r.layer {
                Some(layer) => sink.span(
                    &track,
                    &r.label,
                    r.start,
                    r.end,
                    &[("layer", AttrValue::U64(layer as u64))],
                ),
                None => sink.span(&track, &r.label, r.start, r.end, &[]),
            }
        }
        sink.finish().expect("in-memory trace write cannot fail");
        let bytes = sink.into_inner();
        Ok(String::from_utf8(bytes).expect("trace sink emits UTF-8"))
    }
}

/// FNV-1a initial state: the digest of zero timeline records.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds timeline records (in the order given, which must be the
/// canonical `(start, end)` sort order) into a running FNV-1a state.
/// Because the fold is sequential, a sorted run splits into sorted
/// segments — each iteration's records — and folding segment by
/// segment yields the same state as folding the whole run at once.
/// That is what lets checkpoints carry a fixed-size digest instead of
/// the records themselves.
pub(crate) fn timeline_fnv<'a, I>(seed: u64, records: I) -> u64
where
    I: Iterator<Item = &'a TimelineRecord>,
{
    let mut h = seed;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for r in records {
        eat(r.label.as_bytes());
        eat(&[0xff]);
        match r.track {
            TimelineTrack::Gpu(i) => eat(&(i as u64).to_le_bytes()),
            TimelineTrack::Network => eat(&u64::MAX.to_le_bytes()),
        }
        eat(&r.start.as_seconds().to_bits().to_le_bytes());
        eat(&r.end.as_seconds().to_bits().to_le_bytes());
        eat(&r.layer.map_or(u64::MAX, |l| l as u64).to_le_bytes());
    }
    h
}

/// Merges possibly-overlapping intervals into their union: sorted,
/// disjoint, with touching intervals coalesced. The union is
/// associative and idempotent, so pre-merged interval sets (as stored
/// in checkpoints) fold in without changing any derived length.
pub(crate) fn merge_intervals(
    mut intervals: Vec<(VirtualTime, VirtualTime)>,
) -> Vec<(VirtualTime, VirtualTime)> {
    intervals.sort();
    let mut merged: Vec<(VirtualTime, VirtualTime)> = Vec::new();
    for (s, e) in intervals {
        match merged.last_mut() {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Merges possibly-overlapping intervals and returns their union length.
pub(crate) fn union_length(intervals: Vec<(VirtualTime, VirtualTime)>) -> TimeSpan {
    merge_intervals(intervals)
        .into_iter()
        .fold(TimeSpan::ZERO, |acc, (s, e)| acc + (e - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VirtualTime {
        VirtualTime::from_seconds(s)
    }

    #[test]
    fn union_of_disjoint_intervals() {
        let u = union_length(vec![(t(0.0), t(1.0)), (t(2.0), t(3.0))]);
        assert_eq!(u, TimeSpan::from_seconds(2.0));
    }

    #[test]
    fn union_of_overlapping_intervals() {
        let u = union_length(vec![(t(0.0), t(2.0)), (t(1.0), t(3.0)), (t(2.5), t(2.8))]);
        assert_eq!(u, TimeSpan::from_seconds(3.0));
    }

    #[test]
    fn union_of_nothing_is_zero() {
        assert_eq!(union_length(vec![]), TimeSpan::ZERO);
    }

    #[test]
    fn report_accessors_and_ratio() {
        let report = SimReport::new(
            TimeSpan::from_seconds(10.0),
            vec![TimeSpan::from_seconds(6.0), TimeSpan::from_seconds(4.0)],
            TimeSpan::from_seconds(2.0),
            1234,
            7,
            QueueStats::default(),
            NetObservation::default(),
            vec![],
        );
        assert_eq!(report.total_time_s(), 10.0);
        assert_eq!(report.compute_time_s(), 6.0);
        assert_eq!(report.comm_time_s(), 2.0);
        assert!((report.comm_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(report.bytes_transferred(), 1234);
        assert_eq!(report.tasks_executed(), 7);
    }

    #[test]
    fn utilization_profile_localizes_work() {
        // One task occupying the first half of a 2-second run.
        let report = SimReport::new(
            TimeSpan::from_seconds(2.0),
            vec![TimeSpan::from_seconds(1.0)],
            TimeSpan::ZERO,
            0,
            1,
            QueueStats::default(),
            NetObservation::default(),
            vec![TimelineRecord {
                label: "op".into(),
                track: TimelineTrack::Gpu(0),
                start: t(0.0),
                end: t(1.0),
                layer: Some(3),
            }],
        );
        let profile = report.gpu_utilization(4);
        assert_eq!(profile.len(), 1);
        assert!((profile[0][0] - 1.0).abs() < 1e-9);
        assert!((profile[0][1] - 1.0).abs() < 1e-9);
        assert!(profile[0][2] < 1e-9);
        assert!(profile[0][3] < 1e-9);
    }

    #[test]
    fn per_layer_compute_attributes_time() {
        let report = SimReport::new(
            TimeSpan::from_seconds(2.0),
            vec![TimeSpan::from_seconds(1.0)],
            TimeSpan::ZERO,
            0,
            1,
            QueueStats::default(),
            NetObservation::default(),
            vec![TimelineRecord {
                label: "op".into(),
                track: TimelineTrack::Gpu(0),
                start: t(0.0),
                end: t(1.0),
                layer: Some(3),
            }],
        );
        let per_layer = report.per_layer_compute_s();
        assert_eq!(per_layer.len(), 4);
        assert!((per_layer[3] - 1.0).abs() < 1e-12);
        assert_eq!(per_layer[0], 0.0);
    }

    #[test]
    fn chrome_trace_exports() {
        let report = SimReport::new(
            TimeSpan::from_seconds(1.0),
            vec![TimeSpan::from_seconds(1.0)],
            TimeSpan::ZERO,
            0,
            1,
            QueueStats::default(),
            NetObservation::default(),
            vec![TimelineRecord {
                label: "conv1@g0".into(),
                track: TimelineTrack::Gpu(0),
                start: t(0.0),
                end: t(1.0),
                layer: None,
            }],
        );
        let json = report.to_chrome_trace().unwrap();
        assert!(json.contains("conv1@g0"));
        assert!(json.contains("\"ph\":\"X\""));
    }
}
