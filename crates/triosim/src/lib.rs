//! # TrioSim-RS
//!
//! A lightweight simulator for large-scale DNN workloads on multi-GPU
//! systems — a from-scratch Rust reproduction of *TrioSim* (Li et al.,
//! ISCA 2025).
//!
//! TrioSim answers one question fast: **how long will one training
//! iteration of a DNN take on a multi-GPU system**, given only an
//! operator-level trace collected on a *single* GPU? It combines:
//!
//! * a **multi-GPU trace extrapolator** ([`extrapolate`]) that converts
//!   the single-GPU trace into a per-GPU task graph for data parallelism
//!   (standard and DDP-overlapped), tensor parallelism, and GPipe-style
//!   pipeline parallelism, inserting NCCL-style collective transfers;
//! * **Li's Model** (`triosim-perfmodel`) to rescale operator times to
//!   new batch sizes or new GPUs; and
//! * a **lightweight flow-based network model** (`triosim-network`) for
//!   transfer times under latency, bandwidth, and fair sharing.
//!
//! ## Quick start
//!
//! ```rust
//! use triosim::{Parallelism, Platform, SimBuilder};
//! use triosim_modelzoo::ModelId;
//! use triosim_trace::{GpuModel, Tracer};
//!
//! // 1. Trace one training iteration on a single (simulated) GPU.
//! let model = ModelId::ResNet18.build(32);
//! let trace = Tracer::new(GpuModel::A100).trace(&model);
//!
//! // 2. Simulate 4 GPUs with distributed data parallelism.
//! let platform = Platform::p2(4);
//! let report = SimBuilder::new(&trace, &platform)
//!     .parallelism(Parallelism::DataParallel { overlap: true })
//!     .run();
//!
//! assert!(report.total_time_s() > 0.0);
//! assert!(report.comm_time_s() > 0.0);
//! ```
//!
//! ## Ground truth without hardware
//!
//! The paper validates against physical GPU testbeds. This reproduction
//! validates against a *high-fidelity reference simulation* — same task
//! graph, but operator times from the oracle GPU model and transfers
//! through the protocol-aware reference network (see `DESIGN.md` §2).
//! [`SimBuilder::fidelity`] switches between the two; the `triosim-bench`
//! crate's figure binaries run both and report errors the way the paper
//! does.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod compute;
mod error;
mod executor;
mod extrapolate;
mod hop;
mod layers;
mod memory;
mod parallelism;
mod platform;
mod report;
mod session;
mod shardexec;
pub mod sweep;
mod taskgraph;
mod viz;

pub use checkpoint::CheckpointError;
pub use compute::{ComputeModel, Fidelity};
pub use error::SimError;
pub use executor::{
    execute, execute_budgeted, execute_budgeted_profiled, execute_faulted, execute_iterations,
    execute_observed, Observability,
};
pub use extrapolate::{extrapolate, extrapolate_with_style};
pub use hop::{HopConfig, HopGraph, HopReport, HopSimulator};
pub use layers::{summarize_layers, LayerSummary};
pub use memory::{estimate_memory, MemoryEstimate};
pub use parallelism::{CollectiveStyle, Parallelism};
pub use platform::Platform;
pub use report::{FaultStats, SimReport, TimelineRecord, TimelineTrack};
// Re-export the bottleneck-attribution and self-profiling vocabulary so
// downstream users analyze runs without naming `triosim-obs` directly.
pub use triosim_obs::{
    BottleneckReport, CriticalOp, GpuBuckets, HotLink, SelfProfile, SelfProfiler, Straggler,
};
// Re-export the fault-plan vocabulary so downstream users configure
// fault injection without naming the `triosim-faults` crate directly.
pub use session::SimBuilder;
pub use sweep::{
    run_sweep, run_sweep_with, ScenarioError, ScenarioResult, SweepError, SweepOutcome,
    SweepRunConfig,
};
pub use taskgraph::{CollectiveMeta, Task, TaskGraph, TaskId, TaskKind};
pub use triosim_faults::{
    FaultKind, FaultPlan, FaultPlanError, FaultSession, GpuDropout, GpuSlowdown, Jitter,
    LinkDegradation, LinkFailure, TimedFault,
};
pub use triosim_sweep::{Scenario, ScenarioPatch, SweepSpec};
pub use viz::render_html_timeline;
