//! `triosim-cli` — trace, inspect, and simulate from the command line.
//!
//! ```text
//! triosim-cli models
//! triosim-cli trace    --model resnet50 --batch 128 --gpu A100 -o trace.json
//! triosim-cli inspect  --trace trace.json
//! triosim-cli simulate --trace trace.json --platform p2:4 --parallelism ddp \
//!                      [--batch 512] [--reference] [--timeline out.json]
//! triosim-cli analyze  --trace trace.json --platform p2:4 --parallelism ddp
//! triosim-cli memory   --trace trace.json --gpus 4 --parallelism tp --batch 128
//! ```
//!
//! The argument parser is deliberately hand-rolled (no CLI dependency);
//! every subcommand prints usage on `--help`.

use std::collections::HashMap;
use std::process::ExitCode;
use std::str::FromStr;

use triosim::{
    estimate_memory, Fidelity, Parallelism, Platform, SelfProfile, SelfProfiler, SimBuilder,
};
use triosim_des::{TimeSpan, VirtualTime};
use triosim_modelzoo::ModelId;
use triosim_obs::{
    ChromeTraceSink, JsonlSink, ProgressMonitor, PrometheusSink, Recorder, RunRecorder,
};
use triosim_trace::{GpuModel, Phase, Trace, Tracer};

const USAGE: &str = "\
triosim-cli — TrioSim-RS command line

USAGE:
    triosim-cli <COMMAND> [OPTIONS]

COMMANDS:
    models                      list the built-in model zoo
    trace                       collect a single-GPU trace
        --model <name>          zoo model (see `models`)
        --batch <n>             batch size (default 128)
        --gpu <A40|A100|H100>   GPU to trace on (default A100)
        -o, --out <file>        output path (default <model>.trace.json)
    inspect                     summarize a trace file
        --trace <file>
    simulate                    predict a multi-GPU iteration
        --trace <file>
        --platform <p1|p2:N|p3|ring:GPU:N|pcie:GPU:N|fat:GPU:N[:O]>
                                (default p2:4; fat = oversubscribed
                                fat tree, O = oversubscription, default 4)
        --parallelism <dp|ddp|tp|pp[:chunks]|hp:groups[:chunks]>  (default ddp)
        --batch <n>             global batch (default: weak scaling)
        --iterations <n>        back-to-back training iterations (default 1)
        --shards <n>            worker threads for iteration-axis sharding
                                (default 1; output is byte-identical at any
                                shard count — sharding only changes speed)
        --fidelity <tier>       triosim (default), reference, or packet
                                (packet-level network: switch queues,
                                ECN/DCTCP, drops and retransmits)
        --reference             alias for --fidelity reference
        --timeline <file>       write the Chrome-trace timeline
        --html <file>           write a self-contained HTML timeline view
        --events <file>         write structured observability events (JSONL)
        --trace-events <file>   write a live Chrome/Perfetto trace (spans +
                                sampled counter tracks; supersedes --timeline)
        --metrics <file>        write Prometheus text-format metrics
        --progress              print live progress to stderr
        --sample-period-us <n>  observability sampling period (default 1000)
        --faults <plan.json>    inject the faults described by a plan file
                                (GPU slowdowns, jitter, link degradation,
                                link failure/repair, GPU drop-out)
        --fault-seed <n>        override the plan's jitter seed
        --checkpoint <file>     write a crash-safe engine snapshot at
                                iteration boundaries (atomic rename +
                                fsync); a killed run resumes from it
        --checkpoint-every <n>  boundaries between snapshots (default 1;
                                requires --checkpoint)
        --restore <file>        resume from a snapshot; output is
                                byte-identical to an uninterrupted run
        --report <file>         write the canonical JSON report (the
                                byte-stable form golden tests compare;
                                what --restore reproduces exactly)
        --profile               print the simulator's own wall-clock
                                self-profile (setup vs engine loop) after
                                the run; never changes simulation output
    analyze                     run a simulation and explain where the
                                virtual time went: critical path, per-GPU
                                compute/overlap/exposed-comm/idle buckets,
                                top critical ops, stragglers, hot links
        --trace <file>          plus the same --platform/--parallelism/
                                --batch/--iterations/--shards/--fidelity/
                                --reference/--faults/--fault-seed flags
                                as `simulate`
        --top <k>               critical ops / links to list (default 8)
        --profile               also print the wall-clock self-profile
    memory                      estimate the per-GPU memory footprint
        --trace <file> --gpus <n> --parallelism <...> --batch <n>
    sweep                       run a declarative scenario sweep
        --spec <sweep.json>     sweep spec (defaults + cartesian grid +
                                explicit scenario list; see docs/TESTING.md)
        --threads <n>           worker threads (default: available cores)
        --out <file>            write the deterministic aggregate JSON
                                (byte-identical across thread counts)
        --progress              print live per-scenario progress to stderr
        --journal <file>        append each scenario's fsync'd result to a
                                JSONL journal as it completes (crash-safe)
        --resume <journal>      replay a journal's completed scenarios and
                                run only the rest (--spec optional: the
                                journal header embeds the spec); the final
                                aggregate is byte-identical to an
                                uninterrupted run
        --fail-fast             abort the sweep on the first scenario
                                panic instead of isolating it as a
                                structured error entry
        --metrics <file>        write Prometheus text-format sweep
                                counters (total/recovered/failed/
                                panicked/budget-terminated; with
                                --profile also per-span wall-clock
                                gauges)
        --profile               collect and print the sweep's wall-clock
                                self-profile (resolve / execute /
                                aggregate, per-scenario engine loops);
                                the canonical aggregate stays
                                byte-identical
        --checkpoint-dir <dir>  write per-scenario engine snapshots into
                                <dir> so a resumed sweep restarts
                                in-progress scenarios from their last
                                iteration boundary instead of scratch
        --checkpoint-every <n>  boundaries between snapshots (default 1;
                                requires --checkpoint-dir)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = parse_options(&args[1..]);
    let result = validate_flags(command, &opts).and_then(|()| match command.as_str() {
        "models" => cmd_models(),
        "trace" => cmd_trace(&opts),
        "inspect" => cmd_inspect(&opts),
        "simulate" => cmd_simulate(&opts),
        "analyze" => cmd_analyze(&opts),
        "memory" => cmd_memory(&opts),
        "sweep" => cmd_sweep(&opts),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Rejects flags a subcommand does not understand with a one-line,
/// actionable error instead of silently ignoring them.
fn validate_flags(command: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    let allowed: &[&str] = match command {
        "models" => &[],
        "trace" => &["model", "batch", "gpu", "out"],
        "inspect" => &["trace"],
        "simulate" => &[
            "trace",
            "platform",
            "parallelism",
            "batch",
            "iterations",
            "shards",
            "fidelity",
            "reference",
            "timeline",
            "html",
            "events",
            "trace-events",
            "metrics",
            "progress",
            "sample-period-us",
            "faults",
            "fault-seed",
            "checkpoint",
            "checkpoint-every",
            "restore",
            "report",
            "profile",
        ],
        "analyze" => &[
            "trace",
            "platform",
            "parallelism",
            "batch",
            "iterations",
            "shards",
            "fidelity",
            "reference",
            "faults",
            "fault-seed",
            "top",
            "profile",
        ],
        "memory" => &["trace", "gpus", "parallelism", "batch"],
        "sweep" => &[
            "spec",
            "threads",
            "out",
            "progress",
            "journal",
            "resume",
            "fail-fast",
            "metrics",
            "profile",
            "checkpoint-dir",
            "checkpoint-every",
        ],
        // Unknown commands produce their own error.
        _ => return Ok(()),
    };
    let mut unknown: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|k| !allowed.contains(k))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(k) => Err(format!(
            "unknown option `--{k}` for `{command}` (run `triosim-cli --help` for the option list)"
        )),
        None => Ok(()),
    }
}

fn parse_options(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].trim_start_matches('-').to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with('-') {
            opts.insert(
                if key == "o" { "out".into() } else { key },
                args[i + 1].clone(),
            );
            i += 2;
        } else {
            opts.insert(key, "true".into());
            i += 1;
        }
    }
    opts
}

fn cmd_models() -> Result<(), String> {
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "model", "layers", "params (M)", "GFLOPs@1"
    );
    for id in ModelId::ALL {
        let m = id.build(1);
        println!(
            "{:<16} {:>10} {:>12.1} {:>12.1}",
            id.to_string(),
            m.layer_count(),
            m.param_count() as f64 / 1e6,
            m.total_flops() / 1e9
        );
    }
    Ok(())
}

fn cmd_trace(opts: &HashMap<String, String>) -> Result<(), String> {
    let model: ModelId = opts.get("model").ok_or("missing --model")?.parse()?;
    let batch: u64 = parse_num(opts, "batch", 128)?;
    let gpu: GpuModel = opts
        .get("gpu")
        .map(|s| GpuModel::from_str(s))
        .transpose()?
        .unwrap_or(GpuModel::A100);
    let out = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{model}.trace.json"));

    let trace = Tracer::new(gpu).trace(&model.build(batch));
    let json = trace.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "traced {model} @ batch {batch} on {gpu}: {} operators, {:.2} ms -> {out}",
        trace.entries().len(),
        trace.total_time_s() * 1e3
    );
    Ok(())
}

fn load_trace(opts: &HashMap<String, String>) -> Result<Trace, String> {
    let path = opts.get("trace").ok_or("missing --trace")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Trace::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(opts)?;
    println!("model      : {}", trace.model());
    println!("gpu        : {}", trace.gpu());
    println!("batch      : {}", trace.batch());
    println!("operators  : {}", trace.entries().len());
    println!("layers     : {}", trace.layer_count());
    println!("tensors    : {}", trace.tensors().len());
    println!("total time : {:.3} ms", trace.total_time_s() * 1e3);
    for phase in [Phase::Forward, Phase::Backward, Phase::Optimizer] {
        println!("  {phase:<9}: {:.3} ms", trace.phase_time_s(phase) * 1e3);
    }
    println!(
        "gradients  : {:.1} MB (the DP AllReduce volume)",
        trace.gradient_bytes() as f64 / 1e6
    );
    println!("time by operator class:");
    for (class, count, secs) in trace.class_breakdown() {
        println!(
            "  {:<12} {:>5} ops {:>10.3} ms ({:>4.1}%)",
            class.to_string(),
            count,
            secs * 1e3,
            100.0 * secs / trace.total_time_s()
        );
    }
    Ok(())
}

fn parse<T: FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("invalid number `{s}`: {e}"))
}

fn parse_num(opts: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    opts.get(key)
        .map(|s| parse(s))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Applies the simulation flags `simulate` and `analyze` share: global
/// batch, iteration count, fidelity, and the fault plan.
fn apply_sim_flags<'a>(
    mut builder: SimBuilder<'a>,
    opts: &HashMap<String, String>,
) -> Result<SimBuilder<'a>, String> {
    if let Some(batch) = opts.get("batch") {
        builder = builder.global_batch(parse(batch)?);
    }
    if let Some(iters) = opts.get("iterations") {
        let iters: usize = parse(iters)?;
        if iters == 0 {
            return Err("--iterations must be at least 1".into());
        }
        builder = builder.iterations(iters);
    }
    if let Some(shards) = opts.get("shards") {
        let shards: usize = parse(shards)?;
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        builder = builder.shards(shards);
    }
    match (opts.get("fidelity"), opts.contains_key("reference")) {
        (Some(_), true) => {
            return Err("--fidelity and --reference are mutually exclusive".into());
        }
        (Some(spec), false) => builder = builder.fidelity(Fidelity::from_str(spec)?),
        // `--reference` predates `--fidelity` and stays as an alias.
        (None, true) => builder = builder.fidelity(Fidelity::Reference),
        (None, false) => {}
    }
    if let Some(path) = opts.get("faults") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let plan = triosim::FaultPlan::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        builder = builder.faults(plan);
    } else if opts.contains_key("fault-seed") {
        return Err("--fault-seed requires --faults".into());
    }
    if let Some(seed) = opts.get("fault-seed") {
        builder = builder.fault_seed(parse(seed)?);
    }
    Ok(builder)
}

/// Runs the configured builder, routing through the profiled session
/// path when `--profile` was given. Profiling never changes the report.
fn run_builder(
    builder: SimBuilder<'_>,
    opts: &HashMap<String, String>,
) -> Result<(triosim::SimReport, Option<SelfProfile>), String> {
    if opts.contains_key("profile") {
        let mut prof = SelfProfiler::new();
        let report = builder
            .try_run_profiled(&mut prof)
            .map_err(|e| e.to_string())?;
        Ok((report, Some(prof.snapshot())))
    } else {
        Ok((builder.try_run().map_err(|e| e.to_string())?, None))
    }
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let platform = Platform::from_str(opts.get("platform").map(String::as_str).unwrap_or("p2:4"))?;
    let parallelism =
        Parallelism::from_str(opts.get("parallelism").map(String::as_str).unwrap_or("ddp"))?;
    let mut builder = apply_sim_flags(
        SimBuilder::new(&trace, &platform).parallelism(parallelism),
        opts,
    )?;

    // Observability sinks: each flag adds one deterministic output file.
    let create = |path: &String| -> Result<std::io::BufWriter<std::fs::File>, String> {
        std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .map_err(|e| format!("{path}: {e}"))
    };
    let mut recorder = RunRecorder::new();
    if let Some(path) = opts.get("events") {
        recorder.push(Box::new(JsonlSink::new(create(path)?)));
    }
    if let Some(path) = opts.get("trace-events") {
        recorder.push(Box::new(ChromeTraceSink::new(create(path)?)));
    }
    if let Some(path) = opts.get("metrics") {
        recorder.push(Box::new(PrometheusSink::new(create(path)?)));
    }
    if !recorder.is_empty() {
        builder = builder.recorder(Box::new(recorder));
    }
    if opts.contains_key("progress") {
        builder = builder.progress(ProgressMonitor::new());
    }
    if let Some(us) = opts.get("sample-period-us") {
        let us: f64 = parse(us)?;
        if !us.is_finite() || us <= 0.0 {
            return Err("--sample-period-us must be positive".into());
        }
        builder = builder.sample_period(TimeSpan::from_micros(us));
    }
    if let Some(path) = opts.get("checkpoint") {
        let every: usize = match opts.get("checkpoint-every") {
            Some(n) => parse(n)?,
            None => 1,
        };
        if every == 0 {
            return Err("--checkpoint-every must be at least 1".into());
        }
        builder = builder.checkpoint(path, every);
    } else if opts.contains_key("checkpoint-every") {
        return Err("--checkpoint-every requires --checkpoint".into());
    }
    if let Some(path) = opts.get("restore") {
        builder = builder.restore(path);
    }
    let (report, profile) = run_builder(builder, opts)?;

    if let Some(out) = opts.get("report") {
        let mut line = report.to_canonical_string();
        line.push('\n');
        std::fs::write(out, line).map_err(|e| format!("{out}: {e}"))?;
    }

    println!(
        "{} | {} x {} | {}",
        trace.model(),
        platform.gpu_count(),
        platform.gpu(),
        parallelism
    );
    println!("total time    : {:.3} ms", report.total_time_s() * 1e3);
    println!("compute (max) : {:.3} ms", report.compute_time_s() * 1e3);
    println!(
        "communication : {:.3} ms ({:.1}%)",
        report.comm_time_s() * 1e3,
        100.0 * report.comm_ratio()
    );
    let b = report.bottleneck();
    println!(
        "critical path : {:.3} ms ({:.1}% exposed comm; run `analyze` for the breakdown)",
        b.critical_path_s * 1e3,
        100.0 * b.exposed_comm_fraction
    );
    if !b.stragglers.is_empty() {
        let list: Vec<String> = b
            .stragglers
            .iter()
            .map(|s| format!("gpu{} ({:.2}x median)", s.gpu, s.vs_median))
            .collect();
        println!("stragglers    : {}", list.join(", "));
    }
    println!(
        "network bytes : {:.1} MB",
        report.bytes_transferred() as f64 / 1e6
    );
    println!("tasks         : {}", report.tasks_executed());
    let q = report.queue_stats();
    println!(
        "events        : {} scheduled, {} delivered, {} cancelled, {} max pending, {} compactions",
        q.scheduled(),
        q.delivered(),
        q.cancelled(),
        q.max_pending(),
        q.compactions()
    );
    let net = report.network_stats();
    println!(
        "reallocation  : {} rounds, {} reschedules ({:.1}% rate churn)",
        net.reallocations,
        net.reschedules,
        100.0 * report.rate_change_ratio()
    );
    if let Some(fs) = report.fault_stats() {
        println!(
            "faults        : {} injected ({} degrade, {} fail, {} repair), {} reroutes (+{} hops), lost compute {:.3} ms",
            fs.faults_injected,
            fs.link_degrades,
            fs.link_fails,
            fs.link_repairs,
            net.reroutes,
            net.added_hops,
            fs.lost_compute_s.iter().sum::<f64>() * 1e3
        );
    }
    // Heaviest layers (the per-layer breakdown of §4.1).
    let per_layer = report.per_layer_compute_s();
    let mut heaviest: Vec<(usize, f64)> = per_layer.iter().copied().enumerate().collect();
    heaviest.sort_by(|a, b| b.1.total_cmp(&a.1));
    let shown: Vec<String> = heaviest
        .iter()
        .take(5)
        .filter(|(_, t)| *t > 0.0)
        .map(|(l, t)| format!("L{l}={:.1}ms", t * 1e3))
        .collect();
    if !shown.is_empty() {
        println!("heaviest layers: {}", shown.join("  "));
    }
    // AkitaRTM-style utilization strip: one row per GPU, 40 buckets.
    const BUCKETS: usize = 40;
    let glyphs = [' ', '.', ':', '-', '=', '#'];
    for (g, row) in report.gpu_utilization(BUCKETS).iter().enumerate() {
        let strip: String = row
            .iter()
            .map(|&u| {
                glyphs[((u * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
            })
            .collect();
        println!("gpu{g:<2} util    : [{strip}]");
    }
    if let Some(path) = opts.get("timeline") {
        let json = report.to_chrome_trace().map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("timeline      : {path}");
    }
    if let Some(path) = opts.get("html") {
        let title = format!("{} | {} | {}", trace.model(), platform.name(), parallelism);
        let html = triosim::render_html_timeline(&report, &title);
        std::fs::write(path, html).map_err(|e| e.to_string())?;
        println!("html timeline : {path}");
    }
    for (key, label) in [
        ("events", "event log"),
        ("trace-events", "trace events"),
        ("metrics", "metrics"),
    ] {
        if let Some(path) = opts.get(key) {
            println!("{label:<14}: {path}");
        }
    }
    if let Some(p) = profile {
        println!("self-profile (wall clock, diagnostic only):");
        print!("{}", p.render());
    }
    Ok(())
}

/// `analyze`: run the simulation and print the full bottleneck
/// attribution — where the virtual time went and what gates it.
fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let platform = Platform::from_str(opts.get("platform").map(String::as_str).unwrap_or("p2:4"))?;
    let parallelism =
        Parallelism::from_str(opts.get("parallelism").map(String::as_str).unwrap_or("ddp"))?;
    let top = parse_num(opts, "top", 8)? as usize;
    let builder = apply_sim_flags(
        SimBuilder::new(&trace, &platform).parallelism(parallelism),
        opts,
    )?;
    let (report, profile) = run_builder(builder, opts)?;
    let b = report.bottleneck();

    println!(
        "{} | {} x {} | {} | {} iteration(s)",
        trace.model(),
        platform.gpu_count(),
        platform.gpu(),
        parallelism,
        b.iterations
    );
    println!(
        "critical path   : {:.3} ms of {:.3} ms total",
        b.critical_path_s * 1e3,
        report.total_time_s() * 1e3
    );
    println!(
        "  compute       : {:.3} ms ({:.1}%)",
        b.path_compute_s * 1e3,
        100.0 * (1.0 - b.exposed_comm_fraction)
    );
    println!(
        "  exposed comm  : {:.3} ms ({:.1}%)",
        b.path_comm_s * 1e3,
        100.0 * b.exposed_comm_fraction
    );
    println!("top critical ops:");
    for (rank, op) in b.top_ops.iter().take(top).enumerate() {
        println!(
            "  {:>2}. {:<28} {:>7} {:>10.3} ms  x{:<5} {:>5.1}%",
            rank + 1,
            op.label,
            op.kind,
            op.seconds * 1e3,
            op.count,
            100.0 * op.share
        );
    }
    println!("per-GPU time (ms): compute + exposed comm + idle = total; overlap is hidden comm");
    println!(
        "  {:<5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "gpu", "compute", "overlap", "exposed", "idle", "total", "busy%"
    );
    for (g, bk) in b.per_gpu.iter().enumerate() {
        println!(
            "  {:<5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>5.1}%",
            format!("gpu{g}"),
            bk.compute_s * 1e3,
            bk.overlapped_comm_s * 1e3,
            bk.exposed_comm_s * 1e3,
            bk.idle_s * 1e3,
            bk.total_s * 1e3,
            100.0 * bk.compute_s / bk.total_s.max(f64::MIN_POSITIVE)
        );
    }
    if b.stragglers.is_empty() {
        println!("stragglers      : none (no GPU above 1.25x median busy time)");
    } else {
        println!("stragglers      :");
        for s in &b.stragglers {
            let fault = if s.fault_lost_s > 0.0 {
                format!(
                    "  ({:.3} ms attributed to injected faults)",
                    s.fault_lost_s * 1e3
                )
            } else {
                String::new()
            };
            println!(
                "  gpu{:<3} busy {:>10.3} ms = {:.2}x median{fault}",
                s.gpu,
                s.compute_s * 1e3,
                s.vs_median
            );
        }
    }
    if !b.hottest_links.is_empty() {
        println!("hottest links   :");
        for l in b.hottest_links.iter().take(top) {
            println!(
                "  {:<28} busy {:>10.3} ms  {:>8.1} MB  {:>5.1}% util",
                l.label,
                l.busy_s * 1e3,
                l.bytes / 1e6,
                100.0 * l.utilization
            );
        }
    }
    if let Some(p) = profile {
        println!("self-profile (wall clock, diagnostic only):");
        print!("{}", p.render());
    }
    Ok(())
}

fn cmd_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("journal") && opts.contains_key("resume") {
        return Err("--journal and --resume are mutually exclusive \
                    (resume keeps appending to the journal it reads)"
            .into());
    }
    // The spec comes from --spec, or (on resume) from the journal header,
    // so a sweep can be resumed even after the spec file is gone.
    let text = match (opts.get("spec"), opts.get("resume")) {
        (Some(path), _) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        (None, Some(journal_path)) => {
            let (header, _) =
                triosim::sweep::journal::read_journal(std::path::Path::new(journal_path))
                    .map_err(|e| format!("{journal_path}: {e}"))?;
            if header.spec_text.is_empty() {
                return Err(format!(
                    "{journal_path}: journal has no embedded spec; pass --spec"
                ));
            }
            header.spec_text
        }
        (None, None) => return Err("missing --spec".into()),
    };
    let spec = triosim::SweepSpec::from_json(&text).map_err(|e| e.to_string())?;
    let threads = match opts.get("threads") {
        Some(n) => {
            let n: usize = parse(n)?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            n
        }
        None => std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1),
    };
    let checkpoint_every: usize = match opts.get("checkpoint-every") {
        Some(n) => {
            if !opts.contains_key("checkpoint-dir") {
                return Err("--checkpoint-every requires --checkpoint-dir".into());
            }
            let n: usize = parse(n)?;
            if n == 0 {
                return Err("--checkpoint-every must be at least 1".into());
            }
            n
        }
        None => 1,
    };
    let config = triosim::SweepRunConfig {
        threads,
        progress: opts.contains_key("progress"),
        journal: opts.get("journal").map(std::path::PathBuf::from),
        resume: opts.get("resume").map(std::path::PathBuf::from),
        fail_fast: opts.contains_key("fail-fast"),
        spec_text: Some(text),
        profile: opts.contains_key("profile"),
        checkpoint_dir: opts.get("checkpoint-dir").map(std::path::PathBuf::from),
        checkpoint_every,
    };
    let outcome = triosim::run_sweep_with(&spec, &config).map_err(|e| e.to_string())?;

    println!(
        "sweep `{}` | {} scenarios | {} threads",
        outcome.name,
        outcome.results.len(),
        outcome.threads
    );
    println!(
        "elapsed       : {:.2}s ({:.2} scenarios/s)",
        outcome.elapsed_s,
        outcome.scenarios_per_sec()
    );
    if outcome.replayed > 0 {
        println!(
            "resumed       : {} of {} scenarios from journal",
            outcome.replayed,
            outcome.results.len()
        );
    }
    if outcome.failures() > 0 {
        println!(
            "failures      : {} (see `error` entries; {} panicked, {} over budget)",
            outcome.failures(),
            outcome.panicked(),
            outcome.budget_terminated()
        );
    }
    // Slowest scenarios dominate the wall clock; show where time went.
    let mut by_cost: Vec<&triosim::ScenarioResult> = outcome.results.iter().collect();
    by_cost.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
    for r in by_cost.iter().take(3) {
        println!("  {:>7.2}s  {}", r.wall_s, r.label);
    }
    if let Some(out) = opts.get("out") {
        std::fs::write(out, outcome.to_canonical_string()).map_err(|e| format!("{out}: {e}"))?;
        println!("aggregate     : {out}");
    }
    if let Some(path) = opts.get("metrics") {
        let file = std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .map_err(|e| format!("{path}: {e}"))?;
        let mut sink = PrometheusSink::new(file);
        let counters: [(&str, f64); 5] = [
            ("triosim_scenarios_total", outcome.results.len() as f64),
            ("triosim_scenarios_recovered_total", outcome.replayed as f64),
            ("triosim_scenarios_failed_total", outcome.failures() as f64),
            (
                "triosim_scenarios_panicked_total",
                outcome.panicked() as f64,
            ),
            (
                "triosim_scenarios_budget_terminated_total",
                outcome.budget_terminated() as f64,
            ),
        ];
        for (name, value) in counters {
            sink.counter_add(name, &[("sweep", &outcome.name)], value);
        }
        // Wall-clock self-profile spans as gauges (diagnostic series;
        // the canonical aggregate file never contains them).
        if let Some(p) = &outcome.profile {
            for (span, seconds, _calls) in p.flatten() {
                sink.gauge_set(
                    VirtualTime::ZERO,
                    "triosim_selfprof_seconds",
                    &[("sweep", &outcome.name), ("span", &span)],
                    seconds,
                );
            }
        }
        sink.finish().map_err(|e| format!("{path}: {e}"))?;
        println!("metrics       : {path}");
    }
    if let Some(p) = &outcome.profile {
        println!("self-profile (wall clock, diagnostic only):");
        print!("{}", p.render());
    }
    Ok(())
}

fn cmd_memory(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let gpus: u64 = parse_num(opts, "gpus", 1)?;
    let parallelism =
        Parallelism::from_str(opts.get("parallelism").map(String::as_str).unwrap_or("ddp"))?;
    let batch = parse_num(opts, "batch", trace.batch() * gpus)?;
    let est = estimate_memory(&trace, parallelism, gpus as usize, batch);
    let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
    println!(
        "{} | {gpus} GPUs | {parallelism} | global batch {batch}",
        trace.model()
    );
    println!("weights        : {:>8.2} GB", gb(est.weights));
    println!("gradients      : {:>8.2} GB", gb(est.gradients));
    println!("optimizer state: {:>8.2} GB", gb(est.optimizer_state));
    println!("activations    : {:>8.2} GB", gb(est.activations));
    println!("input          : {:>8.2} GB", gb(est.input));
    println!("total          : {:>8.2} GB", gb(est.total()));
    for gpu in GpuModel::ALL {
        let cap = gpu.spec().mem_capacity;
        println!(
            "  fits {:<5} ({:>3} GB): {}",
            gpu.to_string(),
            cap >> 30,
            if est.fits(cap) { "yes" } else { "NO" }
        );
    }
    Ok(())
}
