//! Structured simulation failures.
//!
//! Fault injection turns conditions that a fault-free simulation treats
//! as configuration bugs (and panics on) into runtime outcomes: a link
//! failure can partition the topology mid-run, and a GPU drop-out leaves
//! tasks that can never execute. [`SimError`] is the typed, non-panicking
//! surface for those outcomes.

use std::fmt;

/// A simulation ended early because an injected fault made the remaining
/// work impossible.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A link failure left two transfer endpoints with no connecting
    /// path, so an in-flight or newly started flow could never drain.
    Partitioned {
        /// Source node of the path that no longer exists.
        src: usize,
        /// Destination node of the path that no longer exists.
        dst: usize,
        /// Simulated time (seconds) at which the partition was detected.
        at_s: f64,
    },
    /// A GPU dropped out permanently; compute tasks pinned to it can
    /// never run, so the static task graph cannot complete.
    GpuLost {
        /// The lost GPU rank.
        gpu: usize,
        /// Simulated time (seconds) of the drop-out.
        at_s: f64,
    },
    /// The fault plan references entities the platform does not have, or
    /// carries out-of-domain values. The message names the offending
    /// plan entry.
    InvalidPlan(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Partitioned { src, dst, at_s } => write!(
                f,
                "network partitioned at t={at_s:.6}s: no path from n{src} to n{dst}"
            ),
            SimError::GpuLost { gpu, at_s } => write!(
                f,
                "gpu {gpu} dropped out at t={at_s:.6}s: its remaining tasks cannot run"
            ),
            SimError::InvalidPlan(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = SimError::Partitioned {
            src: 0,
            dst: 3,
            at_s: 0.5,
        };
        assert_eq!(
            e.to_string(),
            "network partitioned at t=0.500000s: no path from n0 to n3"
        );
        let e = SimError::GpuLost { gpu: 2, at_s: 1.0 };
        assert!(e.to_string().contains("gpu 2 dropped out"));
        let e = SimError::InvalidPlan("invalid fault plan: gpu 9 out of range".into());
        assert!(e.to_string().contains("gpu 9"));
    }
}
