//! Structured simulation failures.
//!
//! Fault injection turns conditions that a fault-free simulation treats
//! as configuration bugs (and panics on) into runtime outcomes: a link
//! failure can partition the topology mid-run, and a GPU drop-out leaves
//! tasks that can never execute. [`SimError`] is the typed, non-panicking
//! surface for those outcomes. Run budgets (the sweep engine's runaway
//! guards) terminate through the same surface: a scenario that blows its
//! event, sim-time, or wall-clock budget degrades to
//! [`SimError::BudgetExceeded`] instead of pinning its worker.

use std::fmt;

use triosim_des::BudgetKind;

/// A simulation ended early because an injected fault made the remaining
/// work impossible, or because it exceeded its run budget.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A link failure left two transfer endpoints with no connecting
    /// path, so an in-flight or newly started flow could never drain.
    Partitioned {
        /// Source node of the path that no longer exists.
        src: usize,
        /// Destination node of the path that no longer exists.
        dst: usize,
        /// Simulated time (seconds) at which the partition was detected.
        at_s: f64,
    },
    /// A GPU dropped out permanently; compute tasks pinned to it can
    /// never run, so the static task graph cannot complete.
    GpuLost {
        /// The lost GPU rank.
        gpu: usize,
        /// Simulated time (seconds) of the drop-out.
        at_s: f64,
    },
    /// The fault plan references entities the platform does not have, or
    /// carries out-of-domain values. The message names the offending
    /// plan entry.
    InvalidPlan(String),
    /// The run exceeded its [`RunBudget`](triosim_des::RunBudget) on the
    /// named axis. The rendering carries only the configured limit —
    /// never a measured value — so event-count and sim-time terminations
    /// serialize deterministically.
    BudgetExceeded {
        /// The budget axis that tripped.
        kind: BudgetKind,
        /// The configured limit on that axis (events, µs, or ms).
        limit: u64,
    },
    /// A checkpoint snapshot could not be written, read, or applied.
    /// Carries the typed cause; see [`CheckpointError`] for the taxonomy
    /// (I/O, corruption, spec mismatch, future format version).
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Partitioned { src, dst, at_s } => write!(
                f,
                "network partitioned at t={at_s:.6}s: no path from n{src} to n{dst}"
            ),
            SimError::GpuLost { gpu, at_s } => write!(
                f,
                "gpu {gpu} dropped out at t={at_s:.6}s: its remaining tasks cannot run"
            ),
            SimError::InvalidPlan(msg) => write!(f, "{msg}"),
            SimError::BudgetExceeded { kind, limit } => match kind {
                BudgetKind::Events => {
                    write!(f, "budget exceeded: more than {limit} events delivered")
                }
                BudgetKind::SimTime => {
                    write!(f, "budget exceeded: simulated time passed {limit}us")
                }
                BudgetKind::WallClock => {
                    write!(f, "budget exceeded: wall clock passed {limit}ms")
                }
            },
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = SimError::Partitioned {
            src: 0,
            dst: 3,
            at_s: 0.5,
        };
        assert_eq!(
            e.to_string(),
            "network partitioned at t=0.500000s: no path from n0 to n3"
        );
        let e = SimError::GpuLost { gpu: 2, at_s: 1.0 };
        assert!(e.to_string().contains("gpu 2 dropped out"));
        let e = SimError::InvalidPlan("invalid fault plan: gpu 9 out of range".into());
        assert!(e.to_string().contains("gpu 9"));
    }

    #[test]
    fn budget_displays_carry_only_the_limit() {
        let cases = [
            (
                BudgetKind::Events,
                "budget exceeded: more than 7 events delivered",
            ),
            (
                BudgetKind::SimTime,
                "budget exceeded: simulated time passed 7us",
            ),
            (
                BudgetKind::WallClock,
                "budget exceeded: wall clock passed 7ms",
            ),
        ];
        for (kind, expected) in cases {
            let e = SimError::BudgetExceeded { kind, limit: 7 };
            assert_eq!(e.to_string(), expected);
        }
    }
}
