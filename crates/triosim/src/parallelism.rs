//! Parallel training strategies (§2 / Figure 1 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the workload is partitioned across GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Every GPU holds the full model and processes a slice of the batch;
    /// gradients are AllReduced.
    ///
    /// `overlap = false` models `torch.nn.DataParallel` (one AllReduce
    /// after the whole backward pass); `overlap = true` models
    /// `DistributedDataParallel` (bucketed AllReduces overlapping the
    /// remaining backward computation).
    DataParallel {
        /// Overlap gradient communication with backward computation.
        overlap: bool,
    },
    /// Weight matrices of splittable layers are sharded across GPUs; each
    /// layer's partial outputs are gathered at the layer boundary.
    TensorParallel,
    /// Layers are assigned to pipeline stages (one per GPU); the
    /// mini-batch is split into `chunks` micro-batches flowing through
    /// the GPipe schedule.
    Pipeline {
        /// Number of micro-batches per mini-batch.
        chunks: u64,
    },
    /// Hybrid data x pipeline parallelism: `dp_groups` replicas, each a
    /// GPipe pipeline over `gpus / dp_groups` stages, with per-stage
    /// gradient AllReduce across the groups. An extension beyond the
    /// paper's DP/TP/PP set (Table 1 lists hybrid support as
    /// DistSim/vTrain territory).
    Hybrid {
        /// Number of data-parallel pipeline replicas.
        dp_groups: usize,
        /// Micro-batches per replica mini-batch.
        chunks: u64,
    },
}

impl Parallelism {
    /// Short label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            Parallelism::DataParallel { overlap: false } => "DP",
            Parallelism::DataParallel { overlap: true } => "DDP",
            Parallelism::TensorParallel => "TP",
            Parallelism::Pipeline { .. } => "PP",
            Parallelism::Hybrid { .. } => "HP",
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Pipeline { chunks } => write!(f, "PP(chunks={chunks})"),
            Parallelism::Hybrid { dp_groups, chunks } => {
                write!(f, "HP(dp={dp_groups},chunks={chunks})")
            }
            other => f.write_str(other.label()),
        }
    }
}

fn parse_field<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    s.parse().map_err(|e| format!("invalid {what} `{s}`: {e}"))
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    /// Parses the CLI/sweep-spec syntax:
    /// `dp | ddp | tp | pp[:chunks] | hp:groups[:chunks]`.
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["dp"] => Ok(Parallelism::DataParallel { overlap: false }),
            ["ddp"] => Ok(Parallelism::DataParallel { overlap: true }),
            ["tp"] => Ok(Parallelism::TensorParallel),
            ["pp"] => Ok(Parallelism::Pipeline { chunks: 1 }),
            ["pp", c] => Ok(Parallelism::Pipeline {
                chunks: parse_field(c, "chunk count")?,
            }),
            ["hp", g] => Ok(Parallelism::Hybrid {
                dp_groups: parse_field(g, "group count")?,
                chunks: 1,
            }),
            ["hp", g, c] => Ok(Parallelism::Hybrid {
                dp_groups: parse_field(g, "group count")?,
                chunks: parse_field(c, "chunk count")?,
            }),
            _ => Err(format!(
                "unknown parallelism `{spec}` (try dp, ddp, tp, pp:4, hp:2:4)"
            )),
        }
    }
}

impl std::str::FromStr for CollectiveStyle {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        match spec {
            "segmented" => Ok(CollectiveStyle::Segmented),
            "unsegmented" => Ok(CollectiveStyle::Unsegmented),
            "tree" => Ok(CollectiveStyle::Tree),
            "halving-doubling" | "halving_doubling" => Ok(CollectiveStyle::HalvingDoubling),
            _ => Err(format!(
                "unknown collective style `{spec}` (try segmented, unsegmented, tree, halving-doubling)"
            )),
        }
    }
}

/// Which ring-AllReduce variant data parallelism uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CollectiveStyle {
    /// NCCL-style segmented ring: each step moves a 1/n shard
    /// (reduce-scatter + all-gather). The default.
    #[default]
    Segmented,
    /// The unsegmented ring of §2 (full buffer forwarded every step),
    /// used by the wafer-scale case study.
    Unsegmented,
    /// Binomial tree: latency-optimal `O(log n)` steps, bandwidth-
    /// suboptimal `O(B log n)` volume — wins for small payloads.
    Tree,
    /// Recursive halving–doubling: `O(log n)` steps *and* optimal
    /// volume, but pairs ranks at power-of-two distances (falls back to
    /// the segmented ring when the group is not a power of two).
    HalvingDoubling,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Parallelism::DataParallel { overlap: false }.label(), "DP");
        assert_eq!(Parallelism::DataParallel { overlap: true }.label(), "DDP");
        assert_eq!(Parallelism::TensorParallel.to_string(), "TP");
        assert_eq!(
            Parallelism::Pipeline { chunks: 4 }.to_string(),
            "PP(chunks=4)"
        );
        assert_eq!(
            Parallelism::Hybrid {
                dp_groups: 2,
                chunks: 4
            }
            .to_string(),
            "HP(dp=2,chunks=4)"
        );
        assert_eq!(
            Parallelism::Hybrid {
                dp_groups: 2,
                chunks: 1
            }
            .label(),
            "HP"
        );
    }
}
