//! Per-GPU memory footprint estimation.
//!
//! The paper's experiment set is shaped by device memory everywhere:
//! Figure 6 drops models that "are out of memory when the batch size is
//! 256", Llama traces at batch 16 "to avoid out-of-memory issues", and
//! Figure 11 excludes transformers because tracing OOMs. This module
//! gives the simulator the same awareness: a static estimate of each
//! GPU's footprint under a parallelism strategy, checked against the
//! [`GpuSpec`](triosim_trace::GpuSpec) capacity.
//!
//! The estimate follows the standard training-footprint accounting:
//! weights + gradients + optimizer state (SGD with momentum: one extra
//! copy) + saved activations (every forward operator output is kept for
//! backward) + the input batch, with parallelism-specific sharding:
//!
//! * data parallelism — full replica, activations at the per-GPU batch;
//! * tensor parallelism — weights/gradients/optimizer sharded `1/n`,
//!   activations full size (each GPU sees the whole batch);
//! * pipeline parallelism — only the stage's layers, activations for all
//!   in-flight micro-batches (GPipe keeps every micro-batch's
//!   activations until its backward).

use triosim_trace::{Phase, Trace};

use crate::layers::summarize_layers;
use crate::parallelism::Parallelism;

/// A per-GPU memory footprint estimate, in bytes.
///
/// # Example
///
/// ```rust
/// use triosim::{estimate_memory, Parallelism};
/// use triosim_modelzoo::ModelId;
/// use triosim_trace::{GpuModel, Tracer};
///
/// let trace = Tracer::new(GpuModel::A40).trace(&ModelId::ResNet152.build(128));
/// let est = estimate_memory(&trace, Parallelism::DataParallel { overlap: true }, 2, 256);
/// assert!(est.total() > est.weights);
/// // ResNet-152 at 128/GPU fits a 48 GB A40...
/// assert!(est.fits(GpuModel::A40.spec().mem_capacity));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryEstimate {
    /// Model parameters resident on this GPU.
    pub weights: u64,
    /// Gradient buffers (same sharding as weights).
    pub gradients: u64,
    /// Optimizer state (SGD momentum: one fp32 copy per parameter).
    pub optimizer_state: u64,
    /// Saved forward activations needed by backward.
    pub activations: u64,
    /// The input batch slice.
    pub input: u64,
}

impl MemoryEstimate {
    /// Total footprint in bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.gradients + self.optimizer_state + self.activations + self.input
    }

    /// Whether the footprint fits a device of the given capacity, with
    /// the customary ~10% reserve for CUDA context and fragmentation.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        self.total() <= capacity_bytes - capacity_bytes / 10
    }
}

/// Estimates the peak per-GPU footprint of training `trace`'s model under
/// `parallelism` on `gpus` GPUs at `global_batch`.
///
/// The heaviest GPU is reported (stage 0 under pipeline parallelism,
/// which holds the largest activations).
///
/// # Panics
///
/// Panics if `gpus == 0` or `global_batch == 0`.
pub fn estimate_memory(
    trace: &Trace,
    parallelism: Parallelism,
    gpus: usize,
    global_batch: u64,
) -> MemoryEstimate {
    assert!(gpus > 0, "need at least one GPU");
    assert!(global_batch > 0, "batch must be positive");
    let layers = summarize_layers(trace);
    let param_bytes: u64 = layers.iter().map(|l| l.param_bytes).sum();
    let traced_batch = trace.batch();
    let scale = |bytes: u64, batch: u64| -> u64 {
        ((bytes as f64) * (batch as f64) / (traced_batch as f64)).ceil() as u64
    };

    // Activation bytes saved for backward = sum of every forward
    // operator's output, at the traced batch.
    let activation_bytes: u64 = trace
        .entries()
        .iter()
        .filter(|e| e.phase == Phase::Forward)
        .map(|e| e.op.bytes_out)
        .sum();
    let input_bytes = trace.entries()[0].op.bytes_in;

    match parallelism {
        Parallelism::DataParallel { .. } => {
            let per_gpu = (global_batch / gpus as u64).max(1);
            MemoryEstimate {
                weights: param_bytes,
                gradients: param_bytes,
                optimizer_state: param_bytes,
                activations: scale(activation_bytes, per_gpu),
                input: scale(input_bytes, per_gpu),
            }
        }
        Parallelism::TensorParallel => {
            // Splittable layers shard their parameters 1/n; the rest
            // replicate. Activations are full-batch everywhere.
            let sharded: u64 = layers
                .iter()
                .map(|l| {
                    if l.tp_splittable {
                        l.param_bytes / gpus as u64
                    } else {
                        l.param_bytes
                    }
                })
                .sum();
            MemoryEstimate {
                weights: sharded,
                gradients: sharded,
                optimizer_state: sharded,
                activations: scale(activation_bytes, global_batch),
                input: scale(input_bytes, global_batch),
            }
        }
        Parallelism::Hybrid { dp_groups, chunks } => {
            // Each group is a pipeline over gpus/dp_groups stages at the
            // per-group batch.
            let stages = (gpus / dp_groups).max(1);
            let per_group = (global_batch / dp_groups as u64).max(1);
            let stage_params = param_bytes / stages as u64;
            let _ = chunks;
            MemoryEstimate {
                weights: stage_params,
                gradients: stage_params,
                optimizer_state: stage_params,
                activations: scale(activation_bytes, per_group) / stages as u64,
                input: scale(input_bytes, per_group),
            }
        }
        Parallelism::Pipeline { chunks } => {
            // Heaviest stage approximation: a 1/gpus slice of parameters
            // and activations, but GPipe retains *all* micro-batches'
            // activations until the flush, so the activation term does
            // not shrink with chunking.
            let stage_params = param_bytes / gpus as u64;
            let stage_activations = scale(activation_bytes, global_batch) / gpus as u64;
            let _ = chunks; // all chunks' activations are live at the flush
            MemoryEstimate {
                weights: stage_params,
                gradients: stage_params,
                optimizer_state: stage_params,
                activations: stage_activations,
                input: scale(input_bytes, global_batch.max(1)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triosim_modelzoo::ModelId;
    use triosim_trace::{GpuModel, Tracer};

    fn trace(model: ModelId, batch: u64) -> Trace {
        Tracer::new(GpuModel::A100).trace(&model.build(batch))
    }

    #[test]
    fn dp_triples_parameter_memory() {
        let t = trace(ModelId::ResNet50, 32);
        let est = estimate_memory(&t, Parallelism::DataParallel { overlap: true }, 2, 64);
        let params = t.gradient_bytes();
        assert_eq!(est.weights, params);
        assert_eq!(est.gradients, params);
        assert_eq!(est.optimizer_state, params);
    }

    #[test]
    fn activations_scale_with_per_gpu_batch() {
        let t = trace(ModelId::Vgg11, 32);
        let small = estimate_memory(&t, Parallelism::DataParallel { overlap: true }, 4, 64);
        let big = estimate_memory(&t, Parallelism::DataParallel { overlap: true }, 4, 256);
        assert!(
            (big.activations as f64 / small.activations as f64 - 4.0).abs() < 0.01,
            "{} vs {}",
            big.activations,
            small.activations
        );
    }

    #[test]
    fn tp_shards_weights_not_activations() {
        let t = trace(ModelId::Vgg16, 32);
        let solo = estimate_memory(&t, Parallelism::TensorParallel, 1, 32);
        let four = estimate_memory(&t, Parallelism::TensorParallel, 4, 32);
        assert!(four.weights < solo.weights / 2, "weights shard");
        assert_eq!(four.activations, solo.activations, "activations replicate");
    }

    #[test]
    fn pipeline_splits_both() {
        let t = trace(ModelId::ResNet101, 32);
        let solo = estimate_memory(&t, Parallelism::Pipeline { chunks: 2 }, 1, 32);
        let four = estimate_memory(&t, Parallelism::Pipeline { chunks: 2 }, 4, 32);
        assert!(four.weights <= solo.weights / 3);
        assert!(four.activations <= solo.activations / 3);
    }

    #[test]
    fn oom_reproduces_figure6_exclusions() {
        // The paper runs Figure 6 at batch 256 and drops models that OOM.
        // Small ResNets fit; VGG's 4096-wide classifier activations plus
        // 138M params at batch 256 famously pressure a 48 GB A40 much
        // harder.
        let fits = |model: ModelId| {
            let t = trace(model, 128);
            estimate_memory(&t, Parallelism::DataParallel { overlap: false }, 1, 256)
                .fits(GpuModel::A40.spec().mem_capacity)
        };
        assert!(fits(ModelId::ResNet18));
        assert!(fits(ModelId::ResNet50));
        // Activation-heavy nets consume multiples of ResNet-18's footprint.
        let t18 = trace(ModelId::ResNet18, 128);
        let tvgg = trace(ModelId::Vgg19, 128);
        let m18 = estimate_memory(&t18, Parallelism::DataParallel { overlap: false }, 1, 256);
        let mvgg = estimate_memory(&tvgg, Parallelism::DataParallel { overlap: false }, 1, 256);
        assert!(mvgg.total() > 2 * m18.total());
    }

    #[test]
    fn llama_at_256_overflows_even_h100() {
        let t = trace(ModelId::Llama32_1B, 4);
        let est = estimate_memory(&t, Parallelism::DataParallel { overlap: true }, 1, 256);
        assert!(
            !est.fits(GpuModel::H100.spec().mem_capacity),
            "llama @256 should OOM: {} GB",
            est.total() >> 30
        );
    }

    #[test]
    fn totals_sum_components() {
        let t = trace(ModelId::BertBase, 8);
        let est = estimate_memory(&t, Parallelism::DataParallel { overlap: true }, 2, 16);
        assert_eq!(
            est.total(),
            est.weights + est.gradients + est.optimizer_state + est.activations + est.input
        );
    }
}
