//! Sharded parallel execution along the iteration axis (DESIGN.md §12).
//!
//! A training run simulates the same task graph `N` times back to back.
//! Between iterations the simulation is *quiescent*: the event queue is
//! fully drained (heap and cancelled set empty) and the network carries
//! no in-flight flows — the graph cannot complete otherwise. On the
//! sharded path's gating conditions (no faults, no observability, an
//! iteration-invariant network that can be forked pristine), iteration
//! `k` is therefore a pure time-shifted replay of iteration 0: it sees a
//! behaviorally pristine network and starts at `k × T1`, where `T1` is
//! the duration of one iteration. That gives the conservative-lookahead
//! argument its strongest possible form — the lookahead between
//! iteration shards is the *entire iteration*, so shards never need to
//! exchange boundary events at all.
//!
//! Concretely:
//!
//! 1. A serial **probe** runs iteration 0 on the real network under the
//!    real budget, measuring `T1`.
//! 2. The remaining `N - 1` iterations are split into contiguous blocks,
//!    one per worker thread. Each block runs on a pristine fork of the
//!    network with its clock started at `k × T1` — exactly where the
//!    serial run would have placed its first iteration.
//! 3. The **committer** validates that every iteration ended exactly
//!    where the probe's `T1` predicts (any mismatch falls back to a full
//!    serial rerun — correctness never depends on the shift argument
//!    holding), replays deterministic budget axes over the merged event
//!    times, and folds per-block statistics into the probe's.
//!
//! Every merged quantity is an integer (ticks, bytes, counts) or a raw
//! record list sorted by a total key, so the merge is associative and
//! the final [`SimReport`]'s canonical JSON is **byte-identical** to the
//! single-threaded oracle's at any shard count.

use std::thread;

use triosim_des::{QueueStats, RunBudget, TimeSpan, VirtualTime};
use triosim_faults::FaultPlan;
use triosim_network::NetworkModel;

use crate::error::SimError;
use crate::executor::{
    bottleneck_report, execute_block, execute_budgeted, BlockOutcome, Observability,
};
use crate::report::{union_length, SimReport};
use crate::taskgraph::TaskGraph;

/// Executes `graph` for `iterations` iterations using up to `shards`
/// worker threads, producing a report byte-identical to the serial
/// [`execute_budgeted`] run with an empty fault plan and observability
/// off (callers gate on those two conditions — see `SimBuilder`).
///
/// Models that cannot be forked pristinely (or are not
/// iteration-invariant) simply take the serial path here; shard count
/// provably never changes output bytes, only wall-clock time.
///
/// # Errors
///
/// Exactly the serial path's: [`SimError::BudgetExceeded`] with the same
/// kind and limit on deterministic-axis trips (replayed in canonical
/// event order), or a wall-clock trip from whichever part of the run hit
/// the host deadline first.
///
/// # Panics
///
/// Panics if `shards < 2` or `iterations < 2` (the caller's gate).
pub(crate) fn execute_sharded(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    shards: usize,
    budget: RunBudget,
) -> Result<SimReport, SimError> {
    assert!(shards >= 2, "sharded execution needs at least two shards");
    assert!(
        iterations >= 2,
        "sharded execution needs at least two iterations"
    );
    let fallback = if !network.iteration_invariant() {
        Some("the network model is not iteration-invariant")
    } else if network.stats_snapshot().is_none() {
        Some("the network model does not expose a stats snapshot")
    } else if network.fork_pristine().is_none() {
        Some("the network model cannot be forked pristinely")
    } else {
        None
    };
    if let Some(reason) = fallback {
        eprintln!(
            "warning: shard request ignored ({reason}); running serially — output bytes are \
             unchanged"
        );
        return execute_budgeted(
            graph,
            network,
            iterations,
            Observability::off(),
            &FaultPlan::default(),
            budget,
        );
    }

    // Deterministic budget axes are enforced live on the probe and
    // *replayed* over the blocks' recorded event times at commit.
    let replay = budget.has_deterministic_axes();

    // Phase 1: serial probe — iteration 0 on the real network, real
    // budget. Its trips are the serial run's trips.
    let probe = execute_block(
        graph,
        network,
        VirtualTime::ZERO,
        0,
        1,
        budget.clone(),
        false,
    );
    if let Some(e) = probe.error {
        return Err(e);
    }
    let t1_end = *probe.iter_ends.last().expect("probe ran one iteration");
    let t1 = t1_end - VirtualTime::ZERO;
    if t1.is_zero() {
        // A zero-length iteration gives blocks no time offset to anchor
        // to; degenerate, and not worth threading. Serial rerun.
        return serial_rerun(graph, network, iterations, budget);
    }

    // Phase 2: contiguous iteration blocks, one worker each.
    let remaining = iterations - 1;
    let workers = shards.min(remaining);
    let base = remaining / workers;
    let extra = remaining % workers;
    // (first global iteration index, iteration count) per block.
    let mut layout = Vec::with_capacity(workers);
    let mut next = 1usize;
    for b in 0..workers {
        let len = base + usize::from(b < extra);
        layout.push((next, len));
        next += len;
    }
    let wall = budget.wall_only();
    let block_origin =
        |first: usize| -> VirtualTime { VirtualTime::from_femtos(t1.as_femtos() * first as u64) };
    let mut blocks: Vec<(BlockOutcome, Box<dyn NetworkModel + Send>)> = thread::scope(|scope| {
        let handles: Vec<_> = layout
            .iter()
            .map(|&(first, len)| {
                let mut fork = network
                    .fork_pristine()
                    .expect("gated on a forkable network model");
                let wall = wall.clone();
                scope.spawn(move || {
                    let out = execute_block(
                        graph,
                        fork.as_mut(),
                        block_origin(first),
                        first,
                        len,
                        wall,
                        replay,
                    );
                    (out, fork)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    // Phase 3: commit. First validate the time-shift argument held: every
    // iteration must have ended exactly on the `T1` grid. A single
    // mismatch discards all sharded state and reruns serially — the
    // fallback is the oracle, so correctness never rests on the shift.
    let on_grid = layout.iter().zip(&blocks).all(|(&(first, len), (out, _))| {
        out.error.is_some()
            || (out.iter_ends.len() == len
                && out
                    .iter_ends
                    .iter()
                    .enumerate()
                    .all(|(i, &end)| end == block_origin(first + i + 1)))
    });
    if !on_grid {
        return serial_rerun(graph, network, iterations, budget);
    }

    // Deterministic budget replay over the blocks' event times in
    // canonical (block, event) order — identical to the serial order
    // because block k's events all precede block k+1's. The replay wins
    // over any block's wall-clock error: the serial run would have
    // tripped the deterministic axis at that exact event too.
    if replay {
        let det = budget.deterministic_only();
        let mut events = probe.budget_events;
        for (out, _) in &blocks {
            for &t in &out.event_times {
                events += 1;
                if let Some((kind, limit)) = det.check(events, t) {
                    return Err(SimError::BudgetExceeded { kind, limit });
                }
            }
        }
    }
    if let Some(e) = blocks.iter_mut().find_map(|(out, _)| out.error.take()) {
        return Err(e);
    }

    // Exact merge, in block order (== iteration order). Integer sums and
    // stable re-sorts only — see the module docs.
    let mut attr = probe.attr;
    let mut queue_stats: QueueStats = probe.queue_stats;
    let mut gpu_busy: Vec<TimeSpan> = probe.gpu_busy;
    let mut comm_intervals = probe.comm_intervals;
    let mut timeline = probe.timeline;
    let mut bytes = probe.bytes_transferred;
    for (out, fork) in blocks {
        attr.absorb(&out.attr);
        queue_stats.merge(&out.queue_stats);
        for (mine, theirs) in gpu_busy.iter_mut().zip(&out.gpu_busy) {
            *mine += *theirs;
        }
        comm_intervals.extend(out.comm_intervals);
        timeline.extend(out.timeline);
        bytes += out.bytes_transferred;
        let snap = fork.stats_snapshot().expect("gated on snapshot support");
        network.absorb_stats(&snap);
    }
    let total = VirtualTime::from_femtos(t1.as_femtos() * iterations as u64) - VirtualTime::ZERO;
    let bottleneck = bottleneck_report(network, &attr, total, None);
    let comm_busy = union_length(comm_intervals);
    timeline.sort_by_key(|r| (r.start, r.end));
    let mut report = SimReport::new(
        total,
        gpu_busy,
        comm_busy,
        bytes,
        graph.len() * iterations,
        queue_stats,
        network.observe(),
        timeline,
    );
    report.set_bottleneck(bottleneck);
    Ok(report)
}

/// The sharded path's escape hatch: a full serial run on a pristine fork
/// of the network (the probe already consumed iteration 0 of the real
/// one), producing exactly what the serial path would have.
fn serial_rerun(
    graph: &TaskGraph,
    network: &mut dyn NetworkModel,
    iterations: usize,
    budget: RunBudget,
) -> Result<SimReport, SimError> {
    let mut fresh = network
        .fork_pristine()
        .expect("gated on a forkable network model");
    execute_budgeted(
        graph,
        fresh.as_mut(),
        iterations,
        Observability::off(),
        &FaultPlan::default(),
        budget,
    )
}
