//! Binds the generic sweep engine ([`triosim_sweep`]) to the simulator.
//!
//! The sweep crate owns the declarative [`SweepSpec`] and the
//! index-ordered work-stealing pool; this module owns everything that
//! requires simulator knowledge:
//!
//! * parsing scenario strings (`"ddp"`, `"p2:4"`, `"reference"`) into
//!   typed configuration, reported per scenario with its index and label;
//! * sharing expensive read-only artifacts across scenarios — the
//!   synthetic trace (parsed/generated once per unique
//!   model x batch x GPU behind an [`Arc`]) and the calibrated Li's
//!   Models (one ridge regression per GPU model, not per scenario);
//! * executing each scenario in full isolation: its own DES engine and
//!   its own [`FlowNetwork`] state, so no scenario can observe another's
//!   scheduling;
//! * deterministic aggregation: the canonical sweep JSON
//!   ([`SweepOutcome::to_canonical_string`]) contains only
//!   simulation-determined data, ordered by scenario index — byte-
//!   identical across thread counts, including `threads == 1`.
//!
//! Wall-clock numbers (per-scenario and sweep-level) are collected
//! alongside but kept **out** of the canonical form; they feed the CLI's
//! stdout summary and the `bench_sweep` artifact instead.
//!
//! # Crash safety
//!
//! [`run_sweep_with`] adds the durability layer on top:
//!
//! * **Journaling** ([`SweepRunConfig::journal`]): each completed
//!   scenario's canonical result (or deterministic error entry) is
//!   appended to a JSONL [`journal`] and fsync'd as it finishes.
//! * **Resume** ([`SweepRunConfig::resume`]): completed entries are
//!   replayed from the journal (after a spec-hash compatibility check)
//!   and only the remaining scenarios execute; the final
//!   [`SweepOutcome`] is byte-identical to an uninterrupted run at any
//!   thread count.
//! * **Panic isolation**: each scenario runs under `catch_unwind`, so
//!   one panicking scenario degrades to a structured
//!   [`ScenarioError::Panicked`] entry instead of aborting the sweep
//!   ([`SweepRunConfig::fail_fast`] restores the aborting behavior).
//! * **Runaway guards**: a scenario's `max_events` / `max_sim_time_us` /
//!   `wall_timeout_ms` fields become a [`RunBudget`], and blowing it
//!   degrades to a [`ScenarioError::Budget`] entry exactly like
//!   fault-terminated scenarios.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use serde::Value;
use triosim_des::RunBudget;
use triosim_network::{
    FlowNetwork, FlowNetworkConfig, NetworkModel, PacketNetwork, ReallocationMode,
};
use triosim_obs::{SelfProfile, SelfProfiler};
use triosim_perfmodel::LisModel;
use triosim_trace::{GpuModel, Trace, Tracer};

pub use triosim_sweep::journal;
pub use triosim_sweep::{
    pool::run_ordered, Scenario, ScenarioPatch, SpecError, SweepProgress, SweepSpec,
};

use crate::compute::{ComputeModel, Fidelity};
use crate::error::SimError;
use crate::parallelism::{CollectiveStyle, Parallelism};
use crate::platform::Platform;
use crate::session::SimBuilder;
use journal::{
    read_journal, spec_hash, EntryOutcome, ErrorKind, JournalEntry, JournalHeader, JournalWriter,
};
use triosim_faults::FaultPlan;
use triosim_modelzoo::ModelId;

/// A sweep failed before any scenario ran.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec itself was malformed (parse/expansion failure).
    Spec(SpecError),
    /// A scenario's configuration string did not parse.
    Scenario {
        /// Index of the offending scenario in expansion order.
        index: usize,
        /// Its (possibly auto-generated) label.
        label: String,
        /// What failed to parse.
        error: String,
    },
    /// The journal could not be created, read, or replayed — including a
    /// stale journal whose spec hash no longer matches the spec.
    Journal(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::Scenario {
                index,
                label,
                error,
            } => write!(f, "scenario {index} ({label}): {error}"),
            SweepError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

/// How one scenario failed. Every variant renders deterministically, so
/// error entries are part of the canonical (byte-identical) sweep output.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A structured simulation error: fault-induced termination
    /// (`Partitioned` / `GpuLost`) or an invalid configuration. Holds
    /// the `SimError` rendering verbatim.
    Sim(String),
    /// The scenario blew an axis of its run budget. Holds the
    /// `SimError::BudgetExceeded` rendering verbatim (which names only
    /// the configured limit, never a measured value).
    Budget(String),
    /// The scenario's worker panicked; the panic was isolated instead of
    /// aborting the sweep.
    Panicked {
        /// The scenario's index in expansion order.
        index: usize,
        /// The panic payload's message (when it was a string).
        message: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Sim(msg) | ScenarioError::Budget(msg) => f.write_str(msg),
            ScenarioError::Panicked { index, message } => {
                write!(f, "scenario {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One scenario's fully-parsed, ready-to-run configuration. `exec` is
/// `None` for scenarios whose result was replayed from a journal — their
/// strings are still parsed (so configuration errors surface
/// deterministically) but the expensive artifacts are not built.
struct ResolvedScenario {
    scenario: Scenario,
    exec: Option<ExecScenario>,
}

/// The expensive, execution-only half of a resolved scenario.
struct ExecScenario {
    trace: Arc<Trace>,
    platform: Platform,
    parallelism: Parallelism,
    global_batch: Option<u64>,
    fidelity: Fidelity,
    collective: CollectiveStyle,
    iterations: usize,
    realloc: ReallocationMode,
    compute: ComputeModel,
    faults: Option<FaultPlan>,
    fault_seed: Option<u64>,
    shards: usize,
}

/// The outcome of one scenario: its canonical report (or a deterministic
/// structured error) plus its wall time.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario label.
    pub label: String,
    /// Canonical report JSON on success; a [`ScenarioError`] whose
    /// rendering is deterministic when the scenario failed.
    pub outcome: Result<Value, ScenarioError>,
    /// Wall-clock seconds this scenario took (excluded from canonical
    /// output — it varies run to run; zero for journal-replayed results).
    pub wall_s: f64,
    /// This scenario's self-profile when [`SweepRunConfig::profile`] was
    /// set (excluded from canonical output — wall clock only; `None` for
    /// journal-replayed results and unprofiled runs).
    pub profile: Option<SelfProfile>,
}

/// A completed sweep: per-scenario results in expansion order plus
/// timing.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec's name.
    pub name: String,
    /// The expanded scenarios, in order.
    pub scenarios: Vec<Scenario>,
    /// Per-scenario results, index-aligned with `scenarios`.
    pub results: Vec<ScenarioResult>,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// End-to-end wall-clock seconds (excluded from canonical output).
    pub elapsed_s: f64,
    /// Scenarios replayed from a journal instead of executed (excluded
    /// from canonical output — a resumed run must be byte-identical to
    /// an uninterrupted one).
    pub replayed: usize,
    /// Sweep-level self-profile when [`SweepRunConfig::profile`] was
    /// set: the resolve / execute / aggregate phases plus every
    /// scenario's profile merged under `scenarios`. Wall clock only,
    /// excluded from canonical output.
    pub profile: Option<SelfProfile>,
}

impl SweepOutcome {
    /// The deterministic aggregate: spec name, scenario configurations,
    /// and per-scenario reports/errors, ordered by scenario index, with
    /// every wall-clock field excluded. Byte-identical across thread
    /// counts, hosts, and resume boundaries.
    pub fn to_canonical_json(&self) -> Value {
        let results = self
            .scenarios
            .iter()
            .zip(&self.results)
            .map(|(scenario, r)| {
                let mut fields = vec![
                    ("label".to_string(), Value::Str(r.label.clone())),
                    ("scenario".to_string(), serde::Serialize::to_value(scenario)),
                ];
                match &r.outcome {
                    Ok(report) => fields.push(("report".to_string(), report.clone())),
                    Err(e) => fields.push(("error".to_string(), Value::Str(e.to_string()))),
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "scenario_count".to_string(),
                Value::UInt(self.scenarios.len() as u64),
            ),
            ("results".to_string(), Value::Array(results)),
        ])
    }

    /// [`to_canonical_json`](Self::to_canonical_json) as a compact JSON
    /// string (what `triosim-cli sweep --out` writes).
    pub fn to_canonical_string(&self) -> String {
        serde_json::to_string(&self.to_canonical_json())
            .expect("canonical sweep JSON has no non-finite floats")
    }

    /// Number of scenarios that ended in an error entry (of any kind).
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Number of scenarios isolated after a panic.
    pub fn panicked(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Err(ScenarioError::Panicked { .. })))
            .count()
    }

    /// Number of scenarios terminated by their run budget.
    pub fn budget_terminated(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Err(ScenarioError::Budget(_))))
            .count()
    }

    /// Sweep throughput: scenarios per wall-clock second.
    pub fn scenarios_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.elapsed_s.max(1e-9)
    }
}

/// Parses every scenario and pre-builds the shared artifacts, serially —
/// so parse errors surface deterministically (lowest index first) before
/// any simulation work starts, and so the caches need no locking during
/// the parallel phase. Scenarios whose index is in `skip` (journal
/// replays) are parsed but their trace and compute model are not built.
///
/// When `prof` is enabled, cache *misses* (each unique trace build and
/// Li's Model calibration) are timed and reported as `trace_build` /
/// `calibration` spans relative to the caller's open span; cache hits
/// never read the clock.
fn resolve_scenarios(
    scenarios: Vec<Scenario>,
    skip: &HashSet<usize>,
    prof: &mut SelfProfiler,
) -> Result<Vec<ResolvedScenario>, SweepError> {
    let profiling = prof.is_enabled();
    let mut trace_wall = (0.0f64, 0u64);
    let mut cal_wall = (0.0f64, 0u64);
    let mut traces: HashMap<(String, u64, GpuModel), Arc<Trace>> = HashMap::new();
    let mut lis: HashMap<GpuModel, LisModel> = HashMap::new();
    let mut calibrate = |gpu: GpuModel, cache: &mut HashMap<GpuModel, LisModel>| {
        if let Some(model) = cache.get(&gpu) {
            return model.clone();
        }
        let t0 = profiling.then(Instant::now);
        let model = LisModel::calibrated(gpu);
        if let Some(t0) = t0 {
            cal_wall.0 += t0.elapsed().as_secs_f64();
            cal_wall.1 += 1;
        }
        cache.insert(gpu, model.clone());
        model
    };
    let mut resolved = Vec::with_capacity(scenarios.len());
    for (index, scenario) in scenarios.into_iter().enumerate() {
        let fail = |error: String| SweepError::Scenario {
            index,
            label: scenario.label.clone(),
            error,
        };
        let model = ModelId::from_str(&scenario.model).map_err(&fail)?;
        let gpu = GpuModel::from_str(&scenario.gpu).map_err(&fail)?;
        let platform = Platform::from_str(&scenario.platform).map_err(&fail)?;
        let parallelism = Parallelism::from_str(&scenario.parallelism).map_err(&fail)?;
        let fidelity = Fidelity::from_str(&scenario.fidelity).map_err(&fail)?;
        let collective = CollectiveStyle::from_str(&scenario.collective).map_err(&fail)?;
        let realloc = ReallocationMode::from_str(&scenario.realloc).map_err(&fail)?;
        if scenario.iterations == 0 {
            return Err(fail("iterations must be at least 1".into()));
        }
        if skip.contains(&index) {
            resolved.push(ResolvedScenario {
                scenario,
                exec: None,
            });
            continue;
        }
        let trace = match traces.entry((scenario.model.clone(), scenario.trace_batch, gpu)) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(v) => {
                let t0 = profiling.then(Instant::now);
                let built = Arc::new(Tracer::new(gpu).trace(&model.build(scenario.trace_batch)));
                if let Some(t0) = t0 {
                    trace_wall.0 += t0.elapsed().as_secs_f64();
                    trace_wall.1 += 1;
                }
                v.insert(built).clone()
            }
        };
        let compute = ComputeModel::resolve_with(fidelity, gpu, &platform, parallelism, &mut |g| {
            calibrate(g, &mut lis)
        });
        let exec = ExecScenario {
            faults: scenario.faults.clone(),
            fault_seed: scenario.fault_seed,
            global_batch: scenario.global_batch,
            iterations: scenario.iterations as usize,
            shards: (scenario.shards as usize).max(1),
            trace,
            platform,
            parallelism,
            fidelity,
            collective,
            realloc,
            compute,
        };
        resolved.push(ResolvedScenario {
            scenario,
            exec: Some(exec),
        });
    }
    prof.add_path(&["trace_build"], trace_wall.0, trace_wall.1);
    prof.add_path(&["calibration"], cal_wall.0, cal_wall.1);
    Ok(resolved)
}

/// Runs one resolved scenario in full isolation: fresh network state,
/// fresh DES engine, nothing shared but the read-only trace and compute
/// model. An enabled `prof` routes through the profiled session path
/// (graph build / network build / engine loop spans); profiling never
/// changes the canonical report bytes.
fn run_scenario(
    r: &ResolvedScenario,
    shard_cap: usize,
    prof: &mut SelfProfiler,
    ckpt: Option<(&Path, usize, usize)>,
) -> Result<Value, ScenarioError> {
    let e = r
        .exec
        .as_ref()
        .expect("only pending scenarios are executed");
    let s = &r.scenario;
    // Reconstructible builder: a stale per-scenario snapshot must not
    // fail the scenario, so the rerun-from-scratch path rebuilds the
    // whole configuration (network state included) from the same inputs.
    let mk = || {
        let topo = e.platform.topology().clone();
        // The reallocation-mode knob only exists on the flow tiers; the
        // packet tier re-simulates its busy period instead.
        let network: Box<dyn NetworkModel> = match e.fidelity {
            Fidelity::TrioSim => {
                let mut n = FlowNetwork::new(topo);
                n.set_reallocation_mode(e.realloc);
                Box::new(n)
            }
            Fidelity::Reference => {
                let mut n = FlowNetwork::with_config(topo, FlowNetworkConfig::reference());
                n.set_reallocation_mode(e.realloc);
                Box::new(n)
            }
            Fidelity::Packet => Box::new(PacketNetwork::new(topo)),
        };
        let mut builder = SimBuilder::new(&e.trace, &e.platform)
            .parallelism(e.parallelism)
            .fidelity(e.fidelity)
            .compute_model(e.compute.clone())
            .collective_style(e.collective)
            .iterations(e.iterations)
            // Intra-scenario sharding never oversubscribes the host: the
            // pool's workers and each scenario's shard threads multiply, so
            // the cap divides the cores among the pool workers. Shard count
            // is gated on byte-identity, so clamping cannot change output.
            .shards(e.shards.min(shard_cap).max(1))
            .network(network);
        if let Some(batch) = e.global_batch {
            builder = builder.global_batch(batch);
        }
        if let Some(plan) = &e.faults {
            builder = builder.faults(plan.clone());
        }
        if let Some(seed) = e.fault_seed {
            builder = builder.fault_seed(seed);
        }
        // Runaway guard: built here (not at resolve time) because the
        // wall-clock deadline arms the moment it is constructed.
        if s.max_events.is_some() || s.max_sim_time_us.is_some() || s.wall_timeout_ms.is_some() {
            let mut budget = RunBudget::unlimited();
            if let Some(n) = s.max_events {
                budget = budget.with_max_events(n);
            }
            if let Some(us) = s.max_sim_time_us {
                budget = budget.with_max_sim_time_us(us);
            }
            if let Some(ms) = s.wall_timeout_ms {
                budget = budget.with_wall_timeout_ms(ms);
            }
            builder = builder.budget(budget);
        }
        builder
    };
    let ckpt_path =
        ckpt.map(|(dir, every, index)| (dir.join(format!("scenario-{index}.ckpt")), every));
    let mut builder = mk();
    let mut resuming = false;
    if let Some((path, every)) = &ckpt_path {
        builder = builder.checkpoint(path, *every);
        if path.exists() {
            resuming = true;
            builder = builder.restore(path);
        }
    }
    let mut run = if prof.is_enabled() {
        builder.try_run_profiled(prof)
    } else {
        builder.try_run()
    };
    if resuming {
        if let Err(SimError::Checkpoint(ce)) = &run {
            // A stale or corrupt snapshot (e.g. the spec changed between
            // sweep invocations) must not fail the scenario: warn, drop
            // it, and rerun from scratch with checkpointing still on.
            let (path, every) = ckpt_path
                .as_ref()
                .expect("resuming implies a snapshot path");
            eprintln!(
                "warning: scenario snapshot {} unusable ({ce}); rerunning from scratch",
                path.display()
            );
            std::fs::remove_file(path).ok();
            let fresh = mk().checkpoint(path, *every);
            run = if prof.is_enabled() {
                fresh.try_run_profiled(prof)
            } else {
                fresh.try_run()
            };
        }
    }
    if run.is_ok() {
        // The scenario finished; its snapshot has served its purpose.
        if let Some((path, _)) = &ckpt_path {
            std::fs::remove_file(path).ok();
        }
    }
    run.map(|report| report.to_canonical_json())
        .map_err(|e| match e {
            SimError::BudgetExceeded { .. } => ScenarioError::Budget(e.to_string()),
            other => ScenarioError::Sim(other.to_string()),
        })
}

/// [`run_scenario`] with panic isolation (unless `fail_fast`): a panic
/// inside the scenario becomes a structured [`ScenarioError::Panicked`]
/// instead of unwinding into the pool.
fn execute_one(
    r: &ResolvedScenario,
    index: usize,
    fail_fast: bool,
    shard_cap: usize,
    prof: &mut SelfProfiler,
    ckpt: Option<(&Path, usize)>,
) -> Result<Value, ScenarioError> {
    let ckpt = ckpt.map(|(dir, every)| (dir, every, index));
    if fail_fast {
        return run_scenario(r, shard_cap, prof, ckpt);
    }
    match catch_unwind(AssertUnwindSafe(|| run_scenario(r, shard_cap, prof, ckpt))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(ScenarioError::Panicked {
            index,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lowers one fresh result into its journal entry.
fn to_entry(index: usize, label: &str, outcome: &Result<Value, ScenarioError>) -> JournalEntry {
    let outcome = match outcome {
        Ok(report) => EntryOutcome::Report(report.clone()),
        Err(ScenarioError::Sim(m)) => EntryOutcome::Error {
            kind: ErrorKind::Sim,
            message: m.clone(),
        },
        Err(ScenarioError::Budget(m)) => EntryOutcome::Error {
            kind: ErrorKind::Budget,
            message: m.clone(),
        },
        // Panic entries store the raw payload message; the index lives in
        // the entry itself, so replay rebuilds the identical rendering.
        Err(ScenarioError::Panicked { message, .. }) => EntryOutcome::Error {
            kind: ErrorKind::Panic,
            message: message.clone(),
        },
    };
    JournalEntry {
        index,
        label: label.to_string(),
        outcome,
    }
}

/// Raises one journal entry back into the result a live run would have
/// produced (wall time excepted — replay is free).
fn from_entry(entry: JournalEntry) -> (usize, ScenarioResult) {
    let index = entry.index;
    let outcome = match entry.outcome {
        EntryOutcome::Report(report) => Ok(report),
        EntryOutcome::Error { kind, message } => Err(match kind {
            ErrorKind::Sim => ScenarioError::Sim(message),
            ErrorKind::Budget => ScenarioError::Budget(message),
            ErrorKind::Panic => ScenarioError::Panicked { index, message },
        }),
    };
    (
        index,
        ScenarioResult {
            label: entry.label,
            outcome,
            wall_s: 0.0,
            profile: None,
        },
    )
}

/// Crash-safety and execution options for [`run_sweep_with`].
#[derive(Debug, Default)]
pub struct SweepRunConfig {
    /// Worker threads for the pool (clamped to at least 1).
    pub threads: usize,
    /// Live progress reporting on stderr.
    pub progress: bool,
    /// Write an fsync'd scenario journal to this path (truncates any
    /// existing file). Mutually exclusive with `resume`.
    pub journal: Option<PathBuf>,
    /// Resume from this journal: replay its completed entries, execute
    /// only the rest, and keep appending new entries to the same file.
    pub resume: Option<PathBuf>,
    /// Abort the whole sweep on the first scenario panic (pre-isolation
    /// behavior) instead of degrading it to an error entry.
    pub fail_fast: bool,
    /// The raw spec text, recorded in a newly created journal's header
    /// so `--resume` can reconstruct the sweep without the spec file.
    pub spec_text: Option<String>,
    /// Collect wall-clock self-profiles: per-scenario (resolve spans,
    /// engine loop, journal I/O) and rolled up sweep-wide into
    /// [`SweepOutcome::profile`]. Diagnostic only — the canonical sweep
    /// output is byte-identical with profiling on or off.
    pub profile: bool,
    /// Write per-scenario engine snapshots (`scenario-<index>.ckpt`)
    /// into this directory at iteration boundaries. A journaled sweep
    /// killed mid-scenario then resumed restarts that scenario from its
    /// last boundary instead of from scratch; snapshots are deleted as
    /// their scenarios complete, and a stale or corrupt snapshot demotes
    /// to a warning plus a from-scratch rerun. Checkpointed scenarios
    /// run serially (per-scenario sharding is gated off with a warning).
    pub checkpoint_dir: Option<PathBuf>,
    /// Iteration boundaries between snapshots (`0` means every
    /// boundary). Only meaningful with `checkpoint_dir`.
    pub checkpoint_every: usize,
}

/// Expands `spec` and runs every scenario on `threads` worker threads,
/// with panic isolation and no journaling.
///
/// Scenarios are claimed work-stealing style (uneven scenario costs
/// cannot idle workers behind a static shard) and collected by index, so
/// the returned outcome's canonical form does not depend on `threads`.
/// Scenario failures — fault-induced (`SimError::Partitioned` /
/// `GpuLost`), budget-induced, or a panic — do not abort the sweep: they
/// become that scenario's deterministic error entry, and the remaining
/// scenarios still run.
///
/// # Errors
///
/// [`SweepError::Spec`] when the spec fails to expand;
/// [`SweepError::Scenario`] when a scenario's configuration string does
/// not parse (reported before any simulation starts).
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    progress: bool,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_with(
        spec,
        &SweepRunConfig {
            threads,
            progress,
            ..SweepRunConfig::default()
        },
    )
}

/// [`run_sweep`] with the full crash-safety surface: journaling, resume,
/// and fail-fast control. See [`SweepRunConfig`].
///
/// # Errors
///
/// Everything [`run_sweep`] reports, plus [`SweepError::Journal`] when
/// the journal cannot be created or read, is stale (spec hash mismatch),
/// or both `journal` and `resume` are set.
pub fn run_sweep_with(
    spec: &SweepSpec,
    config: &SweepRunConfig,
) -> Result<SweepOutcome, SweepError> {
    if config.journal.is_some() && config.resume.is_some() {
        return Err(SweepError::Journal(
            "--journal and --resume are mutually exclusive (resume keeps \
             appending to the journal it reads)"
                .into(),
        ));
    }
    if let Some(dir) = &config.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| SweepError::Journal(format!("checkpoint dir {}: {e}", dir.display())))?;
    }
    let scenarios = spec.expand()?;
    let total = scenarios.len();
    let hash = spec_hash(&spec.name, &scenarios);

    let mut slots: Vec<Option<ScenarioResult>> = (0..total).map(|_| None).collect();
    let mut replayed = 0usize;
    let journal_err = |e: journal::JournalError| SweepError::Journal(e.to_string());
    let writer: Option<JournalWriter> = if let Some(path) = &config.resume {
        let (header, entries) = read_journal(path).map_err(journal_err)?;
        header
            .check_compatible(&spec.name, hash, total)
            .map_err(journal_err)?;
        for entry in entries {
            let (index, result) = from_entry(entry);
            if slots[index].is_none() {
                replayed += 1;
            }
            slots[index] = Some(result);
        }
        Some(JournalWriter::open_append(path).map_err(journal_err)?)
    } else if let Some(path) = &config.journal {
        let header = JournalHeader {
            name: spec.name.clone(),
            spec_hash: hash,
            total,
            spec_text: config.spec_text.clone().unwrap_or_default(),
        };
        Some(JournalWriter::create(path, &header).map_err(journal_err)?)
    } else {
        None
    };

    let mut prof = if config.profile {
        SelfProfiler::new()
    } else {
        SelfProfiler::disabled()
    };
    let skip: HashSet<usize> = (0..total).filter(|i| slots[*i].is_some()).collect();
    let resolve_span = prof.begin("resolve");
    let resolved = resolve_scenarios(scenarios, &skip, &mut prof);
    prof.end(resolve_span);
    let resolved = resolved?;
    let pending: Vec<usize> = (0..total).filter(|i| !skip.contains(i)).collect();
    let tracker = SweepProgress::with_replayed(total, replayed, config.progress);
    // Pool workers x per-scenario shard threads must not oversubscribe
    // the host: each scenario may use at most its fair share of cores.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shard_cap = (cores / config.threads.max(1)).max(1);
    let started = Instant::now();
    let execute_span = prof.begin("execute");
    let fresh = run_ordered(pending.len(), config.threads, |j| {
        let index = pending[j];
        let r = &resolved[index];
        // Each worker scenario profiles into its own tree (the sweep
        // profiler is not shared across threads); snapshots roll up
        // under `scenarios` after the pool drains.
        let mut sprof = if config.profile {
            SelfProfiler::new()
        } else {
            SelfProfiler::disabled()
        };
        let t0 = Instant::now();
        let ckpt = config
            .checkpoint_dir
            .as_deref()
            .map(|dir| (dir, config.checkpoint_every.max(1)));
        let outcome = execute_one(r, index, config.fail_fast, shard_cap, &mut sprof, ckpt);
        let wall_s = t0.elapsed().as_secs_f64();
        if let Some(w) = &writer {
            let entry = to_entry(index, &r.scenario.label, &outcome);
            let jt = sprof.is_enabled().then(Instant::now);
            let written = w.record(&entry);
            if let Some(jt) = jt {
                sprof.add_path(&["journal_io"], jt.elapsed().as_secs_f64(), 1);
            }
            if let Err(e) = written {
                // Losing durability must not lose the sweep: warn and
                // keep the in-memory result.
                eprintln!("warning: journal write failed: {e}");
            }
        }
        tracker.scenario_done(&r.scenario.label, outcome.is_err());
        let profile = config.profile.then(|| sprof.snapshot());
        ScenarioResult {
            label: r.scenario.label.clone(),
            outcome,
            wall_s,
            profile,
        }
    });
    prof.end(execute_span);
    let elapsed_s = started.elapsed().as_secs_f64();
    let aggregate_span = prof.begin("aggregate");
    for (j, result) in fresh.into_iter().enumerate() {
        slots[pending[j]] = Some(result);
    }
    let results: Vec<ScenarioResult> = slots
        .into_iter()
        .map(|s| s.expect("every scenario is replayed or executed"))
        .collect();
    prof.end(aggregate_span);
    let profile = config.profile.then(|| {
        for r in &results {
            if let Some(p) = &r.profile {
                prof.attach("scenarios", p);
            }
        }
        prof.snapshot()
    });
    Ok(SweepOutcome {
        name: spec.name.clone(),
        scenarios: resolved.into_iter().map(|r| r.scenario).collect(),
        results,
        threads: config.threads.max(1),
        elapsed_s,
        replayed,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{
                "name": "tiny",
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
                "grid": {
                    "parallelism": ["ddp", "tp"],
                    "platform": ["p1", "p2:2"]
                }
            }"#,
        )
        .unwrap()
    }

    fn iterated_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{
                "name": "iterated",
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                              "iterations": 3 },
                "grid": {
                    "parallelism": ["ddp", "tp"],
                    "platform": ["p2:2"]
                }
            }"#,
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "triosim-sweep-ckpt-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
        std::fs::read_dir(dir)
            .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
            .unwrap_or_default()
    }

    #[test]
    fn checkpointed_sweep_is_byte_identical_and_cleans_up() {
        let spec = iterated_spec();
        let plain = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
        let dir = temp_dir("identity");
        let outcome = run_sweep_with(
            &spec,
            &SweepRunConfig {
                threads: 1,
                checkpoint_dir: Some(dir.clone()),
                ..SweepRunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain, outcome.to_canonical_string());
        assert!(
            snapshot_files(&dir).is_empty(),
            "completed scenarios delete their snapshots"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_snapshot_demotes_to_a_fresh_rerun() {
        let spec = iterated_spec();
        let plain = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
        let dir = temp_dir("stale");
        // A leftover snapshot from some other world: not even JSON.
        std::fs::write(dir.join("scenario-0.ckpt"), "{torn").unwrap();
        let outcome = run_sweep_with(
            &spec,
            &SweepRunConfig {
                threads: 1,
                checkpoint_dir: Some(dir.clone()),
                ..SweepRunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            outcome.failures(),
            0,
            "stale snapshot must not fail the scenario"
        );
        assert_eq!(plain, outcome.to_canonical_string());
        assert!(
            snapshot_files(&dir).is_empty(),
            "stale snapshot is cleaned up"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_runs_and_reports_per_scenario() {
        let outcome = run_sweep(&tiny_spec(), 1, false).unwrap();
        assert_eq!(outcome.results.len(), 4);
        assert_eq!(outcome.failures(), 0);
        assert_eq!(outcome.replayed, 0);
        for r in &outcome.results {
            let report = r.outcome.as_ref().unwrap();
            assert!(report.get("total_time_s").is_some());
        }
    }

    #[test]
    fn bad_scenario_string_is_reported_with_index() {
        let spec =
            SweepSpec::from_json(r#"{ "scenarios": [ {}, { "parallelism": "zz" } ] }"#).unwrap();
        match run_sweep(&spec, 1, false).unwrap_err() {
            SweepError::Scenario { index, error, .. } => {
                assert_eq!(index, 1);
                assert!(error.contains("zz"), "{error}");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn canonical_output_is_shard_count_invariant() {
        let base = r#"{
            "name": "shardy",
            "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                          "platform": "p2:2", "iterations": 3 SHARDS },
            "grid": { "parallelism": ["ddp", "tp"] }
        }"#;
        let serial = SweepSpec::from_json(&base.replace("SHARDS", "")).unwrap();
        let sharded = SweepSpec::from_json(&base.replace("SHARDS", r#", "shards": 4"#)).unwrap();
        let a = run_sweep(&serial, 1, false).unwrap().to_canonical_string();
        let b = run_sweep(&sharded, 1, false).unwrap().to_canonical_string();
        assert_eq!(a, b, "shard count must never leak into canonical output");
    }

    #[test]
    fn canonical_output_is_thread_count_invariant() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
        let parallel = run_sweep(&spec, 4, false).unwrap().to_canonical_string();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fault_terminated_scenario_becomes_error_entry() {
        // p1's two GPUs talk through the host; severing one GPU's only
        // link partitions the platform mid-AllReduce.
        let spec = SweepSpec::from_json(
            r#"{
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                               "platform": "p1", "parallelism": "ddp" },
                "scenarios": [
                    {},
                    { "faults": { "link_failures": [ { "src": 0, "dst": 2, "at_s": 0.0 } ] },
                      "label": "partition" }
                ]
            }"#,
        )
        .unwrap();
        let outcome = run_sweep(&spec, 2, false).unwrap();
        assert_eq!(outcome.results.len(), 2);
        assert!(outcome.results[0].outcome.is_ok());
        assert!(outcome.results[1].outcome.is_err(), "partition surfaces");
        assert_eq!(outcome.failures(), 1);
        assert_eq!(outcome.panicked(), 0);
        // And the error text itself is deterministic.
        let again = run_sweep(&spec, 1, false).unwrap();
        assert_eq!(outcome.to_canonical_string(), again.to_canonical_string());
    }

    #[test]
    fn budget_terminated_scenario_becomes_error_entry() {
        let spec = SweepSpec::from_json(
            r#"{
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                               "platform": "p1", "parallelism": "ddp" },
                "scenarios": [ {}, { "max_events": 10, "label": "runaway" } ]
            }"#,
        )
        .unwrap();
        let outcome = run_sweep(&spec, 2, false).unwrap();
        assert!(outcome.results[0].outcome.is_ok());
        let err = outcome.results[1].outcome.as_ref().unwrap_err();
        assert_eq!(
            err.to_string(),
            "budget exceeded: more than 10 events delivered"
        );
        assert_eq!(outcome.budget_terminated(), 1);
        assert_eq!(outcome.panicked(), 0);
    }

    #[test]
    fn panicking_scenario_is_isolated() {
        // global_batch 0 trips the extrapolation assertion inside the
        // scenario worker — exactly the class of bug panic isolation is
        // for. Suppress the default hook's backtrace noise.
        let spec = SweepSpec::from_json(
            r#"{
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                               "platform": "p1", "parallelism": "ddp" },
                "scenarios": [ {}, { "global_batch": 0, "label": "boom" } ]
            }"#,
        )
        .unwrap();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = run_sweep(&spec, 2, false).unwrap();
        std::panic::set_hook(prev_hook);
        assert!(outcome.results[0].outcome.is_ok(), "healthy scenario runs");
        match outcome.results[1].outcome.as_ref().unwrap_err() {
            ScenarioError::Panicked { index, message } => {
                assert_eq!(*index, 1);
                assert!(message.contains("global batch"), "{message}");
            }
            other => panic!("wrong error {other:?}"),
        }
        assert_eq!(outcome.panicked(), 1);
    }

    #[test]
    fn fail_fast_restores_the_abort() {
        let spec = SweepSpec::from_json(
            r#"{
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                               "platform": "p1", "parallelism": "ddp" },
                "scenarios": [ { "global_batch": 0 } ]
            }"#,
        )
        .unwrap();
        let config = SweepRunConfig {
            threads: 1,
            fail_fast: true,
            ..SweepRunConfig::default()
        };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| run_sweep_with(&spec, &config)));
        std::panic::set_hook(prev_hook);
        assert!(
            result.is_err(),
            "--fail-fast lets the panic abort the sweep"
        );
    }

    #[test]
    fn profiled_sweep_is_canonically_identical_and_carries_profile() {
        let spec = tiny_spec();
        let plain = run_sweep(&spec, 2, false).unwrap();
        assert!(plain.profile.is_none(), "profiling is opt-in");
        let config = SweepRunConfig {
            threads: 2,
            profile: true,
            ..SweepRunConfig::default()
        };
        let profiled = run_sweep_with(&spec, &config).unwrap();
        assert_eq!(
            plain.to_canonical_string(),
            profiled.to_canonical_string(),
            "profiling must not perturb canonical bytes"
        );
        let prof = profiled.profile.as_ref().expect("sweep profile collected");
        assert!(prof.find(&["resolve", "trace_build"]).is_some());
        assert!(prof.find(&["execute"]).is_some());
        assert!(prof.find(&["aggregate"]).is_some());
        assert!(
            prof.find(&["scenarios", "engine_loop"]).is_some(),
            "per-scenario profiles roll up under `scenarios`:\n{}",
            prof.render()
        );
        for r in &profiled.results {
            let p = r.profile.as_ref().expect("each scenario profiled");
            assert!(p.total(&["engine_loop"]).is_some(), "{}", r.label);
        }
    }

    #[test]
    fn journal_and_resume_are_mutually_exclusive() {
        let config = SweepRunConfig {
            journal: Some(PathBuf::from("/tmp/a.jsonl")),
            resume: Some(PathBuf::from("/tmp/a.jsonl")),
            ..SweepRunConfig::default()
        };
        let err = run_sweep_with(&tiny_spec(), &config).unwrap_err();
        assert!(matches!(err, SweepError::Journal(_)));
    }
}
