//! Binds the generic sweep engine ([`triosim_sweep`]) to the simulator.
//!
//! The sweep crate owns the declarative [`SweepSpec`] and the
//! index-ordered work-stealing pool; this module owns everything that
//! requires simulator knowledge:
//!
//! * parsing scenario strings (`"ddp"`, `"p2:4"`, `"reference"`) into
//!   typed configuration, reported per scenario with its index and label;
//! * sharing expensive read-only artifacts across scenarios — the
//!   synthetic trace (parsed/generated once per unique
//!   model x batch x GPU behind an [`Arc`]) and the calibrated Li's
//!   Models (one ridge regression per GPU model, not per scenario);
//! * executing each scenario in full isolation: its own DES engine and
//!   its own [`FlowNetwork`] state, so no scenario can observe another's
//!   scheduling;
//! * deterministic aggregation: the canonical sweep JSON
//!   ([`SweepOutcome::to_canonical_string`]) contains only
//!   simulation-determined data, ordered by scenario index — byte-
//!   identical across thread counts, including `threads == 1`.
//!
//! Wall-clock numbers (per-scenario and sweep-level) are collected
//! alongside but kept **out** of the canonical form; they feed the CLI's
//! stdout summary and the `bench_sweep` artifact instead.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use serde::Value;
use triosim_network::{FlowNetwork, FlowNetworkConfig, NetworkModel, ReallocationMode};
use triosim_perfmodel::LisModel;
use triosim_trace::{GpuModel, Trace, Tracer};

pub use triosim_sweep::{
    pool::run_ordered, Scenario, ScenarioPatch, SpecError, SweepProgress, SweepSpec,
};

use crate::compute::{ComputeModel, Fidelity};
use crate::parallelism::{CollectiveStyle, Parallelism};
use crate::platform::Platform;
use crate::session::SimBuilder;
use triosim_faults::FaultPlan;
use triosim_modelzoo::ModelId;

/// A sweep failed before any scenario ran.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec itself was malformed (parse/expansion failure).
    Spec(SpecError),
    /// A scenario's configuration string did not parse.
    Scenario {
        /// Index of the offending scenario in expansion order.
        index: usize,
        /// Its (possibly auto-generated) label.
        label: String,
        /// What failed to parse.
        error: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::Scenario {
                index,
                label,
                error,
            } => write!(f, "scenario {index} ({label}): {error}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

/// One scenario's fully-parsed, ready-to-run configuration.
struct ResolvedScenario {
    scenario: Scenario,
    trace: Arc<Trace>,
    platform: Platform,
    parallelism: Parallelism,
    global_batch: Option<u64>,
    fidelity: Fidelity,
    collective: CollectiveStyle,
    iterations: usize,
    realloc: ReallocationMode,
    compute: ComputeModel,
    faults: Option<FaultPlan>,
    fault_seed: Option<u64>,
}

/// The outcome of one scenario: its canonical report (or a deterministic
/// error string for fault-terminated runs) plus its wall time.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario label.
    pub label: String,
    /// Canonical report JSON on success; the `SimError` rendering when an
    /// injected fault terminated the run. Both are deterministic.
    pub outcome: Result<Value, String>,
    /// Wall-clock seconds this scenario took (excluded from canonical
    /// output — it varies run to run).
    pub wall_s: f64,
}

/// A completed sweep: per-scenario results in expansion order plus
/// timing.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec's name.
    pub name: String,
    /// The expanded scenarios, in order.
    pub scenarios: Vec<Scenario>,
    /// Per-scenario results, index-aligned with `scenarios`.
    pub results: Vec<ScenarioResult>,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// End-to-end wall-clock seconds (excluded from canonical output).
    pub elapsed_s: f64,
}

impl SweepOutcome {
    /// The deterministic aggregate: spec name, scenario configurations,
    /// and per-scenario reports/errors, ordered by scenario index, with
    /// every wall-clock field excluded. Byte-identical across thread
    /// counts and hosts.
    pub fn to_canonical_json(&self) -> Value {
        let results = self
            .scenarios
            .iter()
            .zip(&self.results)
            .map(|(scenario, r)| {
                let mut fields = vec![
                    ("label".to_string(), Value::Str(r.label.clone())),
                    ("scenario".to_string(), serde::Serialize::to_value(scenario)),
                ];
                match &r.outcome {
                    Ok(report) => fields.push(("report".to_string(), report.clone())),
                    Err(e) => fields.push(("error".to_string(), Value::Str(e.clone()))),
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "scenario_count".to_string(),
                Value::UInt(self.scenarios.len() as u64),
            ),
            ("results".to_string(), Value::Array(results)),
        ])
    }

    /// [`to_canonical_json`](Self::to_canonical_json) as a compact JSON
    /// string (what `triosim-cli sweep --out` writes).
    pub fn to_canonical_string(&self) -> String {
        serde_json::to_string(&self.to_canonical_json())
            .expect("canonical sweep JSON has no non-finite floats")
    }

    /// Number of scenarios that ended in a (fault-induced) error.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Sweep throughput: scenarios per wall-clock second.
    pub fn scenarios_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.elapsed_s.max(1e-9)
    }
}

/// Parses every scenario and pre-builds the shared artifacts, serially —
/// so parse errors surface deterministically (lowest index first) before
/// any simulation work starts, and so the caches need no locking during
/// the parallel phase.
fn resolve_scenarios(scenarios: Vec<Scenario>) -> Result<Vec<ResolvedScenario>, SweepError> {
    let mut traces: HashMap<(String, u64, GpuModel), Arc<Trace>> = HashMap::new();
    let mut lis: HashMap<GpuModel, LisModel> = HashMap::new();
    let calibrate = |gpu: GpuModel, cache: &mut HashMap<GpuModel, LisModel>| {
        cache
            .entry(gpu)
            .or_insert_with(|| LisModel::calibrated(gpu))
            .clone()
    };
    let mut resolved = Vec::with_capacity(scenarios.len());
    for (index, scenario) in scenarios.into_iter().enumerate() {
        let fail = |error: String| SweepError::Scenario {
            index,
            label: scenario.label.clone(),
            error,
        };
        let model = ModelId::from_str(&scenario.model).map_err(&fail)?;
        let gpu = GpuModel::from_str(&scenario.gpu).map_err(&fail)?;
        let platform = Platform::from_str(&scenario.platform).map_err(&fail)?;
        let parallelism = Parallelism::from_str(&scenario.parallelism).map_err(&fail)?;
        let fidelity = Fidelity::from_str(&scenario.fidelity).map_err(&fail)?;
        let collective = CollectiveStyle::from_str(&scenario.collective).map_err(&fail)?;
        let realloc = ReallocationMode::from_str(&scenario.realloc).map_err(&fail)?;
        if scenario.iterations == 0 {
            return Err(fail("iterations must be at least 1".into()));
        }
        let trace = traces
            .entry((scenario.model.clone(), scenario.trace_batch, gpu))
            .or_insert_with(|| Arc::new(Tracer::new(gpu).trace(&model.build(scenario.trace_batch))))
            .clone();
        let compute = ComputeModel::resolve_with(fidelity, gpu, &platform, parallelism, &mut |g| {
            calibrate(g, &mut lis)
        });
        resolved.push(ResolvedScenario {
            faults: scenario.faults.clone(),
            fault_seed: scenario.fault_seed,
            global_batch: scenario.global_batch,
            iterations: scenario.iterations as usize,
            scenario,
            trace,
            platform,
            parallelism,
            fidelity,
            collective,
            realloc,
            compute,
        });
    }
    Ok(resolved)
}

/// Runs one resolved scenario in full isolation: fresh network state,
/// fresh DES engine, nothing shared but the read-only trace and compute
/// model.
fn run_scenario(r: &ResolvedScenario) -> Result<Value, String> {
    let topo = r.platform.topology().clone();
    let mut network = match r.fidelity {
        Fidelity::TrioSim => FlowNetwork::new(topo),
        Fidelity::Reference => FlowNetwork::with_config(topo, FlowNetworkConfig::reference()),
    };
    network.set_reallocation_mode(r.realloc);
    let mut builder = SimBuilder::new(&r.trace, &r.platform)
        .parallelism(r.parallelism)
        .fidelity(r.fidelity)
        .compute_model(r.compute.clone())
        .collective_style(r.collective)
        .iterations(r.iterations)
        .network(Box::new(network) as Box<dyn NetworkModel>);
    if let Some(batch) = r.global_batch {
        builder = builder.global_batch(batch);
    }
    if let Some(plan) = &r.faults {
        builder = builder.faults(plan.clone());
    }
    if let Some(seed) = r.fault_seed {
        builder = builder.fault_seed(seed);
    }
    builder
        .try_run()
        .map(|report| report.to_canonical_json())
        .map_err(|e| e.to_string())
}

/// Expands `spec` and runs every scenario on `threads` worker threads.
///
/// Scenarios are claimed work-stealing style (uneven scenario costs
/// cannot idle workers behind a static shard) and collected by index, so
/// the returned outcome's canonical form does not depend on `threads`.
/// Fault-induced failures (`SimError::Partitioned` / `GpuLost`) do not
/// abort the sweep — they become that scenario's deterministic `error`
/// entry, and the remaining scenarios still run.
///
/// # Errors
///
/// [`SweepError::Spec`] when the spec fails to expand;
/// [`SweepError::Scenario`] when a scenario's configuration string does
/// not parse (reported before any simulation starts).
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    progress: bool,
) -> Result<SweepOutcome, SweepError> {
    let resolved = resolve_scenarios(spec.expand()?)?;
    let tracker = SweepProgress::new(resolved.len(), progress);
    let started = Instant::now();
    let results = run_ordered(resolved.len(), threads, |i| {
        let r = &resolved[i];
        let t0 = Instant::now();
        let outcome = run_scenario(r);
        let wall_s = t0.elapsed().as_secs_f64();
        tracker.scenario_done(&r.scenario.label);
        ScenarioResult {
            label: r.scenario.label.clone(),
            outcome,
            wall_s,
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    Ok(SweepOutcome {
        name: spec.name.clone(),
        scenarios: resolved.into_iter().map(|r| r.scenario).collect(),
        results,
        threads: threads.max(1),
        elapsed_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{
                "name": "tiny",
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40" },
                "grid": {
                    "parallelism": ["ddp", "tp"],
                    "platform": ["p1", "p2:2"]
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn sweep_runs_and_reports_per_scenario() {
        let outcome = run_sweep(&tiny_spec(), 1, false).unwrap();
        assert_eq!(outcome.results.len(), 4);
        assert_eq!(outcome.failures(), 0);
        for r in &outcome.results {
            let report = r.outcome.as_ref().unwrap();
            assert!(report.get("total_time_s").is_some());
        }
    }

    #[test]
    fn bad_scenario_string_is_reported_with_index() {
        let spec =
            SweepSpec::from_json(r#"{ "scenarios": [ {}, { "parallelism": "zz" } ] }"#).unwrap();
        match run_sweep(&spec, 1, false).unwrap_err() {
            SweepError::Scenario { index, error, .. } => {
                assert_eq!(index, 1);
                assert!(error.contains("zz"), "{error}");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn canonical_output_is_thread_count_invariant() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1, false).unwrap().to_canonical_string();
        let parallel = run_sweep(&spec, 4, false).unwrap().to_canonical_string();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fault_terminated_scenario_becomes_error_entry() {
        // p1's two GPUs talk through the host; severing one GPU's only
        // link partitions the platform mid-AllReduce.
        let spec = SweepSpec::from_json(
            r#"{
                "defaults": { "model": "vgg11", "trace_batch": 8, "gpu": "A40",
                               "platform": "p1", "parallelism": "ddp" },
                "scenarios": [
                    {},
                    { "faults": { "link_failures": [ { "src": 0, "dst": 2, "at_s": 0.0 } ] },
                      "label": "partition" }
                ]
            }"#,
        )
        .unwrap();
        let outcome = run_sweep(&spec, 2, false).unwrap();
        assert_eq!(outcome.results.len(), 2);
        assert!(outcome.results[0].outcome.is_ok());
        assert!(outcome.results[1].outcome.is_err(), "partition surfaces");
        assert_eq!(outcome.failures(), 1);
        // And the error text itself is deterministic.
        let again = run_sweep(&spec, 1, false).unwrap();
        assert_eq!(outcome.to_canonical_string(), again.to_canonical_string());
    }
}
