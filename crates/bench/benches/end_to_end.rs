//! End-to-end benchmarks backing Figure 14's "completes within seconds"
//! claim: trace extrapolation plus full simulation, per parallelism.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use triosim::{Parallelism, Platform, SimBuilder};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Tracer};

fn end_to_end(c: &mut Criterion) {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet50.build(128));
    let platform = Platform::p2(4);

    let mut group = c.benchmark_group("simulate_resnet50_p2");
    group.sample_size(20);
    for (name, parallelism, batch) in [
        ("ddp", Parallelism::DataParallel { overlap: true }, 512u64),
        ("dp", Parallelism::DataParallel { overlap: false }, 512),
        ("tp", Parallelism::TensorParallel, 128),
        ("pp4", Parallelism::Pipeline { chunks: 4 }, 128),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = SimBuilder::new(&trace, &platform)
                    .parallelism(parallelism)
                    .global_batch(batch)
                    .run();
                black_box(report.total_time_s())
            })
        });
    }
    group.finish();

    let gpt2 = Tracer::new(GpuModel::A100).trace(&ModelId::Gpt2.build(32));
    let mut group = c.benchmark_group("simulate_gpt2_p2");
    group.sample_size(20);
    group.bench_function("ddp", |b| {
        b.iter(|| {
            let report = SimBuilder::new(&gpt2, &platform)
                .parallelism(Parallelism::DataParallel { overlap: true })
                .global_batch(128)
                .run();
            black_box(report.total_time_s())
        })
    });
    group.finish();

    // Hybrid and scale-out configurations.
    let mut group = c.benchmark_group("simulate_scaleout");
    group.sample_size(10);
    let ring16 = Platform::ring(
        triosim_trace::GpuModel::A100,
        16,
        triosim_trace::LinkKind::NvLink3,
        "ring16",
    );
    group.bench_function("resnet50_hybrid_4x4", |b| {
        b.iter(|| {
            let report = SimBuilder::new(&trace, &ring16)
                .parallelism(Parallelism::Hybrid {
                    dp_groups: 4,
                    chunks: 4,
                })
                .global_batch(512)
                .run();
            black_box(report.total_time_s())
        })
    });
    group.bench_function("resnet50_ddp_ring16", |b| {
        b.iter(|| {
            let report = SimBuilder::new(&trace, &ring16)
                .parallelism(Parallelism::DataParallel { overlap: true })
                .global_batch(16 * 128)
                .run();
            black_box(report.total_time_s())
        })
    });
    group.finish();

    // Extrapolation alone (graph construction, no execution).
    let mut group = c.benchmark_group("extrapolate_only");
    group.sample_size(20);
    group.bench_function("resnet50_ddp_p2", |b| {
        b.iter(|| {
            let g = SimBuilder::new(&trace, &platform)
                .parallelism(Parallelism::DataParallel { overlap: true })
                .global_batch(512)
                .build_graph();
            black_box(g.len())
        })
    });
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
