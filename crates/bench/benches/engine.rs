//! Microbenchmark: event-queue throughput of the simulation engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use triosim_des::{EventQueue, VirtualTime};

fn engine_benches(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                // Pseudo-random but deterministic times.
                let t = (i.wrapping_mul(2654435761)) % 1_000_000;
                q.schedule(VirtualTime::from_femtos(t + 1_000_000), i);
            }
            let mut count = 0u64;
            while let Some((_, e)) = q.pop() {
                count += black_box(e) & 1;
            }
            count
        })
    });

    c.bench_function("event_queue_cancel_heavy", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule(VirtualTime::from_femtos(i + 1), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
