//! Microbenchmarks: flow-network allocation and collective schedule
//! generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use triosim_collectives::ring_all_reduce;
use triosim_des::VirtualTime;
use triosim_network::{FlowNetwork, NetworkModel, NodeId, Topology};

fn network_benches(c: &mut Criterion) {
    c.bench_function("flow_ring84_concurrent_rotation", |b| {
        // One full ring rotation: 84 concurrent flows, then drain.
        b.iter(|| {
            let topo = Topology::ring(84, 100e9, 0.3e-6);
            let mut net = FlowNetwork::new(topo);
            let t0 = VirtualTime::ZERO;
            let mut flows = Vec::new();
            for i in 0..84 {
                let (f, _) = net.send(t0, NodeId(i), NodeId((i + 1) % 84), 1 << 20);
                flows.push(f);
            }
            // Drain in schedule order (all symmetric: same finish time).
            let done = VirtualTime::from_seconds(1.0);
            for f in flows {
                net.deliver(f, done);
            }
            black_box(net.flows_completed())
        })
    });

    c.bench_function("flow_maxmin_cross_traffic", |b| {
        // 4x4 mesh with flows crossing shared links: stresses the
        // progressive-filling allocator.
        b.iter(|| {
            let topo = Topology::mesh2d(4, 4, 50e9, 0.3e-6);
            let mut net = FlowNetwork::new(topo);
            let t0 = VirtualTime::ZERO;
            for i in 0..16usize {
                let j = 15 - i;
                if i != j {
                    net.send(t0, NodeId(i), NodeId(j), 8 << 20);
                }
            }
            black_box(net.in_flight())
        })
    });

    c.bench_function("ring_allreduce_schedule_84", |b| {
        b.iter(|| black_box(ring_all_reduce(84, 500_000_000)).total_bytes())
    });
}

criterion_group!(benches, network_benches);
criterion_main!(benches);
