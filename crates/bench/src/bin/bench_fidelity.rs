//! Flow-vs-packet cross-validation benchmark: the machine-readable twin
//! of `tests/fidelity.rs`, run against larger scenarios.
//!
//! Two contracts, asserted on every host:
//!
//! * **Convergence where protocol effects cannot matter**: on an
//!   uncongested NVSwitch platform (every flow on its own link, windows
//!   covering the bandwidth-delay product) the packet tier's total must
//!   agree with the flow tier's within a tight relative bound.
//! * **Divergence where they must**: on oversubscribed fat trees —
//!   including a 4-to-1 incast — the packet tier must report a
//!   divergence ratio above 1 *and* the structured evidence for it:
//!   nonzero ECN marks, drops on the incast, retransmits, and a
//!   populated queue-depth histogram.
//!
//! A wall-clock sanity gate (the whole suite under a generous budget) is
//! enforced only on hosts with 4+ cores, recorded on all of them.
//! Results land in `results/BENCH_fidelity.json`.

use triosim::{Fidelity, Parallelism, Platform, SimBuilder, SimReport};
use triosim_bench::{json_num, json_obj, time_it, Summary};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Trace, Tracer};

use serde::Value;

/// Uncongested convergence must hold within this relative bound.
const CONVERGENCE_BOUND: f64 = 0.02;
/// The wall-clock sanity gate: the full suite in release mode stays
/// comfortably under this on any 4-core-plus host.
const WALL_BUDGET_S: f64 = 120.0;
const GATE_CORES: usize = 4;

fn run(trace: &Trace, platform: &Platform, parallelism: Parallelism, f: Fidelity) -> SimReport {
    SimBuilder::new(trace, platform)
        .parallelism(parallelism)
        .fidelity(f)
        .run()
}

/// One flow-vs-packet pair, printed and summarized: the divergence ratio
/// (packet total over flow total) plus the packet tier's evidence
/// counters.
fn pair(
    label: &str,
    trace: &Trace,
    platform: &Platform,
    parallelism: Parallelism,
) -> (f64, Value, SimReport) {
    let flow = run(trace, platform, parallelism, Fidelity::TrioSim);
    let packet = run(trace, platform, parallelism, Fidelity::Packet);
    assert!(
        flow.packet_stats().is_none(),
        "flow tier must not report packet counters"
    );
    let ps = *packet
        .packet_stats()
        .expect("packet tier reports packet counters");
    let ratio = packet.total_time_s() / flow.total_time_s();
    println!(
        "{label:<24} flow {:>9.4} s | packet {:>9.4} s | ratio {ratio:>5.3} | \
         drops {:>6} | ecn {:>6} | retx {:>6} | max depth {:>3}",
        flow.total_time_s(),
        packet.total_time_s(),
        ps.drops,
        ps.ecn_marks,
        ps.retransmits,
        ps.max_queue_depth,
    );
    let point = json_obj(vec![
        ("scenario", Value::Str(label.to_string())),
        ("flow_total_s", json_num(flow.total_time_s())),
        ("packet_total_s", json_num(packet.total_time_s())),
        ("divergence_ratio", json_num(ratio)),
        ("packets_sent", Value::UInt(ps.packets_sent)),
        ("drops", Value::UInt(ps.drops)),
        ("ecn_marks", Value::UInt(ps.ecn_marks)),
        ("retransmits", Value::UInt(ps.retransmits)),
        ("max_queue_depth", Value::UInt(ps.max_queue_depth)),
        (
            "queue_depth_hist",
            Value::Array(
                ps.queue_depth_hist
                    .iter()
                    .map(|&n| Value::UInt(n))
                    .collect(),
            ),
        ),
    ]);
    (ratio, point, packet)
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let gate_armed = triosim_bench::gate_armed(GATE_CORES);
    println!(
        "fidelity cross-validation bench: host cores {host_cores}, wall gate {}",
        if gate_armed { "armed" } else { "disarmed" }
    );
    let ddp = Parallelism::DataParallel { overlap: true };
    let (mut summary, total_wall) = time_it(|| {
        let resnet = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet18.build(8));

        // Convergence: NVSwitch gives every collective flow its own
        // link, so the tiers must agree tightly.
        let (ratio, point, _) = pair("uncongested p2:2 ddp", &resnet, &Platform::p2(2), ddp);
        assert!(
            (ratio - 1.0).abs() <= CONVERGENCE_BOUND,
            "uncongested tiers diverged: ratio {ratio} (bound {CONVERGENCE_BOUND})"
        );
        let convergence = (ratio, point);

        // Divergence: a 4:1-oversubscribed fat tree (one GPU per leaf,
        // every byte over the thin spine uplinks)...
        let fat2 = Platform::fat_tree(GpuModel::A100, 2, 1, 25e9, 5e-6, 4.0, "fat2");
        let (fat_ratio, fat_point, _) = pair("congested fat-tree ddp", &resnet, &fat2, ddp);
        assert!(
            fat_ratio > 1.0,
            "congested fat tree must diverge: ratio {fat_ratio}"
        );

        // ...and a 4-GPU incast (TP funnels every shard's activations
        // across the oversubscribed spine at once).
        let fat4 = Platform::fat_tree(GpuModel::A100, 4, 1, 25e9, 5e-6, 4.0, "fat4");
        let (incast_ratio, incast_point, incast) = pair(
            "incast fat-tree 4gpu tp",
            &resnet,
            &fat4,
            Parallelism::TensorParallel,
        );
        let ps = incast.packet_stats().expect("packet run");
        assert!(
            incast_ratio > 1.0 && ps.drops > 0 && ps.ecn_marks > 0,
            "incast must diverge with drops and marks: ratio {incast_ratio}, {ps:?}"
        );

        let mut summary = Summary::new("BENCH_fidelity");
        summary.text("workload", "resnet18 b8 A100");
        summary.int("host_cores", host_cores as u64);
        summary.num("convergence_ratio", convergence.0);
        summary.num("convergence_bound", CONVERGENCE_BOUND);
        summary.num("incast_divergence_ratio", incast_ratio);
        summary.put(
            "points",
            Value::Array(vec![convergence.1, fat_point, incast_point]),
        );
        summary.put("gate_armed", Value::Bool(gate_armed));
        summary
    });

    println!(
        "suite wall {total_wall:.2} s (budget {WALL_BUDGET_S:.0} s, {} on this \
         {host_cores}-core host)",
        if gate_armed {
            "enforced"
        } else {
            "not enforced"
        },
    );
    if gate_armed {
        assert!(
            total_wall <= WALL_BUDGET_S,
            "fidelity suite took {total_wall:.1} s — the packet tier has lost its \
             lightweight-simulator performance envelope"
        );
    } else {
        eprintln!(
            "warning: wall gate NOT armed — host has {host_cores} cores (need {GATE_CORES}+); \
             measured numbers are recorded but not enforced"
        );
    }
    summary.num("wall_s", total_wall);
    summary.num("wall_budget_s", WALL_BUDGET_S);
    summary.finish();
}
