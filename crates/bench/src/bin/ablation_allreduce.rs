//! Ablation: AllReduce algorithm choice across topologies, payload
//! sizes, and GPU counts.
//!
//! DESIGN.md calls out the collective algorithm as a design choice worth
//! ablating: the segmented ring is bandwidth-optimal but needs `2(n-1)`
//! latency-bound steps; the binomial tree is latency-optimal but moves
//! `O(B log n)` bytes; halving–doubling gets both, but only on
//! topologies where power-of-two-distance pairs are cheap. This harness
//! measures pure AllReduce completion time for each algorithm under the
//! flow network and reports the winner per configuration — showing the
//! small/large-message crossover and the topology sensitivity.

use serde::Value;
use triosim::{CollectiveStyle, Platform};
use triosim_bench::{json_num, json_obj, Summary};
use triosim_collectives::{
    halving_doubling_all_reduce, ring_all_reduce, tree_all_reduce, CollectiveSchedule,
};
use triosim_des::VirtualTime;
use triosim_network::{FlowNetwork, NetCommand, NetworkModel};
use triosim_trace::{GpuModel, LinkKind};

/// Executes one collective schedule on a fresh flow network over the
/// platform's topology and returns the completion time in seconds.
fn run_schedule(platform: &Platform, schedule: &CollectiveSchedule) -> f64 {
    let mut net = FlowNetwork::new(platform.topology().clone());
    let mut now = VirtualTime::ZERO;
    for step in schedule.steps() {
        // All transfers of a step start together; the step ends when the
        // last one delivers.
        let mut deliveries: std::collections::BTreeMap<_, VirtualTime> = Default::default();
        let mut flows = Vec::new();
        for t in step {
            let (f, cmds) = net.send(
                now,
                platform.gpu_node(t.src.0),
                platform.gpu_node(t.dst.0),
                t.bytes,
            );
            flows.push(f);
            for c in cmds {
                if let NetCommand::Schedule { flow, at } = c {
                    deliveries.insert(flow, at);
                }
            }
        }
        // Drain this step in delivery order.
        while let Some((&flow, &at)) = deliveries.iter().min_by_key(|(f, at)| (**at, **f)) {
            deliveries.remove(&flow);
            now = now.max(at);
            for c in net.deliver(flow, at) {
                if let NetCommand::Schedule { flow, at } = c {
                    if deliveries.contains_key(&flow) {
                        deliveries.insert(flow, at);
                    }
                }
            }
        }
    }
    now.as_seconds()
}

fn schedule_for(style: CollectiveStyle, n: usize, bytes: u64) -> CollectiveSchedule {
    match style {
        CollectiveStyle::Segmented => ring_all_reduce(n, bytes),
        CollectiveStyle::Tree => tree_all_reduce(n, bytes),
        CollectiveStyle::HalvingDoubling => halving_doubling_all_reduce(n, bytes),
        CollectiveStyle::Unsegmented => unreachable!("not part of this ablation"),
    }
}

fn main() {
    let styles = [
        ("ring", CollectiveStyle::Segmented),
        ("tree", CollectiveStyle::Tree),
        ("halv-dbl", CollectiveStyle::HalvingDoubling),
    ];
    println!("== Ablation: AllReduce algorithm x topology x payload ==");
    println!(
        "{:<22} {:>6} {:>10}   {:>10} {:>10} {:>10}   {:>9}",
        "topology", "gpus", "payload", "ring(ms)", "tree(ms)", "hd(ms)", "winner"
    );

    let mut json_rows = Vec::new();
    for &gpus in &[4usize, 8, 16] {
        let platforms: Vec<(String, Platform)> = vec![
            (
                format!("nvswitch{gpus}"),
                Platform::nvswitch(GpuModel::A100, gpus, LinkKind::NvLink3, "sw"),
            ),
            (
                format!("ring{gpus}"),
                Platform::ring(GpuModel::A100, gpus, LinkKind::NvLink3, "rg"),
            ),
            (
                format!("pcie-tree{gpus}"),
                Platform::pcie(GpuModel::A40, gpus, "pc"),
            ),
        ];
        for (name, platform) in platforms {
            for &bytes in &[256u64 * 1024, 16 << 20, 512 << 20] {
                let times: Vec<f64> = styles
                    .iter()
                    .map(|(_, s)| run_schedule(&platform, &schedule_for(*s, gpus, bytes)))
                    .collect();
                let winner = styles[times
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0]
                    .0;
                println!(
                    "{:<22} {:>6} {:>9}M   {:>10.3} {:>10.3} {:>10.3}   {:>9}",
                    name,
                    gpus,
                    bytes >> 20,
                    times[0] * 1e3,
                    times[1] * 1e3,
                    times[2] * 1e3,
                    winner
                );
                json_rows.push(json_obj(vec![
                    ("topology", Value::Str(name.clone())),
                    ("gpus", Value::UInt(gpus as u64)),
                    ("payload_bytes", Value::UInt(bytes)),
                    ("ring_ms", json_num(times[0] * 1e3)),
                    ("tree_ms", json_num(times[1] * 1e3)),
                    ("halving_doubling_ms", json_num(times[2] * 1e3)),
                    ("winner", Value::Str(winner.to_string())),
                ]));
            }
        }
    }
    println!(
        "\nexpected shape: tree wins small payloads (latency-bound), ring wins \
         large payloads on rings (bandwidth-bound), halving-doubling wins \
         large payloads on switches where long-distance pairs are one hop"
    );
    let mut summary = Summary::new("ablation_allreduce");
    summary.put("rows", Value::Array(json_rows));
    summary.finish();
}
