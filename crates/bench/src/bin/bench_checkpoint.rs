//! Checkpoint overhead benchmark: the same simulation with snapshotting
//! off and on, asserting that checkpointing is both *free enough* and
//! *invisible*, and that a restore reproduces the uninterrupted run.
//!
//! Three contracts are asserted:
//!
//! * **Canonical invisibility**: the checkpointed run's canonical report
//!   is byte-identical to the plain one (snapshots observe quiescent
//!   state, they never perturb it).
//! * **Bounded overhead**: the median of per-pair wall-time differences
//!   (each pair runs plain and checkpointed back to back, alternating
//!   order to cancel drift) is within [`MAX_OVERHEAD_FRAC`] of the
//!   median plain wall time, with a small absolute slack so scheduler
//!   noise cannot flake the gate.
//! * **Restore identity**: resuming from a mid-run boundary snapshot
//!   yields the uninterrupted run's canonical bytes exactly.
//!
//! Results land in `results/BENCH_checkpoint.json`, which CI uploads as
//! an artifact. Set `TRIOSIM_CKPT_GATE=0` to record without enforcing
//! the overhead gate (useful on heavily-shared runners).

use std::path::PathBuf;
use std::time::Instant;

use serde::Value;
use triosim::{Platform, SimBuilder, SimReport};
use triosim_bench::{json_num, Summary};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Trace, Tracer};

/// Checkpointed wall time may exceed plain by at most this fraction...
const MAX_OVERHEAD_FRAC: f64 = 0.05;
/// ...or by this many seconds, whichever is larger (absolute slack so a
/// few-hundred-ms workload cannot fail the gate on scheduler jitter).
const ABS_SLACK_S: f64 = 0.050;
/// Interleaved (plain, checkpointed) measurement pairs. The gate uses
/// the median per-pair difference: adjacent runs share cache and
/// frequency state, so differencing within a pair cancels most noise,
/// and the median discards stray outliers.
const PAIRS: usize = 7;
/// Iterations per simulation; with [`EVERY`] this fixes the snapshot
/// count per run.
const ITERATIONS: usize = 1000;
/// Snapshot cadence: a snapshot every this many iteration boundaries.
const EVERY: usize = 500;
/// Back-to-back simulations per timed measurement, so one measurement
/// is long enough for the wall clock to resolve the overhead.
const REPS: usize = 1;

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "triosim-bench-ckpt-{}-{tag}.json",
        std::process::id()
    ))
}

/// Runs `REPS` back-to-back simulations, returning the last canonical
/// report and the total wall seconds. The timed region includes
/// canonicalization: plain runs hash the timeline at report time while
/// checkpointed runs fold it incrementally during the run, so timing
/// only `try_run` would charge that (identical) work to one side only.
fn run_once(trace: &Trace, platform: &Platform, ckpt: Option<&PathBuf>) -> (Value, f64) {
    let start = Instant::now();
    let mut canonical: Option<Value> = None;
    for _ in 0..REPS {
        let mut builder = SimBuilder::new(trace, platform).iterations(ITERATIONS);
        if let Some(path) = ckpt {
            builder = builder.checkpoint(path, EVERY);
        }
        let report: SimReport = builder
            .try_run()
            .unwrap_or_else(|e| panic!("bench_checkpoint run failed: {e}"));
        canonical = Some(report.to_canonical_json());
    }
    let wall = start.elapsed().as_secs_f64();
    (canonical.expect("REPS > 0"), wall)
}

fn main() {
    let trace = Tracer::new(GpuModel::A100).trace(&ModelId::ResNet50.build(32));
    let platform = Platform::p2(4);
    let snapshots_per_run = ITERATIONS / EVERY;
    println!(
        "checkpoint bench: resnet50 x{REPS}, {ITERATIONS} iterations, snapshot every {EVERY} \
         ({snapshots_per_run} snapshots/run), {PAIRS} interleaved pairs"
    );

    let ckpt = snapshot_path("overhead");
    let mut offs = Vec::with_capacity(PAIRS);
    let mut diffs = Vec::with_capacity(PAIRS);
    let mut canonical_off = Value::Null;
    let mut canonical_on = Value::Null;
    for pair in 0..PAIRS {
        // Alternate order inside the pair so frequency/cache drift does
        // not systematically favor one configuration.
        let (c_off, w_off, c_on, w_on) = if pair % 2 == 0 {
            let (c_off, w_off) = run_once(&trace, &platform, None);
            let (c_on, w_on) = run_once(&trace, &platform, Some(&ckpt));
            (c_off, w_off, c_on, w_on)
        } else {
            let (c_on, w_on) = run_once(&trace, &platform, Some(&ckpt));
            let (c_off, w_off) = run_once(&trace, &platform, None);
            (c_off, w_off, c_on, w_on)
        };
        println!(
            "pair {pair}: off {w_off:>7.3} s | on {w_on:>7.3} s | diff {:+8.3} s",
            w_on - w_off
        );
        offs.push(w_off);
        diffs.push(w_on - w_off);
        canonical_off = c_off;
        canonical_on = c_on;
    }
    std::fs::remove_file(&ckpt).ok();
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let off_median = median(&mut offs);
    let overhead_s = median(&mut diffs);

    // Invisibility is unconditional: snapshots must never leak into the
    // canonical report.
    assert!(
        canonical_on == canonical_off,
        "checkpointing changed the canonical report"
    );
    println!("canonical reports byte-identical with checkpointing on/off");

    // Restore identity: a prefix run's final snapshot resumed into the
    // full iteration count reproduces the uninterrupted bytes.
    let resume_from = ITERATIONS / 2;
    let prefix = snapshot_path("restore");
    SimBuilder::new(&trace, &platform)
        .iterations(resume_from)
        .checkpoint(&prefix, resume_from)
        .try_run()
        .unwrap_or_else(|e| panic!("prefix run failed: {e}"));
    let restore_start = Instant::now();
    let resumed = SimBuilder::new(&trace, &platform)
        .iterations(ITERATIONS)
        .restore(&prefix)
        .try_run()
        .unwrap_or_else(|e| panic!("restore failed: {e}"));
    let restore_wall_s = restore_start.elapsed().as_secs_f64();
    std::fs::remove_file(&prefix).ok();
    assert!(
        resumed.to_canonical_json() == canonical_off,
        "restore from boundary {resume_from} diverged from the uninterrupted run"
    );
    println!(
        "restore from boundary {resume_from}/{ITERATIONS} byte-identical ({restore_wall_s:.3} s)"
    );

    let overhead_frac = overhead_s / off_median.max(1e-9);
    let budget_s = (off_median * MAX_OVERHEAD_FRAC).max(ABS_SLACK_S);
    println!(
        "overhead: median-of-{PAIRS} pairs, off {off_median:.3} s, diff {overhead_s:+.3} s \
         -> {:+.1}% (budget {budget_s:.3} s)",
        100.0 * overhead_frac
    );
    let gate = std::env::var("TRIOSIM_CKPT_GATE").map_or(true, |v| v != "0");
    if gate {
        assert!(
            overhead_s <= budget_s,
            "checkpoint overhead {overhead_s:.3} s exceeds budget {budget_s:.3} s \
             ({:+.1}% vs {:.0}% allowed)",
            100.0 * overhead_frac,
            100.0 * MAX_OVERHEAD_FRAC
        );
    } else {
        println!("overhead gate disabled (TRIOSIM_CKPT_GATE=0)");
    }

    let mut summary = Summary::new("BENCH_checkpoint");
    summary.int("iterations", ITERATIONS as u64);
    summary.int("snapshot_every", EVERY as u64);
    summary.int("snapshots_per_run", snapshots_per_run as u64);
    summary.int("reps_per_measurement", REPS as u64);
    summary.int("pairs", PAIRS as u64);
    summary.num("wall_off_median_s", off_median);
    summary.num("overhead_median_s", overhead_s);
    summary.num("overhead_frac", overhead_frac);
    summary.num("overhead_budget_s", budget_s);
    summary.num("restore_wall_s", restore_wall_s);
    summary.put("canonical_identical", Value::Bool(true));
    summary.put("restore_identical", Value::Bool(true));
    summary.put("gate_enforced", Value::Bool(gate));
    summary.put(
        "overhead_per_snapshot_s",
        json_num(overhead_s.max(0.0) / ((REPS * snapshots_per_run).max(1) as f64)),
    );
    summary.finish();
}
