//! Figure 16: the Hop heterogeneous-training case study.
//!
//! 8 A100 GPUs train VGG-11 (batch 128) with decentralized gossip over a
//! ring-based and a double-ring communication graph. Communication links
//! are randomly slowed by factors in [1, 10]; each of 8 seeded scenarios
//! reports the speedup one backup worker achieves over none.
//!
//! Run with `--seed <n>` to change the scenario family.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use triosim::{HopConfig, HopGraph, HopSimulator};
use triosim_bench::{arg_u64, json_num, json_obj, paper_trace, Summary};
use triosim_modelzoo::ModelId;
use triosim_trace::{GpuModel, Phase};

fn main() {
    let seed = arg_u64("seed", 42);
    let workers = 8usize;

    // VGG-11 @128 on A100: compute time from the single-GPU trace, update
    // volume = the model's parameters (as in the Hop paper's setup).
    let trace = paper_trace(ModelId::Vgg11, GpuModel::A100);
    let compute_time_s = trace.phase_time_s(Phase::Forward) + trace.phase_time_s(Phase::Backward);
    let update_bytes = trace.gradient_bytes();

    let config = |backup: usize| HopConfig {
        backup_workers: backup,
        bounded_staleness: 2,
        iterations: 20,
        compute_time_s,
        update_bytes,
        // Hop targets decentralized clusters on commodity interconnects
        // (Ethernet/IB class), where update exchange is comparable to
        // compute — the regime in which backup workers matter.
        link_bandwidth: 10.0e9,
        link_latency_s: 5.0e-6,
        skip_lag: None,
    };

    println!("== Figure 16: Hop with 1 backup worker, 8x A100, VGG-11 @128 ==");
    println!(
        "{:<8} {:>16} {:>18}",
        "group", "ring speedup", "double-ring speedup"
    );
    let mut ring_speedups = Vec::new();
    let mut double_speedups = Vec::new();
    let mut json_rows = Vec::new();
    for group in 0..8u64 {
        // One random slowdown scenario per group: each directed link gets
        // a factor drawn uniformly from [1, 10].
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1000) + group);
        let mut factors = vec![vec![1.0f64; workers]; workers];
        for row in factors.iter_mut() {
            for f in row.iter_mut() {
                *f = rng.gen_range(1.0..10.0);
            }
        }
        let slowdown = |from: usize, to: usize| factors[from][to];

        let speedup = |graph: HopGraph| {
            let base = HopSimulator::new(graph.clone(), config(0)).run(&slowdown);
            let backup = HopSimulator::new(graph, config(1)).run(&slowdown);
            base.total_time_s / backup.total_time_s
        };
        let ring = speedup(HopGraph::ring_based(workers));
        let double = speedup(HopGraph::double_ring(workers));
        ring_speedups.push(ring);
        double_speedups.push(double);
        println!("{:<8} {:>15.3}x {:>17.3}x", group + 1, ring, double);
        json_rows.push(json_obj(vec![
            ("group", Value::UInt(group + 1)),
            ("ring_speedup", json_num(ring)),
            ("double_ring_speedup", json_num(double)),
        ]));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<8} {:>15.3}x {:>17.3}x",
        "average",
        avg(&ring_speedups),
        avg(&double_speedups)
    );
    println!(
        "\npaper: the backup worker's effect varies greatly with the slowdown \
         scenario, demonstrating heterogeneity-aware simulation"
    );
    let mut summary = Summary::new("fig16");
    summary.int("seed", seed);
    summary.int("workers", workers as u64);
    summary.put("rows", Value::Array(json_rows));
    summary.num("avg_ring_speedup", avg(&ring_speedups));
    summary.num("avg_double_ring_speedup", avg(&double_speedups));
    summary.finish();
}
