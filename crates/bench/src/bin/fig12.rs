//! Figure 12: comparing DP, TP, and PP on P2 with a fixed total batch of
//! 128 across 4 GPUs (pipeline micro-batch 64, i.e. 2 chunks).
//!
//! The claim under test is *relative* accuracy: TrioSim must rank the
//! three parallelisms the same way the hardware (reference) does — the
//! paper finds data parallelism always wins at constant total workload.

use serde::Value;
use triosim::{Parallelism, Platform};
use triosim_bench::{figure_models, json_num, json_obj, paper_trace, predict_and_truth, Summary};
use triosim_trace::GpuModel;

fn main() {
    let platform = Platform::p2(4);
    let total_batch = 128u64;
    let strategies = [
        ("DP", Parallelism::DataParallel { overlap: true }),
        ("TP", Parallelism::TensorParallel),
        ("PP", Parallelism::Pipeline { chunks: 2 }),
    ];

    println!("== Figure 12: DP vs TP vs PP on P2 (4x A100), total batch 128 ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}  {:>7} {:>7}",
        "model", "DP-hw", "TP-hw", "PP-hw", "DP-sim", "TP-sim", "PP-sim", "hw-best", "sim-best"
    );
    let mut order_agreements = 0usize;
    let mut json_rows = Vec::new();
    let models = figure_models("all");
    for &model in &models {
        let trace = paper_trace(model, GpuModel::A100);
        let mut truth_times = Vec::new();
        let mut pred_times = Vec::new();
        for (_, p) in strategies {
            let (pred, truth) = predict_and_truth(&trace, &platform, p, total_batch);
            truth_times.push(truth.total_time_s());
            pred_times.push(pred.total_time_s());
        }
        let best = |v: &[f64]| {
            strategies[v
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0]
                .0
        };
        let hw_best = best(&truth_times);
        let sim_best = best(&pred_times);
        if hw_best == sim_best {
            order_agreements += 1;
        }
        println!(
            "{:<12} {:>9.4} {:>9.4} {:>9.4}   {:>9.4} {:>9.4} {:>9.4}  {:>7} {:>7}",
            model.figure_label(),
            truth_times[0],
            truth_times[1],
            truth_times[2],
            pred_times[0],
            pred_times[1],
            pred_times[2],
            hw_best,
            sim_best
        );
        json_rows.push(json_obj(vec![
            ("label", Value::Str(model.figure_label().to_string())),
            ("dp_hw_s", json_num(truth_times[0])),
            ("tp_hw_s", json_num(truth_times[1])),
            ("pp_hw_s", json_num(truth_times[2])),
            ("dp_sim_s", json_num(pred_times[0])),
            ("tp_sim_s", json_num(pred_times[1])),
            ("pp_sim_s", json_num(pred_times[2])),
            ("hw_best", Value::Str(hw_best.to_string())),
            ("sim_best", Value::Str(sim_best.to_string())),
        ]));
    }
    println!(
        "\nbest-strategy agreement: {order_agreements}/{} models",
        models.len()
    );
    println!("paper finds DP is always the most efficient at constant total workload");
    let mut summary = Summary::new("fig12");
    summary.put("rows", Value::Array(json_rows));
    summary.int("best_strategy_agreement", order_agreements as u64);
    summary.int("models", models.len() as u64);
    summary.finish();
}
