//! Figure 7: standard data parallelism on P1 (2x A40 over PCIe).
//!
//! `torch.nn.DataParallel` semantics: the AllReduce waits for the whole
//! backward pass. Per-GPU batch equals the traced batch (weak scaling).
//! The paper reports a 7.39% average error.

use triosim::{Parallelism, Platform};
use triosim_bench::{figure_models, trace_batch, validation_row, Row, Summary};
use triosim_trace::GpuModel;

fn main() {
    let platform = Platform::p1();
    let rows: Vec<Row> = figure_models("all")
        .into_iter()
        .map(|model| {
            validation_row(
                model,
                GpuModel::A40,
                &platform,
                Parallelism::DataParallel { overlap: false },
                trace_batch(model) * platform.gpu_count() as u64,
            )
        })
        .collect();
    let avg = triosim_bench::print_table("Figure 7: standard DP on P1 (2x A40, PCIe)", &rows);
    println!("paper reports: 7.39% average error; measured {avg:.2}%");
    let mut summary = Summary::new("fig07");
    summary.table("p1_standard_dp", &rows);
    summary.num("paper_avg_error_pct", 7.39);
    summary.finish();
}
