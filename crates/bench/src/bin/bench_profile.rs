//! Self-profiler overhead benchmark: the same sweep with wall-clock
//! profiling off and on, asserting that profiling is both *free enough*
//! and *invisible*.
//!
//! Three contracts are asserted:
//!
//! * **Canonical invisibility**: the profiled sweep's canonical
//!   aggregate is byte-identical to the unprofiled one (profiling reads
//!   the wall clock, never virtual-time state).
//! * **Bounded overhead**: the best-of-N profiled wall time is within
//!   [`MAX_OVERHEAD_FRAC`] of the best-of-N unprofiled wall time, with a
//!   small absolute slack so timer noise on tiny workloads cannot flake
//!   the gate.
//! * **Attribution coverage**: the profile actually pinpoints the
//!   setup-vs-engine split — the `resolve` and per-scenario
//!   `engine_loop` spans exist and are non-trivial.
//!
//! Results land in `results/BENCH_profile.json`, including the
//! setup/engine/journal split CI uploads as an artifact.

use serde::Value;
use triosim::{run_sweep_with, ScenarioPatch, SelfProfile, SweepRunConfig, SweepSpec};
use triosim_bench::{json_num, json_obj, sweep_threads, Summary};

/// Profiled wall time may exceed unprofiled by at most this fraction...
const MAX_OVERHEAD_FRAC: f64 = 0.05;
/// ...or by this many seconds, whichever is larger (absolute slack so a
/// few-hundred-ms workload cannot fail the gate on scheduler jitter).
const ABS_SLACK_S: f64 = 0.050;
/// Best-of-N runs per configuration; the minimum is the least-noisy
/// estimator of intrinsic cost.
const RUNS: usize = 3;

fn spec() -> SweepSpec {
    let mut defaults = ScenarioPatch::default();
    defaults.set("gpu", Value::Str("A100".to_string()));
    defaults.set("trace_batch", Value::UInt(64));
    defaults.set("iterations", Value::UInt(10));
    SweepSpec {
        name: "bench_profile".to_string(),
        defaults,
        grid: vec![
            (
                "model".to_string(),
                vec![
                    Value::Str("resnet50".to_string()),
                    Value::Str("vgg16".to_string()),
                ],
            ),
            (
                "parallelism".to_string(),
                vec![
                    Value::Str("dp".to_string()),
                    Value::Str("ddp".to_string()),
                    Value::Str("tp".to_string()),
                    Value::Str("pp:2".to_string()),
                ],
            ),
            ("platform".to_string(), vec![Value::Str("p2:4".to_string())]),
        ],
        scenarios: Vec::new(),
    }
}

/// Runs the sweep once, returning (canonical aggregate, wall seconds,
/// profile snapshot when enabled).
fn run_once(spec: &SweepSpec, threads: usize, profile: bool) -> (String, f64, Option<SelfProfile>) {
    let outcome = run_sweep_with(
        spec,
        &SweepRunConfig {
            threads,
            profile,
            ..SweepRunConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("bench_profile sweep failed: {e}"));
    assert_eq!(outcome.failures(), 0, "grid scenarios are fault-free");
    (
        outcome.to_canonical_string(),
        outcome.elapsed_s,
        outcome.profile,
    )
}

/// Total seconds of a span path, or 0 when absent.
fn span_s(profile: &SelfProfile, path: &[&str]) -> f64 {
    profile.total(path).unwrap_or(0.0)
}

fn main() {
    let spec = spec();
    let threads = sweep_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "self-profiler bench: {} scenarios, {threads} threads, best of {RUNS}, host cores \
         {host_cores}",
        spec.len()
    );

    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut canonical_off = String::new();
    let mut canonical_on = String::new();
    let mut best_profile: Option<SelfProfile> = None;
    for run in 0..RUNS {
        let (c_off, w_off, _) = run_once(&spec, threads, false);
        let (c_on, w_on, p) = run_once(&spec, threads, true);
        println!("run {run}: off {w_off:>7.3} s | on {w_on:>7.3} s");
        off_best = off_best.min(w_off);
        if w_on < on_best {
            on_best = w_on;
            best_profile = p;
        }
        canonical_off = c_off;
        canonical_on = c_on;
    }

    // Invisibility is unconditional: profiling must never leak into the
    // canonical aggregate.
    assert!(
        canonical_on == canonical_off,
        "profiling changed the canonical sweep aggregate"
    );
    println!("canonical aggregates byte-identical with profiling on/off");

    let overhead_frac = (on_best - off_best) / off_best.max(1e-9);
    let budget_s = (off_best * MAX_OVERHEAD_FRAC).max(ABS_SLACK_S);
    println!(
        "overhead: best-of-{RUNS} off {off_best:.3} s, on {on_best:.3} s -> {:+.1}% \
         (budget {budget_s:.3} s)",
        100.0 * overhead_frac
    );
    assert!(
        on_best - off_best <= budget_s,
        "profiling overhead {:.3} s exceeds budget {budget_s:.3} s \
         ({:+.1}% vs {:.0}% allowed)",
        on_best - off_best,
        100.0 * overhead_frac,
        100.0 * MAX_OVERHEAD_FRAC
    );

    // The profile must pinpoint where the wall clock went: the serial
    // setup phase vs the parallel engine phase.
    let profile = best_profile.expect("profiled run returns a profile");
    let setup_s = span_s(&profile, &["resolve"]);
    let execute_s = span_s(&profile, &["execute"]);
    let engine_s = span_s(&profile, &["scenarios", "engine_loop"]);
    let graph_s = span_s(&profile, &["scenarios", "graph_build"]);
    let network_s = span_s(&profile, &["scenarios", "engine_loop", "network"]);
    assert!(setup_s > 0.0, "resolve span recorded");
    assert!(engine_s > 0.0, "per-scenario engine_loop spans roll up");
    println!(
        "split: resolve {setup_s:.3} s | execute {execute_s:.3} s (engine_loop {engine_s:.3} s \
         across workers, graph_build {graph_s:.3} s, network {network_s:.3} s)"
    );

    let mut summary = Summary::new("BENCH_profile");
    summary.int("scenarios", spec.len() as u64);
    summary.int("threads", threads as u64);
    summary.int("host_cores", host_cores as u64);
    summary.int("runs", RUNS as u64);
    summary.num("wall_off_best_s", off_best);
    summary.num("wall_on_best_s", on_best);
    summary.num("overhead_frac", overhead_frac);
    summary.num("overhead_budget_s", budget_s);
    summary.put("canonical_identical", Value::Bool(true));
    summary.num("setup_resolve_s", setup_s);
    summary.num("execute_s", execute_s);
    summary.num("engine_loop_s", engine_s);
    summary.num("graph_build_s", graph_s);
    summary.num("engine_network_s", network_s);
    summary.put(
        "spans",
        Value::Array(
            profile
                .flatten()
                .into_iter()
                .map(|(path, seconds, calls)| {
                    json_obj(vec![
                        ("span", Value::Str(path)),
                        ("wall_s", json_num(seconds)),
                        ("calls", Value::UInt(calls)),
                    ])
                })
                .collect(),
        ),
    );
    summary.finish();
}
