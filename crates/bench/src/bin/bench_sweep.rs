//! Sweep-engine throughput benchmark: scenarios per second at 1 worker
//! thread versus 8, on a fixed 16-scenario grid.
//!
//! The grid crosses two models, four parallelism strategies, and two
//! platform sizes — small enough to finish in seconds, varied enough
//! that scenario costs are uneven (which is exactly what the pool's
//! work-stealing claim order exists for).
//!
//! Two contracts are asserted:
//!
//! * **Determinism always**: the 1-thread and 8-thread canonical
//!   aggregates must be byte-identical on every host.
//! * **Scaling where it can exist**: at least 3x scenarios/sec at 8
//!   threads — asserted only when the host actually has 8+ cores
//!   (`std::thread::available_parallelism()`); on smaller hosts the
//!   measured numbers are still recorded, honestly, in the artifact.
//!
//! Results land in `results/BENCH_sweep.json`.

use serde::Value;
use triosim::{run_sweep, run_sweep_with, ScenarioPatch, SweepOutcome, SweepRunConfig, SweepSpec};
use triosim_bench::{json_num, json_obj, Summary};

const THREAD_POINTS: [usize; 2] = [1, 8];
const REQUIRED_SPEEDUP: f64 = 3.0;

fn grid_axis(name: &str, values: &[&str]) -> (String, Vec<Value>) {
    (
        name.to_string(),
        values
            .iter()
            .map(|v| Value::Str((*v).to_string()))
            .collect(),
    )
}

fn spec() -> SweepSpec {
    let mut defaults = ScenarioPatch::default();
    defaults.set("gpu", Value::Str("A100".to_string()));
    defaults.set("trace_batch", Value::UInt(64));
    // Each scenario runs ~10 ms of simulation: heavy enough that worker
    // threads amortize their spawn cost, light enough for CI smoke.
    defaults.set("iterations", Value::UInt(10));
    SweepSpec {
        name: "bench_sweep".to_string(),
        defaults,
        grid: vec![
            grid_axis("model", &["resnet50", "vgg16"]),
            grid_axis("parallelism", &["dp", "ddp", "tp", "pp:2"]),
            grid_axis("platform", &["p2:4", "p2:8"]),
        ],
        scenarios: Vec::new(),
    }
}

fn point_json(outcome: &SweepOutcome) -> Value {
    // Per-scenario wall times expose *which* scenarios dominate a point,
    // not just the end-to-end number (they vary run to run and are
    // diagnostic only — the canonical aggregate never contains them).
    let per_scenario = outcome
        .results
        .iter()
        .map(|r| {
            json_obj(vec![
                ("label", Value::Str(r.label.clone())),
                ("wall_s", json_num(r.wall_s)),
            ])
        })
        .collect();
    json_obj(vec![
        ("threads", Value::UInt(outcome.threads as u64)),
        ("wall_s", json_num(outcome.elapsed_s)),
        ("scenarios_per_sec", json_num(outcome.scenarios_per_sec())),
        ("per_scenario", Value::Array(per_scenario)),
    ])
}

fn main() {
    let spec = spec();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "sweep-engine bench: {} scenarios, threads {THREAD_POINTS:?}, host cores {host_cores}",
        spec.len()
    );

    let mut outcomes = Vec::new();
    for threads in THREAD_POINTS {
        let outcome = run_sweep(&spec, threads, false)
            .unwrap_or_else(|e| panic!("bench_sweep failed to start: {e}"));
        assert_eq!(outcome.failures(), 0, "grid scenarios are fault-free");
        println!(
            "threads {threads} | wall {:>7.3} s | {:>6.2} scenarios/s",
            outcome.elapsed_s,
            outcome.scenarios_per_sec(),
        );
        outcomes.push(outcome);
    }

    // Determinism is unconditional: thread count must never leak into
    // the aggregate.
    let canonical = outcomes[0].to_canonical_string();
    assert!(
        outcomes[1].to_canonical_string() == canonical,
        "thread count changed the canonical sweep aggregate"
    );

    // Crash safety must be free of observable cost: a journaled run, and
    // a resume from that journal truncated to half its entries, both
    // reproduce the exact same canonical aggregate.
    let journal = std::env::temp_dir().join(format!("bench-sweep-{}.jsonl", std::process::id()));
    let journaled = run_sweep_with(
        &spec,
        &SweepRunConfig {
            threads: THREAD_POINTS[1],
            journal: Some(journal.clone()),
            ..SweepRunConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("journaled sweep failed: {e}"));
    assert!(
        journaled.to_canonical_string() == canonical,
        "journaling changed the canonical sweep aggregate"
    );
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let half: Vec<&str> = text.lines().take(1 + spec.len() / 2).collect();
    std::fs::write(&journal, format!("{}\n", half.join("\n"))).expect("journal writable");
    let resumed = run_sweep_with(
        &spec,
        &SweepRunConfig {
            threads: THREAD_POINTS[1],
            resume: Some(journal.clone()),
            ..SweepRunConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("resumed sweep failed: {e}"));
    std::fs::remove_file(&journal).ok();
    assert_eq!(resumed.replayed, spec.len() / 2, "half the grid replays");
    assert!(
        resumed.to_canonical_string() == canonical,
        "resume changed the canonical sweep aggregate"
    );
    println!(
        "journal + resume: {} of {} scenarios replayed, aggregate byte-identical",
        resumed.replayed,
        spec.len()
    );

    let speedup = outcomes[1].scenarios_per_sec() / outcomes[0].scenarios_per_sec();
    let gate_active = triosim_bench::gate_armed(THREAD_POINTS[1]);
    println!(
        "speedup at {} threads: {speedup:.2}x (>= {REQUIRED_SPEEDUP:.0}x {} on this \
         {host_cores}-core host)",
        THREAD_POINTS[1],
        if gate_active {
            "enforced"
        } else {
            "not enforced"
        },
    );
    if gate_active {
        assert!(
            speedup >= REQUIRED_SPEEDUP,
            "8-thread sweep only {speedup:.2}x faster than serial on a {host_cores}-core host"
        );
    } else {
        eprintln!(
            "warning: {REQUIRED_SPEEDUP:.0}x scaling gate NOT armed — host has {host_cores} \
             cores, fewer than the {}-thread point; measured numbers are recorded but not \
             enforced",
            THREAD_POINTS[1]
        );
    }

    let mut summary = Summary::new("BENCH_sweep");
    summary.int("scenarios", spec.len() as u64);
    summary.int("host_cores", host_cores as u64);
    summary.put(
        "thread_points",
        Value::Array(
            THREAD_POINTS
                .iter()
                .map(|&t| Value::UInt(t as u64))
                .collect(),
        ),
    );
    summary.put(
        "points",
        Value::Array(outcomes.iter().map(point_json).collect()),
    );
    summary.num("speedup_8_vs_1", speedup);
    // `gate_armed` is the machine-readable contract shared by every bench
    // artifact with a host-dependent performance gate: downstream tooling
    // distinguishes an enforced pass from a merely-recorded measurement.
    summary.put("gate_armed", Value::Bool(gate_active));
    summary.put("aggregates_identical", Value::Bool(true));
    summary.int("resume_replayed", resumed.replayed as u64);
    summary.put("resume_identical", Value::Bool(true));
    summary.finish();
}
