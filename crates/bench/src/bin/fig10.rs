//! Figure 10: pipeline parallelism (GPipe) on 2 and 4 A100 GPUs with 1,
//! 2, and 4 micro-batch chunks.
//!
//! The whole figure is one 4-axis [`SweepSpec`] grid — platform x
//! chunks x model x fidelity — executed by the sweep engine; the
//! prediction and its reference ground truth are adjacent scenarios
//! (fidelity is the last, fastest-varying axis), so each table row pairs
//! two consecutive sweep results.
//!
//! The paper reports average errors of 6.82% / 6.58% / 15.10% (2 GPUs,
//! chunks 1/2/4) and 5.14% / 8.96% / 8.18% (4 GPUs).

use serde::Value;
use triosim::{run_sweep, ScenarioPatch, SweepSpec};
use triosim_bench::{field_f64, figure_models, json_num, sweep_threads, Row, Summary};
use triosim_modelzoo::ModelId;

const GPUS: [usize; 2] = [2, 4];
const CHUNKS: [u64; 3] = [1, 2, 4];
const FIDELITIES: [&str; 2] = ["triosim", "reference"];

fn axis<T: ToString>(values: impl IntoIterator<Item = T>) -> Vec<Value> {
    values
        .into_iter()
        .map(|v| Value::Str(v.to_string()))
        .collect()
}

fn main() {
    let models = figure_models("pipeline");

    // Every pipeline-set model traces at batch 128 and the figure runs
    // one traced batch end to end, so the batch fields are defaults
    // rather than axes.
    let mut defaults = ScenarioPatch::default();
    defaults.set("gpu", Value::Str("A100".to_string()));
    defaults.set("trace_batch", Value::UInt(128));
    defaults.set("global_batch", Value::UInt(128));
    let spec = SweepSpec {
        name: "fig10".to_string(),
        defaults,
        grid: vec![
            (
                "platform".to_string(),
                axis(GPUS.iter().map(|g| format!("p2:{g}"))),
            ),
            (
                "parallelism".to_string(),
                axis(CHUNKS.iter().map(|c| format!("pp:{c}"))),
            ),
            ("model".to_string(), axis(models.iter())),
            ("fidelity".to_string(), axis(FIDELITIES)),
        ],
        scenarios: Vec::new(),
    };

    let outcome = run_sweep(&spec, sweep_threads(), false)
        .unwrap_or_else(|e| panic!("fig10 sweep failed to start: {e}"));
    let total_s = |index: usize| -> f64 {
        let report = outcome.results[index]
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", outcome.results[index].label));
        field_f64(report, &["total_time_s"])
    };

    let mut summary = Summary::new("fig10");
    // Fidelity varies fastest, then model: scenario
    // ((p*3 + c)*M + m)*2 + f, so each (gpus, chunks) cell is a
    // contiguous block of M prediction/truth pairs.
    let mut index = 0;
    for gpus in GPUS {
        for chunks in CHUNKS {
            let rows: Vec<Row> = models
                .iter()
                .map(|model: &ModelId| {
                    let pred_s = total_s(index);
                    let truth_s = total_s(index + 1);
                    index += 2;
                    Row {
                        label: model.figure_label().to_string(),
                        truth_s,
                        pred_s,
                    }
                })
                .collect();
            let avg = triosim_bench::print_table(
                &format!("Figure 10: GPipe on {gpus}x A100, {chunks} chunk(s)"),
                &rows,
            );
            let paper = match (gpus, chunks) {
                (2, 1) => 6.82,
                (2, 2) => 6.58,
                (2, 4) => 15.10,
                (4, 1) => 5.14,
                (4, 2) => 8.96,
                _ => 8.18,
            };
            println!("paper reports: {paper:.2}% average error; measured {avg:.2}%");
            let key = format!("gpipe_{gpus}gpu_{chunks}chunk");
            summary.table(&key, &rows);
            summary.put(&format!("{key}_paper_avg_error_pct"), json_num(paper));
        }
    }
    summary.finish();
}
