//! Figure 10: pipeline parallelism (GPipe) on 2 and 4 A100 GPUs with 1,
//! 2, and 4 micro-batch chunks.
//!
//! The paper reports average errors of 6.82% / 6.58% / 15.10% (2 GPUs,
//! chunks 1/2/4) and 5.14% / 8.96% / 8.18% (4 GPUs).

use triosim::{Parallelism, Platform};
use triosim_bench::{figure_models, json_num, trace_batch, validation_row, Row, Summary};
use triosim_trace::GpuModel;

fn main() {
    let mut summary = Summary::new("fig10");
    for gpus in [2usize, 4] {
        let platform = Platform::p2(gpus);
        for chunks in [1u64, 2, 4] {
            let rows: Vec<Row> = figure_models("pipeline")
                .into_iter()
                .map(|model| {
                    validation_row(
                        model,
                        GpuModel::A100,
                        &platform,
                        Parallelism::Pipeline { chunks },
                        trace_batch(model),
                    )
                })
                .collect();
            let avg = triosim_bench::print_table(
                &format!("Figure 10: GPipe on {gpus}x A100, {chunks} chunk(s)"),
                &rows,
            );
            let paper = match (gpus, chunks) {
                (2, 1) => 6.82,
                (2, 2) => 6.58,
                (2, 4) => 15.10,
                (4, 1) => 5.14,
                (4, 2) => 8.96,
                _ => 8.18,
            };
            println!("paper reports: {paper:.2}% average error; measured {avg:.2}%");
            let key = format!("gpipe_{gpus}gpu_{chunks}chunk");
            summary.table(&key, &rows);
            summary.put(&format!("{key}_paper_avg_error_pct"), json_num(paper));
        }
    }
    summary.finish();
}
