//! Figure 8: distributed data parallelism (DDP) on P1 and P2.
//!
//! DDP overlaps bucketed AllReduce with backward propagation. The paper
//! reports 2.91% (P1) and 2.73% (P2) average errors.

use serde::Value;
use triosim::{Parallelism, Platform};
use triosim_bench::{figure_models, json_num, trace_batch, validation_row, Row, Summary};
use triosim_trace::GpuModel;

fn main() {
    let mut summary = Summary::new("fig08");
    for (platform, gpu, paper) in [
        (Platform::p1(), GpuModel::A40, 2.91),
        (Platform::p2(4), GpuModel::A100, 2.73),
    ] {
        let rows: Vec<Row> = figure_models("all")
            .into_iter()
            .map(|model| {
                validation_row(
                    model,
                    gpu,
                    &platform,
                    Parallelism::DataParallel { overlap: true },
                    trace_batch(model) * platform.gpu_count() as u64,
                )
            })
            .collect();
        let avg = triosim_bench::print_table(
            &format!(
                "Figure 8: DDP on {} ({}x {})",
                platform.name(),
                platform.gpu_count(),
                gpu
            ),
            &rows,
        );
        println!("paper reports: {paper:.2}% average error; measured {avg:.2}%");
        summary.table(platform.name(), &rows);
        summary.put(
            &format!("{}_paper_avg_error_pct", platform.name()),
            json_num(paper),
        );
        summary.put(
            &format!("{}_gpus", platform.name()),
            Value::UInt(platform.gpu_count() as u64),
        );
    }
    summary.finish();
}
