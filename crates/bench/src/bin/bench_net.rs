//! Network fast-path benchmark: wall time and event throughput of the
//! flow network's reallocation modes on an AllReduce-heavy DDP scenario.
//!
//! Runs the same 64-GPU (configurable via `--gpus`) data-parallel
//! ResNet-50 simulation three times, swapping only the network's
//! [`ReallocationMode`]:
//!
//! * `full_reschedule` — the pre-fast-path baseline: from-scratch
//!   progressive filling plus a re-arm of every in-flight delivery on
//!   every flow start/finish (O(F²) event churn).
//! * `full` — from-scratch filling with delta-rescheduling.
//! * `incremental` — the default fast path: component-scoped refills plus
//!   delta-rescheduling.
//!
//! The binary *asserts* that `incremental` and `full` produce bit-identical
//! reports (total time, delivery timeline, bytes) — determinism is part of
//! the contract, so a divergence panics and fails CI's bench-smoke job.
//! Results land in `results/BENCH_net.json`.

use serde::Value;
use triosim::{Parallelism, Platform, SimBuilder, SimReport};
use triosim_bench::{arg_u64, json_num, json_obj, paper_trace, time_it, trace_batch, Summary};
use triosim_modelzoo::ModelId;
use triosim_network::{FlowNetwork, ReallocationMode};
use triosim_trace::{GpuModel, LinkKind};

fn run_mode(
    mode: ReallocationMode,
    platform: &Platform,
    trace: &triosim_trace::Trace,
    global_batch: u64,
) -> (SimReport, f64) {
    let mut net = FlowNetwork::new(platform.topology().clone());
    net.set_reallocation_mode(mode);
    time_it(|| {
        SimBuilder::new(trace, platform)
            .parallelism(Parallelism::DataParallel { overlap: true })
            .global_batch(global_batch)
            .network(Box::new(net))
            .run()
    })
}

fn mode_json(name: &str, report: &SimReport, wall_s: f64) -> Value {
    let q = report.queue_stats();
    let net = report.network_stats();
    json_obj(vec![
        ("mode", Value::Str(name.to_string())),
        ("wall_s", json_num(wall_s)),
        ("events_per_s", json_num(q.delivered() as f64 / wall_s)),
        ("total_time_s", json_num(report.total_time_s())),
        ("events_scheduled", Value::UInt(q.scheduled())),
        ("events_delivered", Value::UInt(q.delivered())),
        ("events_cancelled", Value::UInt(q.cancelled())),
        ("queue_compactions", Value::UInt(q.compactions())),
        ("reallocations", Value::UInt(net.reallocations)),
        ("reschedules", Value::UInt(net.reschedules)),
        ("rate_change_ratio", json_num(report.rate_change_ratio())),
    ])
}

fn main() {
    let gpus = arg_u64("gpus", 64) as usize;
    let model = ModelId::ResNet50;
    let gpu = GpuModel::A100;
    let platform = Platform::ring(gpu, gpus, LinkKind::NvLink3, format!("ring{gpus}"));
    let trace = paper_trace(model, gpu);
    let global_batch = gpus as u64 * trace_batch(model);

    println!("network fast-path bench: {model} DDP on {gpus}x{gpu} ring");
    let modes = [
        ("full_reschedule", ReallocationMode::FullReschedule),
        ("full", ReallocationMode::Full),
        ("incremental", ReallocationMode::Incremental),
    ];
    let mut results = Vec::new();
    for (name, mode) in modes {
        let (report, wall_s) = run_mode(mode, &platform, &trace, global_batch);
        println!(
            "{name:<16} wall {wall_s:>8.3} s | {:>12.0} events/s | sim total {:.6} s | \
             {} scheduled, {} cancelled, {} compactions | churn {:.1}%",
            report.queue_stats().delivered() as f64 / wall_s,
            report.total_time_s(),
            report.queue_stats().scheduled(),
            report.queue_stats().cancelled(),
            report.queue_stats().compactions(),
            100.0 * report.rate_change_ratio(),
        );
        results.push((name, report, wall_s));
    }

    let legacy = &results[0];
    let full = &results[1];
    let incremental = &results[2];

    // Determinism contract: the fast path must reproduce the oracle's
    // report bit for bit — same predicted total, same delivery timeline.
    let identical = incremental.1.total_time() == full.1.total_time()
        && incremental.1.timeline() == full.1.timeline()
        && incremental.1.bytes_transferred() == full.1.bytes_transferred();
    assert!(
        identical,
        "incremental and full reallocation produced different reports"
    );
    let speedup = legacy.2 / incremental.2;
    println!("speedup vs legacy full-reschedule: {speedup:.2}x (reports identical: {identical})");

    let mut summary = Summary::new("BENCH_net");
    summary.text("model", &model.to_string());
    summary.text("gpu", &gpu.to_string());
    summary.int("gpus", gpus as u64);
    summary.text("parallelism", "ddp-overlap");
    summary.int("global_batch", global_batch);
    summary.put(
        "modes",
        Value::Array(
            results
                .iter()
                .map(|(name, report, wall_s)| mode_json(name, report, *wall_s))
                .collect(),
        ),
    );
    summary.num("speedup_vs_full_reschedule", speedup);
    summary.put("reports_identical", Value::Bool(identical));
    summary.finish();
}
