//! Network fast-path benchmark: wall time and event throughput of the
//! flow network's reallocation modes on an AllReduce-heavy DDP scenario.
//!
//! The mode matrix is a one-axis [`SweepSpec`] grid executed by the
//! sweep engine: the same 64-GPU (configurable via `--gpus`)
//! data-parallel ResNet-50 simulation, swapping only the network's
//! reallocation mode:
//!
//! * `full_reschedule` — the pre-fast-path baseline: from-scratch
//!   progressive filling plus a re-arm of every in-flight delivery on
//!   every flow start/finish (O(F²) event churn).
//! * `full` — from-scratch filling with delta-rescheduling.
//! * `incremental` — the default fast path: component-scoped refills plus
//!   delta-rescheduling.
//!
//! The binary *asserts* that `incremental` and `full` produce identical
//! canonical reports (total time, order-sensitive timeline hash, bytes)
//! — determinism is part of the contract, so a divergence panics and
//! fails CI's bench-smoke job. Results land in `results/BENCH_net.json`.

use serde::Value;
use triosim::{run_sweep, ScenarioPatch, SweepSpec};
use triosim_bench::{
    arg_u64, field_f64, field_u64, json_num, json_obj, sweep_threads, trace_batch, Summary,
};
use triosim_modelzoo::ModelId;
use triosim_trace::GpuModel;

const MODES: [&str; 3] = ["full_reschedule", "full", "incremental"];

fn mode_json(name: &str, report: &Value, wall_s: f64) -> Value {
    let delivered = field_u64(report, &["queue", "delivered"]);
    let reallocations = field_u64(report, &["network", "reallocations"]);
    let reschedules = field_u64(report, &["network", "reschedules"]);
    let rate_change_ratio = if reallocations == 0 {
        0.0
    } else {
        reschedules as f64 / reallocations as f64
    };
    json_obj(vec![
        ("mode", Value::Str(name.to_string())),
        ("wall_s", json_num(wall_s)),
        ("events_per_s", json_num(delivered as f64 / wall_s)),
        (
            "total_time_s",
            json_num(field_f64(report, &["total_time_s"])),
        ),
        (
            "events_scheduled",
            Value::UInt(field_u64(report, &["queue", "scheduled"])),
        ),
        ("events_delivered", Value::UInt(delivered)),
        (
            "events_cancelled",
            Value::UInt(field_u64(report, &["queue", "cancelled"])),
        ),
        (
            "queue_compactions",
            Value::UInt(field_u64(report, &["queue", "compactions"])),
        ),
        ("reallocations", Value::UInt(reallocations)),
        ("reschedules", Value::UInt(reschedules)),
        ("rate_change_ratio", json_num(rate_change_ratio)),
    ])
}

/// The identity triple of the fast-path contract: predicted total,
/// order-sensitive delivery timeline, bytes moved.
fn identity_key(report: &Value) -> (f64, u64, u64) {
    (
        field_f64(report, &["total_time_s"]),
        field_u64(report, &["timeline_hash"]),
        field_u64(report, &["bytes_transferred"]),
    )
}

fn main() {
    let gpus = arg_u64("gpus", 64);
    let model = ModelId::ResNet50;
    let gpu = GpuModel::A100;
    let global_batch = gpus * trace_batch(model);

    let mut defaults = ScenarioPatch::default();
    defaults.set("model", Value::Str(model.to_string()));
    defaults.set("trace_batch", Value::UInt(trace_batch(model)));
    defaults.set("gpu", Value::Str(gpu.to_string()));
    defaults.set("platform", Value::Str(format!("ring:{gpu}:{gpus}")));
    defaults.set("parallelism", Value::Str("ddp".to_string()));
    defaults.set("global_batch", Value::UInt(global_batch));
    let spec = SweepSpec {
        name: "bench_net".to_string(),
        defaults,
        grid: vec![(
            "realloc".to_string(),
            MODES.iter().map(|m| Value::Str((*m).to_string())).collect(),
        )],
        scenarios: Vec::new(),
    };

    println!("network fast-path bench: {model} DDP on {gpus}x{gpu} ring");
    let outcome = run_sweep(&spec, sweep_threads(), false)
        .unwrap_or_else(|e| panic!("bench_net sweep failed to start: {e}"));
    let reports: Vec<&Value> = outcome
        .results
        .iter()
        .map(|r| {
            r.outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: mode run failed: {e}", r.label))
        })
        .collect();
    for (name, (report, result)) in MODES.iter().zip(reports.iter().zip(&outcome.results)) {
        let wall_s = result.wall_s;
        println!(
            "{name:<16} wall {wall_s:>8.3} s | {:>12.0} events/s | sim total {:.6} s | \
             {} scheduled, {} cancelled, {} compactions",
            field_u64(report, &["queue", "delivered"]) as f64 / wall_s,
            field_f64(report, &["total_time_s"]),
            field_u64(report, &["queue", "scheduled"]),
            field_u64(report, &["queue", "cancelled"]),
            field_u64(report, &["queue", "compactions"]),
        );
    }

    // Determinism contract: the fast path must reproduce the oracle's
    // report bit for bit — same predicted total, same delivery timeline.
    let identical = identity_key(reports[2]) == identity_key(reports[1]);
    assert!(
        identical,
        "incremental and full reallocation produced different reports"
    );
    let speedup = outcome.results[0].wall_s / outcome.results[2].wall_s;
    println!("speedup vs legacy full-reschedule: {speedup:.2}x (reports identical: {identical})");

    let mut summary = Summary::new("BENCH_net");
    summary.text("model", &model.to_string());
    summary.text("gpu", &gpu.to_string());
    summary.int("gpus", gpus);
    summary.text("parallelism", "ddp-overlap");
    summary.int("global_batch", global_batch);
    summary.put(
        "modes",
        Value::Array(
            MODES
                .iter()
                .zip(reports.iter().zip(&outcome.results))
                .map(|(name, (report, result))| mode_json(name, report, result.wall_s))
                .collect(),
        ),
    );
    summary.num("speedup_vs_full_reschedule", speedup);
    summary.put("reports_identical", Value::Bool(identical));
    summary.finish();
}
